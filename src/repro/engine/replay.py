"""Numerics-pinned replay environments for reproducible evaluation runs.

The engine's executor kinds fall into two *numerics families*: the scalar
kinds (``serial``/``thread``/``process``) replay the discrete-event
simulation per request, while the vectorized kinds (``vectorized``/
``sharded``, and ``auto`` on vector-capable environments) evaluate whole
batches through :func:`repro.sim.batch.simulate_batch`.  The two families
are statistically equivalent but not byte-identical, so any harness that
pins *expected metric values* — the evaluation harness's envelopes, its
byte-identity determinism gate — must pin one family first, or the numbers
would depend on which executor happened to run the batch.

:class:`VectorReplayEnvironment` is that pin.  It wraps a vector-capable
environment and routes **every** measurement through the ``run_requests``
batch hook — a scalar ``run()`` call becomes a one-lane batch.  Because
each lane of the batch path draws only from its own seed-derived stream
(the composition-invariance contract gated by
``tests/test_engine_sharded.py``), a one-lane batch is byte-identical to
the same lane inside any larger batch.  The result: ``serial``,
``vectorized``, ``sharded`` and ``auto`` engines all produce *identical*
results against a wrapped environment, and the evaluation report can assert
byte-level determinism across executors instead of mere statistical
agreement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.protocol import MeasurementRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SliceConfig
    from repro.sim.network import SimulationResult
    from repro.sim.parameters import SimulationParameters
    from repro.sim.scenario import Scenario

__all__ = ["VectorReplayEnvironment"]


class VectorReplayEnvironment:
    """Pin an environment's measurements to the vectorized numerics family.

    Wraps any vector-capable environment — one that implements
    ``run_requests``, or whose ``prepare_batch`` resolves to one (the real
    network resolves to its inner simulator) — and satisfies the full
    :class:`~repro.engine.protocol.Environment` protocol itself, so it can
    be handed to a :class:`~repro.engine.engine.MeasurementEngine` under
    *any* executor kind:

    * scalar executors call :meth:`run`, which executes a one-lane
      ``run_requests`` batch;
    * vectorized/sharded executors call :meth:`run_requests`, which
      delegates to the wrapped environment;
    * ``prepare_batch`` re-wraps whatever environment the inner hook
      resolves to, so the pin survives the real network's domain-manager
      resolution and process-pool dispatch alike.

    Per-request ``params``/``scenario`` overrides work through the wrapped
    environment's own ``with_params``/``with_scenario`` (re-wrapped on the
    way out).  The fingerprint is namespaced so pinned results can never be
    served from (or into) a scalar engine's cache entries for the bare
    environment.
    """

    def __init__(self, inner) -> None:
        if (
            getattr(inner, "run_requests", None) is None
            and getattr(inner, "prepare_batch", None) is None
        ):
            raise TypeError(
                f"{type(inner).__name__} is not vector-capable: it implements neither "
                "run_requests nor a prepare_batch that could resolve to it"
            )
        self.inner = inner

    # ------------------------------------------------------------- protocol
    @property
    def scenario(self) -> "Scenario":
        """The wrapped environment's scenario (Environment protocol)."""
        return self.inner.scenario

    def fingerprint(self) -> tuple:
        """Namespaced content identity: pinned results never share cache entries."""
        return ("vector-replay",) + tuple(self.inner.fingerprint())

    def run(
        self,
        config: "SliceConfig",
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> "SimulationResult":
        """Run one measurement as a one-lane vectorized batch."""
        request = MeasurementRequest(
            config=config, traffic=traffic, duration=duration, seed=seed
        )
        return self.run_requests([request])[0]

    def collect_latencies(
        self,
        config: "SliceConfig",
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Run one pinned measurement and return only the latency collection."""
        return self.run(config, traffic=traffic, duration=duration, seed=seed).latencies_ms

    # ----------------------------------------------------------- batch hooks
    def run_requests(self, requests: Sequence[MeasurementRequest]) -> "list[SimulationResult]":
        """Evaluate a batch through the wrapped environment's vectorized path."""
        requests = list(requests)
        hook = getattr(self.inner, "run_requests", None)
        if hook is not None:
            return hook(requests)
        # No direct hook: resolve through prepare_batch (the real network
        # resolves to its inner simulator, which does vectorize).
        prepared, resolved = self.inner.prepare_batch(requests)
        hook = getattr(prepared, "run_requests", None)
        if hook is None:
            raise TypeError(
                f"{type(self.inner).__name__}.prepare_batch resolved to "
                f"{type(prepared).__name__}, which has no run_requests hook"
            )
        return hook(resolved)

    def prepare_batch(
        self, requests: Sequence[MeasurementRequest]
    ) -> "tuple[VectorReplayEnvironment, list[MeasurementRequest]]":
        """Delegate batch preparation and re-wrap the resolved environment."""
        prepare = getattr(self.inner, "prepare_batch", None)
        if prepare is None:
            return self, list(requests)
        prepared, resolved = prepare(list(requests))
        return VectorReplayEnvironment(prepared), resolved

    # ------------------------------------------------------------- overrides
    def with_params(self, params: "SimulationParameters") -> "VectorReplayEnvironment":
        """A pinned copy of the wrapped environment under different parameters."""
        with_params = getattr(self.inner, "with_params", None)
        if with_params is None:
            raise TypeError(
                f"{type(self.inner).__name__} does not support simulation-parameter overrides"
            )
        return VectorReplayEnvironment(with_params(params))

    def with_scenario(self, scenario: "Scenario") -> "VectorReplayEnvironment":
        """A pinned copy of the wrapped environment under a different scenario."""
        with_scenario = getattr(self.inner, "with_scenario", None)
        if with_scenario is None:
            raise TypeError(
                f"{type(self.inner).__name__} does not support scenario overrides"
            )
        return VectorReplayEnvironment(with_scenario(scenario))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Compact description naming the wrapped environment."""
        return f"VectorReplayEnvironment({self.inner!r})"
