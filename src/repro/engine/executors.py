"""Pluggable request executors: serial, thread, process and vectorized.

The process executor follows the loky/``concurrent.futures`` idiom the paper
relies on for its multiprocessing: requests are split into contiguous chunks
(one per worker) so the environment is pickled once per chunk rather than
once per request, and results are returned in submission order.  Every
request carries an explicit seed by the time it reaches an executor (the
engine resolves ``seed=None`` beforehand), so execution is embarrassingly
parallel and byte-identical across the serial/thread/process kinds.

The vectorized executor takes the orthogonal route: instead of spreading N
slow scalar runs across workers it hands the whole batch to the
environment's NumPy batch path (``run_requests``), which makes the work
itself fast — typically well past the multi-core speedup of the process
pool, on a single core.  Its results are statistically equivalent to (not
byte-identical with) the scalar kinds; see :mod:`repro.sim.batch`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.protocol import Environment, MeasurementRequest
    from repro.sim.network import SimulationResult

__all__ = [
    "available_parallelism",
    "default_executor_kind",
    "make_executor",
    "register_executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "VectorizedExecutor",
    "EXECUTOR_KINDS",
]

#: Environment variable selecting the default executor of new engines.
#: Recognised values are the keys of :data:`EXECUTOR_KINDS` (``serial``,
#: ``thread``, ``process`` plus anything added via
#: :func:`register_executor`); unset means ``serial``.  It is read each time
#: an engine is constructed without an explicit ``executor`` argument, so it
#: can be flipped mid-process (the CLI's ``--executor`` flag does exactly
#: that around a run).
EXECUTOR_ENV_VAR = "ATLAS_ENGINE_EXECUTOR"


def available_parallelism() -> int:
    """CPUs usable by this process (cgroup/affinity aware where possible)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def default_executor_kind() -> str:
    """Executor kind used when an engine is built without an explicit choice.

    Reads ``ATLAS_ENGINE_EXECUTOR`` (case-insensitive, surrounding
    whitespace ignored) and defaults to ``serial`` — deterministic and
    overhead-free for the tiny measurement budgets of the test suite.  Set
    it to ``thread`` or ``process`` to parallelise every engine in the
    process: ``process`` gives real multi-core speedups for the stages'
    parallel queries (results stay byte-identical across those kinds
    because every request carries a resolved seed), while ``thread`` only
    helps for GIL-releasing environments.  ``vectorized`` instead collapses
    each batch into one NumPy pass over the simulator — the fastest option
    for simulator-backed engines, statistically equivalent to (not
    byte-identical with) the scalar kinds.  A value that names no
    registered executor kind raises ``ValueError`` at engine construction
    rather than silently falling back.
    """
    kind = os.environ.get(EXECUTOR_ENV_VAR, "serial").strip().lower()
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"{EXECUTOR_ENV_VAR}={kind!r} is not a registered executor kind; "
            f"expected one of {sorted(EXECUTOR_KINDS)}"
        )
    return kind


def execute_one(environment: "Environment", request: "MeasurementRequest") -> "SimulationResult":
    """Execute a single resolved request against ``environment``."""
    if request.params is not None:
        with_params = getattr(environment, "with_params", None)
        if with_params is None:
            raise TypeError(
                f"{type(environment).__name__} does not support per-request "
                "simulation-parameter overrides (no with_params method)"
            )
        environment = with_params(request.params)
    if request.scenario is not None:
        with_scenario = getattr(environment, "with_scenario", None)
        if with_scenario is None:
            raise TypeError(
                f"{type(environment).__name__} does not support per-request "
                "scenario overrides (no with_scenario method)"
            )
        environment = with_scenario(request.scenario)
    return environment.run(
        request.config,
        traffic=request.traffic,
        duration=request.duration,
        seed=request.seed,
    )


def _execute_chunk(payload: tuple["Environment", list["MeasurementRequest"]]) -> list:
    """Worker entry point: run one chunk of requests against one environment."""
    environment, requests = payload
    return [execute_one(environment, request) for request in requests]


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class SerialExecutor:
    """Run every request in the calling thread (the deterministic default)."""

    kind = "serial"
    #: Result family for cache keying: all scalar kinds are byte-identical
    #: and may share cache entries; the vectorized kind declares its own.
    numerics = "scalar"

    def __init__(self, max_workers: int = 1) -> None:
        self.max_workers = 1

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` in order and return their results."""
        return [execute_one(environment, request) for request in requests]

    def shutdown(self) -> None:
        """Nothing to release."""


class _PoolExecutor:
    """Shared machinery for the thread/process pool executors."""

    kind = "pool"
    numerics = "scalar"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max(1, int(max_workers) if max_workers else available_parallelism())
        self._pool: Executor | None = None

    def _make_pool(self) -> Executor:  # pragma: no cover - overridden
        raise NotImplementedError

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` across the pool, preserving submission order."""
        requests = list(requests)
        if len(requests) <= 1:
            return [execute_one(environment, request) for request in requests]
        pool = self._ensure_pool()
        chunks = _chunk(requests, self.max_workers)
        payloads = [(environment, chunk) for chunk in chunks]
        results: list["SimulationResult"] = []
        for chunk_result in pool.map(_execute_chunk, payloads):
            results.extend(chunk_result)
        return results

    def shutdown(self) -> None:
        """Tear down the pool (a later batch lazily re-creates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class VectorizedExecutor:
    """Route whole engine batches into one vectorized environment pass.

    Environments that implement ``run_requests(requests)`` — the network
    simulator evaluates every request as one lane of
    :func:`repro.sim.batch.simulate_batch` — receive the entire batch in a
    single call, so N measurements cost one NumPy pass instead of N Python
    event loops.  The engine has already served cache hits before the batch
    reaches the executor, so partial hits shrink the vectorized pass.
    Environments without the hook (after their ``prepare_batch`` resolution,
    the real network resolves to the simulator and *does* have it) fall back
    to scalar in-order execution, which keeps ``ATLAS_ENGINE_EXECUTOR=vectorized``
    safe process-wide.

    Unlike thread/process execution, vectorized results are statistically
    equivalent to — not byte-identical with — the scalar path; see
    :mod:`repro.sim.batch` for the numerical contract.
    """

    kind = "vectorized"
    #: Vectorized results are statistically equivalent to — not
    #: byte-identical with — the scalar kinds, so the engine keys cache
    #: entries per numerics family and the two never serve each other.
    numerics = "vectorized"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = 1

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` as one vectorized batch (scalar fallback)."""
        requests = list(requests)
        run_requests = getattr(environment, "run_requests", None)
        if run_requests is None:
            return [execute_one(environment, request) for request in requests]
        return run_requests(requests)

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution: useful for I/O-bound or GIL-releasing environments."""

    kind = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessExecutor(_PoolExecutor):
    """Chunked process-pool execution (the paper's multiprocessing, for real)."""

    kind = "process"

    def _make_pool(self) -> Executor:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            context = None
        return ProcessPoolExecutor(max_workers=self.max_workers, mp_context=context)


#: Registry of executor kinds; extendable via :func:`register_executor`.
EXECUTOR_KINDS: dict[str, Callable[[int | None], object]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "vectorized": VectorizedExecutor,
}


def register_executor(kind: str, factory: Callable[[int | None], object]) -> None:
    """Register a custom executor factory under ``kind``."""
    EXECUTOR_KINDS[str(kind)] = factory


def make_executor(kind: str, max_workers: int | None = None):
    """Instantiate the executor registered under ``kind``."""
    try:
        factory = EXECUTOR_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of {sorted(EXECUTOR_KINDS)}"
        ) from None
    return factory(max_workers)
