"""Pluggable request executors: serial, thread, process, vectorized, sharded, auto.

The scalar pool kinds follow the loky/``concurrent.futures`` idiom the paper
relies on for its multiprocessing: requests are split into contiguous chunks
(one per worker) and results are returned in submission order.  Every
request carries an explicit seed by the time it reaches an executor (the
engine resolves ``seed=None`` beforehand), so execution is embarrassingly
parallel and byte-identical across the serial/thread/process kinds.

The vectorized executor takes the orthogonal route: instead of spreading N
slow scalar runs across workers it hands the whole batch to the
environment's NumPy batch path (``run_requests``), which makes the work
itself fast — typically well past the multi-core speedup of the process
pool, on a single core.  Its results are statistically equivalent to (not
byte-identical with) the scalar kinds; see :mod:`repro.sim.batch`.

The sharded executor composes the two: one large batch is split into
per-worker shards and every worker process runs the *vectorized* pass over
its shard, so the ~N× multi-core and ~50× vectorized speedups multiply
instead of competing.  Because each lane of :func:`repro.sim.batch.simulate_batch`
draws from its own seed-derived stream, a sharded batch is byte-identical
to the whole-batch vectorized pass — the two share the ``vectorized``
numerics family in the engine cache.

Three design points make the parallel kinds actually pay (the original
process executor *lost* to serial — see the post-mortem in
``docs/performance.md``):

* the environment is installed into workers once per pool lifetime through
  the pool *initializer* (free under the ``fork`` start method) instead of
  being pickled into every chunk payload of every batch;
* process pools are persistent and shared process-wide (keyed on worker
  count), surviving both ``MeasurementEngine.shutdown()`` and engine
  garbage collection, so stages that create one engine per run stop paying
  a pool spawn each — :func:`shutdown_worker_pools` (registered ``atexit``)
  is the real teardown, and :func:`pool_diagnostics` exposes the
  created/reused counters the throughput benchmark records;
* shard results travel back as a handful of preallocated NumPy arrays
  (latencies + scalar metrics + stage breakdown) instead of a pickled list
  of per-request ``SimulationResult`` objects.

Finally, :func:`choose_executor` is the adaptive selection policy — pick
serial / vectorized / sharded / process from the batch shape, the usable
core count and the environment's capabilities — and the ``auto`` executor
kind (the default) applies it per batch.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.protocol import Environment, MeasurementRequest
    from repro.sim.network import SimulationResult

__all__ = [
    "available_parallelism",
    "choose_executor",
    "default_executor_kind",
    "make_executor",
    "pool_diagnostics",
    "register_executor",
    "shutdown_worker_pools",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "VectorizedExecutor",
    "ShardedExecutor",
    "AutoExecutor",
    "EXECUTOR_KINDS",
]

#: Environment variable selecting the default executor of new engines.
#: Recognised values are the keys of :data:`EXECUTOR_KINDS` (``auto``,
#: ``serial``, ``thread``, ``process``, ``vectorized``, ``sharded`` plus
#: anything added via :func:`register_executor`); unset means ``auto``.  It
#: is read each time an engine is constructed without an explicit
#: ``executor`` argument, so it can be flipped mid-process (the CLI's
#: ``--executor`` flag does exactly that around a run).
EXECUTOR_ENV_VAR = "ATLAS_ENGINE_EXECUTOR"

#: Fewest vectorized lanes per shard that amortise one process dispatch;
#: below this the batch runs as a single whole-batch vectorized pass.
_MIN_SHARD_LANES = 4

#: Fewest scalar requests that amortise a process-pool dispatch under the
#: adaptive policy; smaller batches run serially.
_MIN_PROCESS_BATCH = 4


def available_parallelism() -> int:
    """CPUs usable by this process (cgroup/affinity aware where possible)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def default_executor_kind() -> str:
    """Executor kind used when an engine is built without an explicit choice.

    Reads ``ATLAS_ENGINE_EXECUTOR`` (case-insensitive, surrounding
    whitespace ignored) and defaults to ``auto`` — the adaptive policy of
    :func:`choose_executor`, which picks serial / vectorized / sharded /
    process per batch from the batch size, the usable cores and the
    environment's capabilities.  Set the variable to pin one kind
    process-wide instead: ``serial`` is the deterministic scalar reference,
    ``process`` spreads scalar runs across cores (byte-identical to serial),
    ``vectorized`` collapses each batch into one NumPy pass, and ``sharded``
    runs the vectorized pass inside each process-pool worker (byte-identical
    to ``vectorized``).  A value that names no registered executor kind
    raises ``ValueError`` at engine construction rather than silently
    falling back.
    """
    kind = os.environ.get(EXECUTOR_ENV_VAR, "auto").strip().lower()
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"{EXECUTOR_ENV_VAR}={kind!r} is not a registered executor kind; "
            f"expected one of {sorted(EXECUTOR_KINDS)}"
        )
    return kind


def choose_executor(
    batch_size: int, cores: int | None = None, environment: "Environment | None" = None
) -> str:
    """Adaptive executor selection from batch shape, cores and environment.

    The policy the ``auto`` kind applies per batch (after cache hits are
    served, so ``batch_size`` is the work that remains):

    ========================  =========  ==========  ============
    environment               batch      cores       choice
    ========================  =========  ==========  ============
    has ``run_requests``      ≥ 8        ≥ 2         ``sharded``
    has ``run_requests``      any other  any         ``vectorized``
    scalar-only               ≥ 4        ≥ 2         ``process``
    scalar-only               any other  any         ``serial``
    ========================  =========  ==========  ============

    Vector-capable environments always resolve to the ``vectorized``
    numerics family (sharded results are byte-identical to whole-batch
    vectorized results), scalar-only environments to the ``scalar`` family —
    so the choice never splits one environment's results across cache
    families.  ``cores`` defaults to :func:`available_parallelism`;
    ``environment=None`` assumes a vector-capable environment.
    """
    batch_size = int(batch_size)
    cores = available_parallelism() if cores is None else max(1, int(cores))
    vector_capable = (
        environment is None or getattr(environment, "run_requests", None) is not None
    )
    if vector_capable:
        if cores >= 2 and batch_size >= 2 * _MIN_SHARD_LANES:
            return "sharded"
        return "vectorized"
    if cores >= 2 and batch_size >= _MIN_PROCESS_BATCH:
        return "process"
    return "serial"


def execute_one(environment: "Environment", request: "MeasurementRequest") -> "SimulationResult":
    """Execute a single resolved request against ``environment``."""
    if request.params is not None:
        with_params = getattr(environment, "with_params", None)
        if with_params is None:
            raise TypeError(
                f"{type(environment).__name__} does not support per-request "
                "simulation-parameter overrides (no with_params method)"
            )
        environment = with_params(request.params)
    if request.scenario is not None:
        with_scenario = getattr(environment, "with_scenario", None)
        if with_scenario is None:
            raise TypeError(
                f"{type(environment).__name__} does not support per-request "
                "scenario overrides (no with_scenario method)"
            )
        environment = with_scenario(request.scenario)
    return environment.run(
        request.config,
        traffic=request.traffic,
        duration=request.duration,
        seed=request.seed,
    )


# --------------------------------------------------------------- worker side
#: Environment installed by :func:`_initialize_worker` when a process-pool
#: worker starts — sent once per worker lifetime (inherited for free under
#: the ``fork`` start method) instead of once per chunk payload.
_WORKER_ENVIRONMENT: "Environment | None" = None


def _initialize_worker(environment: "Environment") -> None:
    """Pool initializer: install the batch environment into this worker."""
    global _WORKER_ENVIRONMENT
    _WORKER_ENVIRONMENT = environment


def _run_chunk_scalar(requests: list["MeasurementRequest"]) -> list:
    """Process-pool entry point: scalar-execute one chunk of requests."""
    return [execute_one(_WORKER_ENVIRONMENT, request) for request in requests]


def _run_shard_vectorized(requests: list["MeasurementRequest"]) -> tuple:
    """Process-pool entry point: vectorized-execute one shard, packed return."""
    environment = _WORKER_ENVIRONMENT
    run_requests = getattr(environment, "run_requests", None)
    if run_requests is None:
        results = [execute_one(environment, request) for request in requests]
    else:
        results = run_requests(requests)
    return _pack_results(results)


def _execute_chunk(payload: tuple["Environment", list["MeasurementRequest"]]) -> list:
    """Thread-pool entry point: one chunk against a shared-memory environment."""
    environment, requests = payload
    return [execute_one(environment, request) for request in requests]


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


# ------------------------------------------------------------ result packing
#: Stage order of ``SimulationResult.stage_breakdown_ms`` — both the scalar
#: pipeline and the vectorized batch path report exactly these stages.
_STAGE_ORDER = (
    "loading", "uplink", "backhaul_ul", "core_ul", "compute", "backhaul_dl", "downlink",
)


def _pack_results(results: list["SimulationResult"]) -> tuple:
    """Pack shard results into flat NumPy arrays for cheap IPC transfer.

    A shard's results cross the process boundary as one concatenated latency
    array plus fixed-width scalar/breakdown matrices instead of a pickled
    list of per-request ``SimulationResult`` objects.  ``config`` is not
    transferred at all — the parent reconstructs it from the shard's own
    requests.  Results whose stage breakdown does not match the known stage
    set (a custom environment) fall back to plain pickling.
    """
    if not all(
        not result.stage_breakdown_ms or set(result.stage_breakdown_ms) == set(_STAGE_ORDER)
        for result in results
    ):
        return ("pickled", list(results))
    lengths = np.array([result.latencies_ms.size for result in results], dtype=np.int64)
    latencies = (
        np.concatenate([np.asarray(result.latencies_ms, dtype=np.float64) for result in results])
        if results
        else np.zeros(0)
    )
    scalars = np.array(
        [
            [
                result.frames_generated,
                result.frames_completed,
                result.duration_s,
                result.traffic,
                result.ul_throughput_mbps,
                result.dl_throughput_mbps,
                result.ul_packet_error_rate,
                result.dl_packet_error_rate,
                result.ping_delay_ms,
            ]
            for result in results
        ],
        dtype=np.float64,
    ).reshape(len(results), 9)
    breakdown = np.full((len(results), len(_STAGE_ORDER)), np.nan)
    for index, result in enumerate(results):
        if result.stage_breakdown_ms:
            breakdown[index] = [result.stage_breakdown_ms[stage] for stage in _STAGE_ORDER]
    return ("packed", lengths, latencies, scalars, breakdown)


def _unpack_results(payload: tuple, requests: list["MeasurementRequest"]) -> list:
    """Rebuild shard ``SimulationResult`` objects from a packed payload."""
    if payload[0] == "pickled":
        return payload[1]
    from repro.sim.network import SimulationResult

    _, lengths, latencies, scalars, breakdown = payload
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    results = []
    for index, request in enumerate(requests):
        row = scalars[index]
        stage_row = breakdown[index]
        results.append(
            SimulationResult(
                latencies_ms=latencies[offsets[index] : offsets[index + 1]].copy(),
                frames_generated=int(row[0]),
                frames_completed=int(row[1]),
                duration_s=float(row[2]),
                config=request.config,
                traffic=int(row[3]),
                ul_throughput_mbps=float(row[4]),
                dl_throughput_mbps=float(row[5]),
                ul_packet_error_rate=float(row[6]),
                dl_packet_error_rate=float(row[7]),
                ping_delay_ms=float(row[8]),
                stage_breakdown_ms=(
                    {stage: float(value) for stage, value in zip(_STAGE_ORDER, stage_row)}
                    if not np.isnan(stage_row).all()
                    else {}
                ),
            )
        )
    return results


# ------------------------------------------------------- persistent pools
@dataclass
class _PoolRecord:
    """One live process pool plus the environment its workers hold."""

    pool: Executor
    fingerprint: tuple


#: Live process pools keyed on worker count; shared by every ProcessExecutor
#: and ShardedExecutor in the process so pools survive engine churn.
_PROCESS_POOLS: dict[int, _PoolRecord] = {}
_POOL_LOCK = threading.Lock()
#: Cumulative pool accounting, surfaced by :func:`pool_diagnostics` and
#: recorded in ``BENCH_engine.json`` as the no-per-batch-respawn evidence.
_POOL_COUNTERS = {"pools_created": 0, "pools_reinitialized": 0, "batches_dispatched": 0}


def _environment_fingerprint(environment: "Environment") -> tuple:
    """Content identity used to decide whether a pool's workers can be reused."""
    fingerprint = getattr(environment, "fingerprint", None)
    if callable(fingerprint):
        try:
            return fingerprint()
        except Exception:  # pragma: no cover - defensive: fall back to identity
            pass
    return ("object", id(environment))


def _make_process_pool(max_workers: int, environment: "Environment") -> Executor:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = None
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=context,
        initializer=_initialize_worker,
        initargs=(environment,),
    )


def _acquire_process_pool(max_workers: int, environment: "Environment") -> Executor:
    """The persistent pool for ``max_workers``, re-initialised on environment change.

    Workers carry the environment they were initialised with, so a pool is
    reusable across batches (and engines) exactly while the environment
    content stays the same; submitting a different environment respawns the
    pool once rather than pickling the environment into every chunk.
    """
    fingerprint = _environment_fingerprint(environment)
    with _POOL_LOCK:
        record = _PROCESS_POOLS.get(max_workers)
        if record is not None and record.fingerprint != fingerprint:
            record.pool.shutdown(wait=True)
            del _PROCESS_POOLS[max_workers]
            _POOL_COUNTERS["pools_reinitialized"] += 1
            record = None
        if record is None:
            record = _PoolRecord(
                pool=_make_process_pool(max_workers, environment), fingerprint=fingerprint
            )
            _PROCESS_POOLS[max_workers] = record
            _POOL_COUNTERS["pools_created"] += 1
        _POOL_COUNTERS["batches_dispatched"] += 1
        return record.pool


def _discard_pool(max_workers: int) -> None:
    """Drop a (broken) pool so the next batch starts a fresh one."""
    with _POOL_LOCK:
        record = _PROCESS_POOLS.pop(max_workers, None)
        if record is not None:
            record.pool.shutdown(wait=False)


def _dispatch_to_pool(
    max_workers: int,
    environment: "Environment",
    worker_fn: Callable,
    chunks: list[list["MeasurementRequest"]],
) -> list:
    """Map ``chunks`` over the persistent pool, evicting it if it broke."""
    pool = _acquire_process_pool(max_workers, environment)
    try:
        return list(pool.map(worker_fn, chunks))
    except BrokenProcessPool:
        _discard_pool(max_workers)
        raise


def pool_diagnostics() -> dict[str, int]:
    """Pool reuse accounting: creations, environment respawns, batches, live pools."""
    with _POOL_LOCK:
        return {**_POOL_COUNTERS, "live_pools": len(_PROCESS_POOLS)}


def shutdown_worker_pools() -> None:
    """Tear down every persistent process pool (registered ``atexit``).

    Executor/engine ``shutdown()`` deliberately leaves the shared pools warm
    — this module-level teardown is the real release, for interpreter exit
    and for tests that must assert cold-pool behaviour.
    """
    with _POOL_LOCK:
        for record in _PROCESS_POOLS.values():
            record.pool.shutdown(wait=True)
        _PROCESS_POOLS.clear()


atexit.register(shutdown_worker_pools)


# ------------------------------------------------------------ executor kinds
class SerialExecutor:
    """Run every request in the calling thread (the deterministic reference)."""

    kind = "serial"
    #: Result family for cache keying: all scalar kinds are byte-identical
    #: and may share cache entries; the vectorized kinds declare their own.
    numerics = "scalar"

    def __init__(self, max_workers: int = 1) -> None:
        self.max_workers = 1

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` in order and return their results."""
        return [execute_one(environment, request) for request in requests]

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadExecutor:
    """Thread-pool execution: useful for I/O-bound or GIL-releasing environments."""

    kind = "thread"
    numerics = "scalar"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max(1, int(max_workers) if max_workers else available_parallelism())
        self._pool: Executor | None = None

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` across the pool, preserving submission order.

        Batches the cache fully served (empty) or reduced to one request
        never touch — or lazily create — the pool.  Threads share the
        calling process's memory, so the environment rides along in the
        chunk payload at zero serialisation cost.
        """
        requests = list(requests)
        if len(requests) <= 1:
            return [execute_one(environment, request) for request in requests]
        pool = self._ensure_pool()
        payloads = [(environment, chunk) for chunk in _chunk(requests, self.max_workers)]
        results: list["SimulationResult"] = []
        for chunk_result in pool.map(_execute_chunk, payloads):
            results.extend(chunk_result)
        return results

    def shutdown(self) -> None:
        """Tear down the thread pool (a later batch lazily re-creates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor:
    """Chunked process-pool execution (the paper's multiprocessing, for real).

    Uses the module's persistent fork pools: the environment reaches workers
    once through the pool initializer, and the pool itself outlives both
    batches and engines (``shutdown()`` is a no-op;
    :func:`shutdown_worker_pools` is the real teardown).
    """

    kind = "process"
    numerics = "scalar"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max(1, int(max_workers) if max_workers else available_parallelism())

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` across the persistent pool in submission order.

        Fully-cached (empty) and single-request batches bypass the pool
        entirely — they neither spawn nor touch it.
        """
        requests = list(requests)
        if not requests:
            return []
        if len(requests) == 1:
            return [execute_one(environment, requests[0])]
        chunks = _chunk(requests, self.max_workers)
        results: list["SimulationResult"] = []
        for chunk_result in _dispatch_to_pool(
            self.max_workers, environment, _run_chunk_scalar, chunks
        ):
            results.extend(chunk_result)
        return results

    def shutdown(self) -> None:
        """No-op: the backing pool is shared and persists across engines."""


class VectorizedExecutor:
    """Route whole engine batches into one vectorized environment pass.

    Environments that implement ``run_requests(requests)`` — the network
    simulator evaluates every request as one lane of
    :func:`repro.sim.batch.simulate_batch` — receive the entire batch in a
    single call, so N measurements cost one NumPy pass instead of N Python
    event loops.  The engine has already served cache hits before the batch
    reaches the executor, so partial hits shrink the vectorized pass.
    Environments without the hook (after their ``prepare_batch`` resolution,
    the real network resolves to the simulator and *does* have it) fall back
    to scalar in-order execution, which keeps ``ATLAS_ENGINE_EXECUTOR=vectorized``
    safe process-wide.

    Unlike thread/process execution, vectorized results are statistically
    equivalent to — not byte-identical with — the scalar path; see
    :mod:`repro.sim.batch` for the numerical contract.
    """

    kind = "vectorized"
    #: Vectorized results are statistically equivalent to — not
    #: byte-identical with — the scalar kinds, so the engine keys cache
    #: entries per numerics family and the two never serve each other.
    #: The sharded kind shares this family: per-lane results are invariant
    #: to batch composition, so sharded == whole-batch vectorized, byte for
    #: byte.
    numerics = "vectorized"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = 1

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` as one vectorized batch (scalar fallback)."""
        requests = list(requests)
        run_requests = getattr(environment, "run_requests", None)
        if run_requests is None:
            return [execute_one(environment, request) for request in requests]
        return run_requests(requests)

    def shutdown(self) -> None:
        """Nothing to release."""


class ShardedExecutor:
    """Parallel-vectorized execution: one vectorized pass per worker shard.

    Splits a batch into at most ``max_workers`` contiguous shards and runs
    :meth:`VectorizedExecutor`-style ``run_requests`` passes concurrently in
    the persistent process pool, so the multi-core and vectorized speedups
    multiply.  Because every lane of :func:`repro.sim.batch.simulate_batch`
    draws only from its own seed-derived stream, the sharded results are
    byte-identical to one whole-batch vectorized pass over the same
    requests — hence the shared ``vectorized`` numerics family.

    Degenerate cases stay cheap: on a single usable core, or when the batch
    is too small to amortise process dispatch (fewer than
    ``_MIN_SHARD_LANES`` lanes per shard), the batch runs as one in-process
    vectorized pass with no pool involved.  Environments without
    ``run_requests`` fall back to scalar in-order execution, mirroring the
    vectorized kind.

    ``shards`` is a testing/tuning override: set it to force an exact shard
    count regardless of batch shape and core count (``None`` plans
    adaptively).  ``last_shards`` records the most recent dispatch's shard
    count (1 = inline whole-batch pass).
    """

    kind = "sharded"
    numerics = "vectorized"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max(1, int(max_workers) if max_workers else available_parallelism())
        self.shards: int | None = None
        self.last_shards = 1

    def plan_shards(self, n_requests: int) -> int:
        """Shard count for a batch of ``n_requests`` (1 = run inline)."""
        if n_requests <= 0:
            return 1
        if self.shards is not None:
            return max(1, min(int(self.shards), n_requests))
        cores = available_parallelism()
        if cores < 2:
            return 1
        return max(1, min(self.max_workers, cores, n_requests // _MIN_SHARD_LANES))

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Execute ``requests`` as per-worker vectorized shards, in order."""
        requests = list(requests)
        if not requests:
            return []
        run_requests = getattr(environment, "run_requests", None)
        if run_requests is None:
            self.last_shards = 1
            return [execute_one(environment, request) for request in requests]
        n_shards = self.plan_shards(len(requests))
        self.last_shards = n_shards
        if n_shards <= 1:
            return run_requests(requests)
        shards = _chunk(requests, n_shards)
        payloads = _dispatch_to_pool(
            self.max_workers, environment, _run_shard_vectorized, shards
        )
        results: list["SimulationResult"] = []
        for shard, payload in zip(shards, payloads):
            results.extend(_unpack_results(payload, shard))
        return results

    def shutdown(self) -> None:
        """No-op: the backing pool is shared and persists across engines."""


class AutoExecutor:
    """Adaptive executor: apply :func:`choose_executor` to every batch.

    Delegates each batch to serial / vectorized / sharded / process based on
    the surviving batch size (cache hits are already served), the usable
    cores (capped by ``max_workers``, so the stages' ``parallel_queries``
    budget bounds real concurrency) and whether the environment offers the
    vectorized ``run_requests`` hook.  The cache numerics family depends
    only on the environment — vector-capable environments always produce
    ``vectorized``-family results, scalar-only environments ``scalar`` — so
    adaptivity never splits one environment's results across families.
    ``last_choice`` records the most recent batch's decision.
    """

    kind = "auto"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max(1, int(max_workers) if max_workers else available_parallelism())
        self._delegates: dict[str, object] = {}
        self.last_choice: str | None = None

    def numerics(self, environment: "Environment") -> str:
        """Cache family of results this executor produces for ``environment``."""
        if getattr(environment, "run_requests", None) is not None:
            return "vectorized"
        return "scalar"

    def delegate(self, kind: str):
        """The lazily-built inner executor registered under ``kind``."""
        if kind not in self._delegates:
            self._delegates[kind] = make_executor(kind, self.max_workers)
        return self._delegates[kind]

    def map_requests(
        self, environment: "Environment", requests: Sequence["MeasurementRequest"]
    ) -> list["SimulationResult"]:
        """Pick an executor for this batch shape and delegate to it."""
        requests = list(requests)
        kind = choose_executor(
            len(requests),
            cores=min(self.max_workers, available_parallelism()),
            environment=environment,
        )
        self.last_choice = kind
        if not requests:
            return []
        return self.delegate(kind).map_requests(environment, requests)

    def shutdown(self) -> None:
        """Release every delegate (shared process pools stay warm by design)."""
        for delegate in self._delegates.values():
            delegate.shutdown()


#: Registry of executor kinds; extendable via :func:`register_executor`.
EXECUTOR_KINDS: dict[str, Callable[[int | None], object]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "vectorized": VectorizedExecutor,
    "sharded": ShardedExecutor,
    "auto": AutoExecutor,
}


def register_executor(kind: str, factory: Callable[[int | None], object]) -> None:
    """Register a custom executor factory under ``kind``."""
    EXECUTOR_KINDS[str(kind)] = factory


def make_executor(kind: str, max_workers: int | None = None):
    """Instantiate the executor registered under ``kind``."""
    try:
        factory = EXECUTOR_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of {sorted(EXECUTOR_KINDS)}"
        ) from None
    return factory(max_workers)
