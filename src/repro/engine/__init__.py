"""Unified measurement engine: one environment protocol, one execution layer.

Every simulator / real-network query in the reproduction flows through
:class:`~repro.engine.engine.MeasurementEngine`, which batches requests,
executes them through pluggable serial/thread/process/vectorized/sharded
executors (adaptively selected per batch under the default ``auto`` kind)
and memoises results in a content-keyed cache.  See ``docs/architecture.md``
for the architecture walkthrough (sim → engine → stages → experiments) and
``docs/performance.md`` for the executor selection guide.
"""

from repro.engine.cache import (
    STORE_ENV_VAR,
    CacheStats,
    MeasurementCache,
    attach_shared_store,
    shared_cache,
)
from repro.engine.engine import MeasurementEngine, engine_telemetry
from repro.engine.executors import (
    EXECUTOR_KINDS,
    available_parallelism,
    choose_executor,
    default_executor_kind,
    make_executor,
    pool_diagnostics,
    register_executor,
    shutdown_worker_pools,
)
from repro.engine.protocol import Environment, MeasurementRequest
from repro.engine.replay import VectorReplayEnvironment

__all__ = [
    "CacheStats",
    "Environment",
    "EXECUTOR_KINDS",
    "MeasurementCache",
    "MeasurementEngine",
    "MeasurementRequest",
    "STORE_ENV_VAR",
    "VectorReplayEnvironment",
    "attach_shared_store",
    "available_parallelism",
    "choose_executor",
    "default_executor_kind",
    "engine_telemetry",
    "make_executor",
    "pool_diagnostics",
    "register_executor",
    "shared_cache",
    "shutdown_worker_pools",
]
