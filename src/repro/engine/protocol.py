"""The :class:`Environment` protocol and the engine's request container.

Atlas queries two kinds of environments: the (augmented) network simulator
during stages 1 and 2 and the real-network prototype during stage 3 and the
evaluation experiments.  Both expose the same measurement API; the protocol
below makes that contract explicit so stages, baselines and experiment
runners are written once against the abstraction and the
:class:`~repro.engine.engine.MeasurementEngine` can execute, parallelise and
cache queries uniformly.

An environment may additionally implement two optional hooks:

``prepare_batch(requests)``
    Resolve a batch of requests into ``(pure_environment, resolved_requests)``
    where ``pure_environment`` is side-effect free and picklable.  The real
    network uses this to route every configuration through its domain
    managers (quantisation + history logging) in the parent process before
    the measurements are dispatched to workers.

``with_params(params)``
    Return a copy of the environment under different simulation parameters;
    required only to execute requests carrying a ``params`` override (the
    stage-1 parameter search relies on this).

``with_scenario(scenario)``
    Return a copy of the environment under a different workload scenario;
    required only to execute requests carrying a ``scenario`` override
    (multi-slice rounds batch one request per slice this way).

``run_requests(requests)``
    Evaluate a whole batch of requests in one call and return their results
    in order — the vectorized hook the ``vectorized`` and ``sharded``
    executors (and the adaptive ``auto`` policy) dispatch to.  Per-request
    results must be independent of which other requests share the batch, so
    executors may freely split one batch into shards; the network simulator
    satisfies this through per-lane seed-derived random streams (see
    :mod:`repro.sim.batch`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.sim.config import SliceConfig
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import SimulationResult

__all__ = ["Environment", "MeasurementRequest"]


@dataclass(frozen=True)
class MeasurementRequest:
    """One environment query: ``(config, traffic, duration, seed)``.

    ``traffic`` and ``duration`` default to the environment's scenario when
    ``None``; a ``None`` seed is resolved by the engine from a deterministic
    :class:`numpy.random.SeedSequence` stream before execution so results
    never depend on scheduling order.  ``params`` optionally overrides the
    environment's simulation parameters for this request only (used by the
    stage-1 search, which evaluates many candidate parameterisations of one
    base simulator in a single batch).  ``scenario`` likewise overrides the
    environment's workload for this request only — multi-slice rounds batch
    one request per slice, each under its own scenario, against a single
    environment (requires the environment to implement ``with_scenario``).
    """

    config: SliceConfig
    traffic: int | None = None
    duration: float | None = None
    seed: int | None = None
    params: SimulationParameters | None = None
    scenario: Scenario | None = None

    def replace(self, **changes) -> "MeasurementRequest":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)

    def key(self) -> tuple:
        """Hashable identity of the request (all frozen dataclasses)."""
        return (self.config, self.traffic, self.duration, self.seed, self.params, self.scenario)


@runtime_checkable
class Environment(Protocol):
    """Anything that can measure a slice configuration.

    Satisfied by :class:`~repro.sim.network.NetworkSimulator` and
    :class:`~repro.prototype.testbed.RealNetwork`.
    """

    scenario: "Scenario"

    def run(
        self,
        config: SliceConfig,
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> "SimulationResult":
        """Run one measurement under ``config`` and return the collected metrics."""
        ...

    def collect_latencies(
        self,
        config: SliceConfig,
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Run one measurement and return only the latency collection."""
        ...

    def fingerprint(self) -> tuple:
        """Hashable content identity of the environment (for result caching)."""
        ...
