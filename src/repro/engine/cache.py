"""Content-keyed measurement cache with hit/miss accounting.

Results are keyed on the full content of a query — environment fingerprint
(simulation parameters, scenario, imperfections, base seed, isolation) plus
the request (config, traffic, duration, per-run seed, parameter override)
plus the executor's numerics family — so a cached entry is, by
construction, byte-identical to what re-running the measurement through the
same family would produce.  Two families exist: the scalar kinds
(serial/thread/process) are byte-identical and share entries, and the
``vectorized`` family is shared by the vectorized *and* sharded kinds —
sharding a batch across workers returns byte-identical results to the
whole-batch vectorized pass, so the two interchangeably serve each other.
The adaptive ``auto`` kind resolves its family from the environment alone
(vector-capable → ``vectorized``, otherwise ``scalar``), never from the
batch shape, so one environment's results always live in one family.  Sweep experiments that revisit identical queries
(the Fig. 15 heatmap grid, the Fig. 18/19 availability and threshold sweeps
re-collecting the same DLDA grid) therefore get them for free.

A single process-wide cache (:func:`shared_cache`) is used by default so
independent engines — e.g. one per experiment runner — share results; pass a
private :class:`MeasurementCache` to an engine for isolated accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from threading import Lock
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import SimulationResult

__all__ = ["CacheStats", "MeasurementCache", "shared_cache"]

#: Default bound of the shared cache (LRU-evicted beyond this).
DEFAULT_MAX_ENTRIES = 20_000


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.evictions = 0

    def as_dict(self) -> dict[str, float]:
        """Counters plus the derived hit rate, for logging/benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _copy_result(result: "SimulationResult") -> "SimulationResult":
    """Defensive copy so callers can never mutate a cached entry."""
    return replace(
        result,
        latencies_ms=np.array(result.latencies_ms, copy=True),
        stage_breakdown_ms=dict(result.stage_breakdown_ms),
    )


@dataclass
class MeasurementCache:
    """Bounded LRU cache of :class:`~repro.sim.network.SimulationResult`.

    Thread safe: the engine's thread executor may insert results
    concurrently with lookups from other engines sharing the cache.
    """

    max_entries: int | None = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self._entries: OrderedDict[tuple, "SimulationResult"] = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        """Number of cached results."""
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        """Whether ``key`` has a cached result."""
        return key in self._entries

    def get(self, key: tuple) -> "SimulationResult | None":
        """Return a copy of the entry under ``key``, recording a hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return _copy_result(entry)

    def put(self, key: tuple, result: "SimulationResult") -> None:
        """Store ``result`` under ``key`` (evicting the LRU entry if full)."""
        with self._lock:
            self._entries[key] = _copy_result(result)
            self._entries.move_to_end(key)
            while self.max_entries is not None and len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats.reset()


#: The process-wide cache shared by engines built with ``cache=True``.
_SHARED_CACHE = MeasurementCache()


def shared_cache() -> MeasurementCache:
    """The process-wide measurement cache (engines default to it)."""
    return _SHARED_CACHE
