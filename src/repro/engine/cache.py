"""Content-keyed measurement cache with hit/miss accounting.

Results are keyed on the full content of a query — environment fingerprint
(simulation parameters, scenario, imperfections, base seed, isolation) plus
the request (config, traffic, duration, per-run seed, parameter override)
plus the executor's numerics family — so a cached entry is, by
construction, byte-identical to what re-running the measurement through the
same family would produce.  Two families exist: the scalar kinds
(serial/thread/process) are byte-identical and share entries, and the
``vectorized`` family is shared by the vectorized *and* sharded kinds —
sharding a batch across workers returns byte-identical results to the
whole-batch vectorized pass, so the two interchangeably serve each other.
The adaptive ``auto`` kind resolves its family from the environment alone
(vector-capable → ``vectorized``, otherwise ``scalar``), never from the
batch shape, so one environment's results always live in one family.  Sweep experiments that revisit identical queries
(the Fig. 15 heatmap grid, the Fig. 18/19 availability and threshold sweeps
re-collecting the same DLDA grid) therefore get them for free.

A single process-wide cache (:func:`shared_cache`) is used by default so
independent engines — e.g. one per experiment runner — share results; pass a
private :class:`MeasurementCache` to an engine for isolated accounting.

Two tiers
    A cache may additionally carry a persistent second tier — a
    :class:`~repro.service.store.ResultStore` (disk-backed,
    content-addressed, shared across processes).  Memory misses fall
    through to the store; store hits are promoted into memory and counted
    separately (``stats.store_hits``), and every insert is written through
    to the store.  Because the store addresses blobs by the *same* cache
    key — fingerprint, request, numerics family — the persistent tier
    inherits family separation and fault-fingerprint honesty from the key,
    and a stored entry is byte-identical to recomputation by construction.
    Attach a store to the process-wide cache with
    :func:`attach_shared_store` or the ``ATLAS_STORE_DIR`` environment
    variable; store failures (I/O errors, unencodable keys) degrade to
    misses and are counted in ``stats.store_errors``, never raised into
    the measurement path.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from threading import Lock
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.store import ResultStore
    from repro.sim.network import SimulationResult

__all__ = [
    "CacheStats",
    "MeasurementCache",
    "STORE_ENV_VAR",
    "attach_shared_store",
    "shared_cache",
]

#: Environment variable naming a persistent-store directory to attach to the
#: process-wide shared cache on first use (the daemon sets it for workers).
STORE_ENV_VAR = "ATLAS_STORE_DIR"

#: Default bound of the shared cache (LRU-evicted beyond this).
DEFAULT_MAX_ENTRIES = 20_000


@dataclass
class CacheStats:
    """Hit/miss counters of one cache, split by serving tier.

    ``hits`` counts lookups served from the in-memory tier, ``store_hits``
    lookups served from the persistent store tier (and promoted), and
    ``misses`` lookups served by neither.  ``store_errors`` counts store
    operations that failed and were degraded to miss/skip semantics.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    store_hits: int = 0
    store_errors: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.store_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.store_hits) / self.lookups

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.evictions = 0
        self.store_hits = self.store_errors = 0

    def as_dict(self) -> dict[str, float]:
        """Counters plus the derived hit rate, for logging/benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "store_hits": self.store_hits,
            "store_errors": self.store_errors,
            "hit_rate": self.hit_rate,
        }


def _copy_result(result: "SimulationResult") -> "SimulationResult":
    """Defensive copy so callers can never mutate a cached entry."""
    return replace(
        result,
        latencies_ms=np.array(result.latencies_ms, copy=True),
        stage_breakdown_ms=dict(result.stage_breakdown_ms),
    )


@dataclass
class MeasurementCache:
    """Bounded LRU cache of :class:`~repro.sim.network.SimulationResult`.

    Thread safe: the engine's thread executor may insert results
    concurrently with lookups from other engines sharing the cache.

    ``store`` optionally attaches a persistent second tier (see the module
    docstring); memory stays the first tier, so hot keys never touch disk.
    """

    max_entries: int | None = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    store: "ResultStore | None" = None

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self._entries: OrderedDict[tuple, "SimulationResult"] = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        """Number of cached results."""
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        """Whether ``key`` has a cached result."""
        return key in self._entries

    def attach_store(self, store: "ResultStore | None") -> None:
        """Attach (or detach, with ``None``) the persistent second tier."""
        self.store = store

    def get(self, key: tuple) -> "SimulationResult | None":
        """Return a copy of the entry under ``key``, recording a hit or miss.

        Memory first; on a memory miss the persistent tier (when attached)
        is consulted, a hit promoted into memory and counted as
        ``store_hits``.  Store failures degrade to a plain miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return _copy_result(entry)
        if self.store is not None:
            try:
                value = self.store.get(key)
            except Exception:
                value = None
                self.stats.store_errors += 1
            if value is not None:
                with self._lock:
                    self.stats.store_hits += 1
                    self._insert(key, value)
                return _copy_result(value)
        with self._lock:
            self.stats.misses += 1
        return None

    def _insert(self, key: tuple, result: "SimulationResult") -> None:
        # Callers hold self._lock.
        self._entries[key] = _copy_result(result)
        self._entries.move_to_end(key)
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def put(self, key: tuple, result: "SimulationResult") -> None:
        """Store ``result`` under ``key`` (evicting the LRU entry if full).

        With a persistent tier attached the entry is also written through
        to disk, so it survives this process and is visible to others.
        """
        with self._lock:
            self._insert(key, result)
        if self.store is not None:
            try:
                self.store.put(key, result)
            except Exception:
                self.stats.store_errors += 1

    def clear(self) -> None:
        """Drop every in-memory entry and reset the counters.

        The persistent tier is deliberately left intact — it is shared
        with other processes; call ``cache.store.clear()`` to wipe it.
        """
        with self._lock:
            self._entries.clear()
            self.stats.reset()


#: The process-wide cache shared by engines built with ``cache=True``.
_SHARED_CACHE = MeasurementCache()

#: Whether the ATLAS_STORE_DIR auto-attach was already attempted.
_ENV_STORE_CHECKED = False


def attach_shared_store(store: "ResultStore | str | os.PathLike | None") -> "ResultStore | None":
    """Attach a persistent store to the process-wide cache (``None`` detaches).

    Accepts a ready :class:`~repro.service.store.ResultStore` or a
    directory path (a store is opened there).  Returns the attached store —
    the daemon and CLI use this to share one handle with the cost ledger.
    """
    if store is not None and not hasattr(store, "get"):
        from repro.service.store import ResultStore

        store = ResultStore(store)
    _SHARED_CACHE.attach_store(store)
    return store


def shared_cache() -> MeasurementCache:
    """The process-wide measurement cache (engines default to it).

    On first use, a persistent store is attached automatically when
    :data:`STORE_ENV_VAR` names a directory — the mechanism by which every
    engine in a service worker process shares the daemon's store.
    """
    global _ENV_STORE_CHECKED
    if not _ENV_STORE_CHECKED:
        _ENV_STORE_CHECKED = True
        store_dir = os.environ.get(STORE_ENV_VAR)
        if store_dir and _SHARED_CACHE.store is None:
            try:
                attach_shared_store(store_dir)
            except OSError:
                pass  # unusable store directory: run with memory only
    return _SHARED_CACHE
