"""The unified measurement engine.

:class:`MeasurementEngine` is the single execution layer every environment
consumer (stages 1–3, the baselines and the experiment runners) submits its
measurements through.  It accepts batches of
:class:`~repro.engine.protocol.MeasurementRequest`, executes them through a
pluggable executor (``auto`` — the adaptive default — ``serial``,
``thread``, ``process``, ``vectorized`` or ``sharded``) and memoises the
results in a content-keyed cache.

Determinism
    ``seed=None`` requests are resolved from a per-engine
    :class:`numpy.random.SeedSequence` stream *before* dispatch, so the same
    batch produces byte-identical results under every scalar executor kind
    (``vectorized`` results are per-request reproducible too, but follow the
    batch path's own statistically-equivalent numerics — see
    :mod:`repro.sim.batch`) and the racy run-counter idiom the simulator
    previously used never crosses a process boundary.

Side effects
    Environments that mutate state per measurement (the real network logs
    every applied configuration through its domain managers) implement
    ``prepare_batch``; the engine invokes it in the parent process and
    executes the returned side-effect-free environment, so histories stay
    correct under process execution and cache hits alike.
"""

from __future__ import annotations

import weakref
from threading import Lock
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.engine.cache import CacheStats, MeasurementCache, shared_cache
from repro.engine.executors import (
    available_parallelism,
    default_executor_kind,
    make_executor,
)
from repro.engine.protocol import Environment, MeasurementRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SliceConfig
    from repro.sim.network import SimulationResult
    from repro.sim.parameters import SimulationParameters

__all__ = ["MeasurementEngine", "engine_telemetry"]


class _EngineTelemetry:
    """Process-wide execution counters feeding the service cost ledger.

    Engines are created deep inside stages and experiment runners, so
    per-engine counters cannot be aggregated by outer code that never sees
    them.  These process-wide counters can: every engine increments them on
    execution (cache hits excluded), and
    :class:`~repro.service.costs.CostLedger` diffs two snapshots to cost an
    arbitrary block of work.
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self.executed_requests = 0
        self.submitted_batches = 0
        self.sim_seconds = 0.0

    def record_batch(self) -> None:
        with self._lock:
            self.submitted_batches += 1

    def record_executed(self, count: int, sim_seconds: float) -> None:
        with self._lock:
            self.executed_requests += count
            self.sim_seconds += sim_seconds

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "executed_requests": self.executed_requests,
                "submitted_batches": self.submitted_batches,
                "sim_seconds": self.sim_seconds,
            }


_TELEMETRY = _EngineTelemetry()


def engine_telemetry() -> dict[str, float]:
    """Snapshot of the process-wide engine counters.

    Keys: ``executed_requests`` (measurements actually executed — cache
    hits excluded), ``submitted_batches`` and ``sim_seconds`` (simulated
    seconds produced by executed measurements).  Monotonic over the process
    lifetime; cost accounting diffs two snapshots rather than resetting.
    """
    return _TELEMETRY.snapshot()


class MeasurementEngine:
    """Batched, parallel, cached execution of environment measurements.

    Parameters
    ----------
    environment:
        Any :class:`~repro.engine.protocol.Environment` (the simulator or the
        real network).
    executor:
        ``"auto"`` (the default), ``"serial"``, ``"thread"``, ``"process"``,
        ``"vectorized"`` or ``"sharded"``; ``None`` picks the kind selected
        by the ``ATLAS_ENGINE_EXECUTOR`` environment variable, falling back
        to ``auto`` — the adaptive policy of
        :func:`repro.engine.executors.choose_executor`, which picks
        serial / vectorized / sharded / process per batch from the batch
        shape, the usable cores and the environment's capabilities.
        ``vectorized`` collapses each batch into one NumPy pass over the
        environment's ``run_requests`` hook; ``sharded`` runs that pass
        inside each process-pool worker so the multi-core and vectorized
        speedups multiply.  Custom kinds can be registered via
        :func:`repro.engine.executors.register_executor`.
    max_workers:
        Parallel workers of the thread/process/sharded executors (and the
        concurrency cap of ``auto``'s per-batch choice).  Defaults to the
        machine's available parallelism; stages pass their
        ``parallel_queries`` budget here so the paper's scale knobs map
        directly onto real concurrency.
    cache:
        ``True`` (default) uses the process-wide shared cache, ``False``
        disables caching, and a :class:`MeasurementCache` instance gives the
        engine a private cache (useful for isolated hit/miss accounting).
    seed:
        Seed of the stream that resolves ``seed=None`` requests.
    """

    def __init__(
        self,
        environment: Environment,
        executor: str | None = None,
        max_workers: int | None = None,
        cache: MeasurementCache | bool = True,
        seed: int = 0,
    ) -> None:
        self.environment = environment
        self.executor_kind = executor if executor is not None else default_executor_kind()
        self.max_workers = (
            max(1, int(max_workers)) if max_workers is not None else available_parallelism()
        )
        if cache is True:
            self._cache: MeasurementCache | None = shared_cache()
        elif cache is False or cache is None:
            self._cache = None
        else:
            self._cache = cache
        self._seed_sequence = np.random.SeedSequence(int(seed))
        self._executor = make_executor(self.executor_kind, self.max_workers)
        # Engines are routinely created per stage/experiment and dropped
        # without an explicit shutdown(); release any lazily spawned
        # thread/process pool when the engine is garbage collected.
        self._finalizer = weakref.finalize(self, self._executor.shutdown)
        #: Measurements actually executed (cache hits excluded).
        self.executed_requests = 0
        #: Batches submitted through :meth:`run_batch`.
        self.submitted_batches = 0

    # ---------------------------------------------------------------- executor
    @property
    def executor(self):
        """The executor instance dispatching this engine's batches.

        Useful for introspection: ``engine.executor.last_choice`` under the
        ``auto`` kind, ``engine.executor.last_shards`` under ``sharded``.
        """
        return self._executor

    # ------------------------------------------------------------------- cache
    @property
    def cache(self) -> MeasurementCache | None:
        """The cache backing this engine (``None`` when disabled)."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the backing cache (zeros when disabled)."""
        if self._cache is None:
            return CacheStats()
        return self._cache.stats

    def clear_cache(self) -> None:
        """Drop the backing cache's entries (no-op when disabled)."""
        if self._cache is not None:
            self._cache.clear()

    def _cache_key(self, environment: Environment, request: MeasurementRequest) -> tuple:
        # Keys carry the executor's numerics family: the scalar kinds
        # (serial/thread/process) are byte-identical and share entries, but
        # the vectorized family's statistically-equivalent results (the
        # vectorized and sharded kinds, byte-identical to each other) must
        # never be served to a scalar engine (or vice versa) through the
        # process-wide shared cache.  Adaptive executors expose ``numerics``
        # as a callable of the environment — the family must be fixed before
        # cache lookup, so it can depend on the environment's capabilities
        # but never on the batch shape.
        numerics = getattr(self._executor, "numerics", "scalar")
        if callable(numerics):
            numerics = numerics(environment)
        return (environment.fingerprint(), request.key(), numerics)

    # ----------------------------------------------------------------- seeding
    def _next_auto_seed(self) -> int:
        child = self._seed_sequence.spawn(1)[0]
        return int(child.generate_state(1, dtype=np.uint32)[0])

    def _resolve_seeds(self, requests: Iterable[MeasurementRequest]) -> list[MeasurementRequest]:
        resolved = []
        for request in requests:
            if request.seed is None:
                request = request.replace(seed=self._next_auto_seed())
            resolved.append(request)
        return resolved

    # --------------------------------------------------------------- execution
    def run_batch(self, requests: Sequence[MeasurementRequest]) -> list["SimulationResult"]:
        """Execute a batch of requests and return results in submission order.

        Cache hits are served without touching the executor; misses are
        dispatched together so the executor can chunk them across workers.
        """
        self.submitted_batches += 1
        _TELEMETRY.record_batch()
        environment = self.environment
        resolved = list(requests)
        prepare = getattr(environment, "prepare_batch", None)
        if callable(prepare):
            # The hook may resolve seeds itself (the real network falls back
            # to its measurement counter, matching its direct measure path).
            environment, resolved = prepare(resolved)
        resolved = self._resolve_seeds(resolved)

        results: list["SimulationResult | None"] = [None] * len(resolved)
        pending: list[tuple[int, tuple, MeasurementRequest]] = []
        for index, request in enumerate(resolved):
            if self._cache is not None:
                key = self._cache_key(environment, request)
                hit = self._cache.get(key)
                if hit is not None:
                    results[index] = hit
                    continue
            else:
                key = ()
            pending.append((index, key, request))

        if pending:
            executed = self._executor.map_requests(environment, [r for _, _, r in pending])
            self.executed_requests += len(executed)
            _TELEMETRY.record_executed(
                len(executed), sum(float(result.duration_s) for result in executed)
            )
            for (index, key, _), result in zip(pending, executed):
                if self._cache is not None:
                    self._cache.put(key, result)
                results[index] = result
        return results  # type: ignore[return-value]

    def run(
        self,
        config: "SliceConfig",
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
        params: "SimulationParameters | None" = None,
    ) -> "SimulationResult":
        """Execute a single measurement (batched path with one request)."""
        request = MeasurementRequest(
            config=config, traffic=traffic, duration=duration, seed=seed, params=params
        )
        return self.run_batch([request])[0]

    def collect_latencies_batch(self, requests: Sequence[MeasurementRequest]) -> list[np.ndarray]:
        """Batched variant returning only the latency collections."""
        return [result.latencies_ms for result in self.run_batch(requests)]

    def collect_latencies(
        self,
        config: "SliceConfig",
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
        params: "SimulationParameters | None" = None,
    ) -> np.ndarray:
        """Single-measurement variant returning only the latency collection."""
        return self.run(config, traffic=traffic, duration=duration, seed=seed, params=params).latencies_ms

    # ---------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Release engine-owned executor resources.

        Thread pools are torn down (and lazily re-created on reuse); the
        process pools backing the ``process``/``sharded`` kinds are shared
        process-wide and deliberately stay warm — see
        :func:`repro.engine.executors.shutdown_worker_pools` for the real
        teardown.
        """
        self._executor.shutdown()

    def __enter__(self) -> "MeasurementEngine":
        """Enter the context manager (returns the engine itself)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut down the executor pools on context exit."""
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Compact description of the engine's execution setup."""
        return (
            f"MeasurementEngine(environment={type(self.environment).__name__}, "
            f"executor={self.executor_kind!r}, max_workers={self.max_workers}, "
            f"cache={'off' if self._cache is None else 'on'})"
        )
