"""Application traffic models.

The slice application continuously uploads camera frames (540p images) to
the edge server and receives feature-extraction results back; the number of
on-the-fly frames is capped by a congestion-control window that the paper
uses to emulate 1–4 users.  Background best-effort users (YouTube-like
downlink streams) can also be generated for the isolation experiment of
Fig. 11.
"""

from __future__ import annotations

import numpy as np

from repro.sim.scenario import Scenario

__all__ = ["FrameSizeModel", "BackgroundTrafficModel"]


class FrameSizeModel:
    """Samples uplink frame sizes and downlink result sizes.

    Frame sizes follow a truncated normal distribution matching the paper's
    measurement of the Android application (28.8 kB mean, 9.9 kB std); the
    truncation at 20% of the mean avoids non-physical tiny or negative
    frames.
    """

    def __init__(self, scenario: Scenario, rng: np.random.Generator | None = None) -> None:
        self.scenario = scenario
        self._rng = rng if rng is not None else np.random.default_rng()

    def sample_frame_bytes(self) -> float:
        """Draw the size (bytes) of one uplink frame."""
        size = self._rng.normal(
            self.scenario.frame_size_mean_bytes, self.scenario.frame_size_std_bytes
        )
        floor = 0.2 * self.scenario.frame_size_mean_bytes
        return float(max(size, floor))

    def sample_result_bytes(self) -> float:
        """Draw the size (bytes) of one downlink result message."""
        size = self._rng.normal(self.scenario.result_size_bytes, 0.1 * self.scenario.result_size_bytes)
        return float(max(size, 0.2 * self.scenario.result_size_bytes))


class BackgroundTrafficModel:
    """Best-effort background users outside the slice (isolation experiment).

    Each background user streams video on the downlink at a few Mbps.  With
    slice isolation enforced the background load never touches the slice's
    PRB/backhaul/CPU allocations, so the model only needs to report the
    aggregate offered load; when isolation is disabled the RAN model uses the
    number of users to steal PRBs from the slice.
    """

    def __init__(
        self,
        n_users: int,
        per_user_rate_mbps: float = 4.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_users < 0:
            raise ValueError("n_users must be non-negative")
        if per_user_rate_mbps <= 0:
            raise ValueError("per_user_rate_mbps must be positive")
        self.n_users = n_users
        self.per_user_rate_mbps = per_user_rate_mbps
        self._rng = rng if rng is not None else np.random.default_rng()

    def offered_load_mbps(self) -> float:
        """Aggregate downlink load (Mbps) offered by the background users."""
        if self.n_users == 0:
            return 0.0
        rates = self._rng.normal(self.per_user_rate_mbps, 0.5, size=self.n_users)
        return float(np.sum(np.maximum(rates, 0.5)))
