"""Slice configuration actions (Table 2).

The 6-dimensional cross-domain configuration Atlas learns to set: uplink and
downlink PRB budgets and MCS offsets in the RAN, the transport (backhaul)
bandwidth, and the CPU ratio of the slice's edge-server container.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["SliceConfig", "CONFIG_NAMES", "CONFIG_BOUNDS", "MIN_UPLINK_PRBS", "MIN_DOWNLINK_PRBS"]


#: Order of the configuration vector, matching Table 2 of the paper.
CONFIG_NAMES: tuple[str, ...] = (
    "bandwidth_ul",
    "bandwidth_dl",
    "mcs_offset_ul",
    "mcs_offset_dl",
    "backhaul_bw",
    "cpu_ratio",
)

#: Feasible range of each configuration dimension (Table 2).
CONFIG_BOUNDS: dict[str, tuple[float, float]] = {
    "bandwidth_ul": (0.0, 50.0),   # uplink PRBs
    "bandwidth_dl": (0.0, 50.0),   # downlink PRBs
    "mcs_offset_ul": (0.0, 10.0),  # uplink MCS offset
    "mcs_offset_dl": (0.0, 10.0),  # downlink MCS offset
    "backhaul_bw": (0.0, 100.0),   # transport bandwidth (Mbps)
    "cpu_ratio": (0.0, 1.0),       # CPU ratio of the edge-server container
}

#: Minimum PRB allocations the prototype enforces to keep users attached
#: (Sec. 8.2: "we set a minimum of 6 uplink and 3 downlink PRBs").
MIN_UPLINK_PRBS = 6
MIN_DOWNLINK_PRBS = 3


@dataclass(frozen=True)
class SliceConfig:
    """One cross-domain configuration action ``a_t`` for a slice.

    Attributes
    ----------
    bandwidth_ul, bandwidth_dl:
        Maximum uplink/downlink physical resource blocks allocated to the
        slice (out of the 50 PRBs of a 10 MHz LTE carrier).
    mcs_offset_ul, mcs_offset_dl:
        Offsets subtracted from the channel-selected MCS (larger offsets
        trade throughput for robustness).
    backhaul_bw:
        Transport-network bandwidth (Mbps) metered to the slice.
    cpu_ratio:
        Fraction of one CPU allocated to the slice's edge-server container.
    """

    bandwidth_ul: float = 25.0
    bandwidth_dl: float = 25.0
    mcs_offset_ul: float = 0.0
    mcs_offset_dl: float = 0.0
    backhaul_bw: float = 50.0
    cpu_ratio: float = 0.5

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        for name in CONFIG_NAMES:
            lo, hi = CONFIG_BOUNDS[name]
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ValueError(f"configuration {name} must be finite, got {value}")
            if value < lo - 1e-9 or value > hi + 1e-9:
                raise ValueError(f"configuration {name}={value} outside range [{lo}, {hi}]")

    # ------------------------------------------------------------ conversions
    def to_array(self) -> np.ndarray:
        """Return the configuration as a vector in the Table 2 order."""
        return np.array([getattr(self, name) for name in CONFIG_NAMES], dtype=float)

    @classmethod
    def from_array(cls, values) -> "SliceConfig":
        """Build a configuration from a vector in the Table 2 order (clipped to range)."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size != len(CONFIG_NAMES):
            raise ValueError(f"expected {len(CONFIG_NAMES)} configuration values, got {arr.size}")
        clipped = {}
        for name, value in zip(CONFIG_NAMES, arr):
            lo, hi = CONFIG_BOUNDS[name]
            clipped[name] = float(np.clip(value, lo, hi))
        return cls(**clipped)

    @classmethod
    def from_normalized(cls, values) -> "SliceConfig":
        """Build a configuration from a vector of per-dimension fractions in ``[0, 1]``."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size != len(CONFIG_NAMES):
            raise ValueError(f"expected {len(CONFIG_NAMES)} configuration values, got {arr.size}")
        lows, highs = cls.bounds_arrays()
        return cls.from_array(lows + np.clip(arr, 0.0, 1.0) * (highs - lows))

    def to_normalized(self) -> np.ndarray:
        """Return per-dimension fractions of the maximum allocation (``a / A``)."""
        lows, highs = self.bounds_arrays()
        return (self.to_array() - lows) / (highs - lows)

    @classmethod
    def maximum(cls) -> "SliceConfig":
        """The maximum allowable configuration ``A`` (everything fully allocated)."""
        return cls(
            bandwidth_ul=50.0,
            bandwidth_dl=50.0,
            mcs_offset_ul=0.0,
            mcs_offset_dl=0.0,
            backhaul_bw=100.0,
            cpu_ratio=1.0,
        )

    @classmethod
    def bounds_arrays(cls) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper bounds as vectors in the Table 2 order."""
        lows = np.array([CONFIG_BOUNDS[name][0] for name in CONFIG_NAMES])
        highs = np.array([CONFIG_BOUNDS[name][1] for name in CONFIG_NAMES])
        return lows, highs

    def replace(self, **changes) -> "SliceConfig":
        """Return a copy with some fields replaced."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return SliceConfig(**current)

    def resource_usage(self) -> float:
        """Normalised resource usage ``F = |a / A|_1 / dim`` of this action.

        All six configuration dimensions count, exactly as the paper's
        ``F(phi) = |a_t / A|_1`` does (Sec. 5.1); with zero MCS offsets the
        paper's best offline action (9 UL / 3 DL PRBs, 6.2 Mbps backhaul,
        0.8 CPU) evaluates to ~19.8% usage, matching Fig. 17.
        """
        fractions = []
        for name in CONFIG_NAMES:
            lo, hi = CONFIG_BOUNDS[name]
            fractions.append((getattr(self, name) - lo) / (hi - lo))
        return float(np.mean(np.clip(fractions, 0.0, 1.0)))

    def effective_uplink_prbs(self) -> float:
        """Uplink PRBs after enforcing the connectivity minimum."""
        return max(float(self.bandwidth_ul), float(MIN_UPLINK_PRBS))

    def effective_downlink_prbs(self) -> float:
        """Downlink PRBs after enforcing the connectivity minimum."""
        return max(float(self.bandwidth_dl), float(MIN_DOWNLINK_PRBS))
