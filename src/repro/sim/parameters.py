"""Simulation parameters of the learning-based simulator (Table 3).

These are the 7 knobs stage 1 of Atlas searches over to reduce the
sim-to-real discrepancy.  The defaults are the "original simulator" values
reported in Table 4 of the paper: a reference pathloss of 38.57 dB (NS-3
``LogDistancePropagationLossModel`` default), eNB/UE noise figures of 5 and
9 dB, and no additional transport bandwidth/delay, compute time or UE loading
time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["SimulationParameters", "PARAMETER_NAMES", "PARAMETER_BOUNDS"]


#: Order of the parameter vector, matching Table 3 / Table 4 of the paper.
PARAMETER_NAMES: tuple[str, ...] = (
    "baseline_loss",
    "enb_noise_figure",
    "ue_noise_figure",
    "backhaul_bw",
    "backhaul_delay",
    "compute_time",
    "loading_time",
)

#: Feasible range of each simulation parameter (used by the search space).
PARAMETER_BOUNDS: dict[str, tuple[float, float]] = {
    "baseline_loss": (30.0, 50.0),   # dB, base loss of the pathloss model
    "enb_noise_figure": (0.0, 10.0),  # dB
    "ue_noise_figure": (0.0, 13.0),   # dB
    "backhaul_bw": (0.0, 20.0),       # Mbps of additional transport bandwidth
    "backhaul_delay": (0.0, 20.0),    # ms of additional transport delay
    "compute_time": (0.0, 30.0),      # ms of additional edge compute time
    "loading_time": (0.0, 30.0),      # ms of additional UE-side loading time
}


@dataclass(frozen=True)
class SimulationParameters:
    """The 7-dimensional simulation-parameter vector of Table 3.

    Attributes
    ----------
    baseline_loss:
        Base loss (dB) of the log-distance pathloss model (``ReferenceLoss``
        in NS-3).
    enb_noise_figure, ue_noise_figure:
        Receiver noise figures (dB) modelling non-ideal transceivers.
    backhaul_bw:
        Additional transport bandwidth (Mbps) on top of the configured slice
        backhaul allocation.
    backhaul_delay:
        Additional one-way transport delay (ms).
    compute_time:
        Additional per-frame edge compute time (ms).
    loading_time:
        Additional per-frame loading time at the UE (ms).
    """

    baseline_loss: float = 38.57
    enb_noise_figure: float = 5.0
    ue_noise_figure: float = 9.0
    backhaul_bw: float = 0.0
    backhaul_delay: float = 0.0
    compute_time: float = 0.0
    loading_time: float = 0.0

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        for name in PARAMETER_NAMES:
            lo, hi = PARAMETER_BOUNDS[name]
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ValueError(f"simulation parameter {name} must be finite, got {value}")
            if value < lo - 1e-9 or value > hi + 1e-9:
                raise ValueError(
                    f"simulation parameter {name}={value} outside feasible range [{lo}, {hi}]"
                )

    # ------------------------------------------------------------ conversions
    def to_array(self) -> np.ndarray:
        """Return the parameters as a vector in the Table 3 order."""
        return np.array([getattr(self, name) for name in PARAMETER_NAMES], dtype=float)

    @classmethod
    def from_array(cls, values) -> "SimulationParameters":
        """Build parameters from a vector in the Table 3 order (values are clipped)."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size != len(PARAMETER_NAMES):
            raise ValueError(
                f"expected {len(PARAMETER_NAMES)} simulation parameters, got {arr.size}"
            )
        clipped = {}
        for name, value in zip(PARAMETER_NAMES, arr):
            lo, hi = PARAMETER_BOUNDS[name]
            clipped[name] = float(np.clip(value, lo, hi))
        return cls(**clipped)

    @classmethod
    def defaults(cls) -> "SimulationParameters":
        """The original simulator parameters (zero parameter distance)."""
        return cls()

    @classmethod
    def bounds_arrays(cls) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper bounds as vectors in the Table 3 order."""
        lows = np.array([PARAMETER_BOUNDS[name][0] for name in PARAMETER_NAMES])
        highs = np.array([PARAMETER_BOUNDS[name][1] for name in PARAMETER_NAMES])
        return lows, highs

    def replace(self, **changes) -> "SimulationParameters":
        """Return a copy with some fields replaced."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return SimulationParameters(**current)

    def distance_to(self, other: "SimulationParameters", normalized: bool = True) -> float:
        """The l2 parameter distance ``|x - x_hat|_2`` (Eq. 2).

        With ``normalized=True`` (the default used by the search), every
        dimension is first scaled by its feasible range so heterogeneous
        units (dB vs. ms vs. Mbps) contribute comparably.
        """
        delta = self.to_array() - other.to_array()
        if normalized:
            lows, highs = self.bounds_arrays()
            delta = delta / (highs - lows)
        return float(np.linalg.norm(delta))
