"""LTE PHY/MAC abstraction: CQI/MCS selection, PRB data rates, BLER and HARQ.

The mapping tables are simplified versions of the 3GPP link-adaptation chain
used by NS-3's LENA module: SINR selects a CQI, the CQI maps to an MCS whose
spectral efficiency determines the per-PRB data rate, and a block-error-rate
curve around the MCS decoding threshold drives HARQ retransmissions.  The
``mcs_offset`` configuration of Table 2 lowers the selected MCS to trade
throughput for robustness, exactly as the FlexRAN knob does in the prototype.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.channel import PRB_BANDWIDTH_HZ

__all__ = [
    "MAX_MCS",
    "cqi_from_sinr",
    "mcs_from_cqi",
    "select_mcs",
    "select_mcs_array",
    "spectral_efficiency",
    "spectral_efficiency_array",
    "prb_rate_bps",
    "block_error_rate",
    "block_error_rate_array",
    "expected_transmissions",
    "expected_transmissions_array",
    "LinkAdaptation",
]

#: Highest modulation-and-coding-scheme index modelled (64-QAM, rate ~0.93).
MAX_MCS = 28

#: CQI index -> spectral efficiency (bits/s/Hz), 3GPP TS 36.213 Table 7.2.3-1.
_CQI_EFFICIENCY = np.array(
    [
        0.0,      # CQI 0: out of range
        0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758,   # QPSK
        1.4766, 1.9141, 2.4063,                            # 16QAM
        2.7305, 3.3223, 3.9023,                            # 16/64QAM
        4.5234, 5.1152, 5.5547,                            # 64QAM
    ]
)

#: Approximate SINR (dB) required to decode each CQI with ~10% BLER.
_CQI_SINR_THRESHOLDS_DB = np.array(
    [-np.inf, -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7]
)


def cqi_from_sinr(sinr_db: float) -> int:
    """Highest CQI whose decoding threshold is at or below ``sinr_db``."""
    feasible = np.flatnonzero(_CQI_SINR_THRESHOLDS_DB <= sinr_db)
    return int(feasible[-1]) if feasible.size else 0


def mcs_from_cqi(cqi: int) -> int:
    """Map a CQI index (0–15) to an MCS index (0–28)."""
    if cqi <= 0:
        return 0
    cqi = min(int(cqi), 15)
    return int(round((cqi - 1) * MAX_MCS / 14.0))


def select_mcs(sinr_db: float, mcs_offset: float = 0.0) -> int:
    """Channel-selected MCS lowered by the configured ``mcs_offset``."""
    base = mcs_from_cqi(cqi_from_sinr(sinr_db))
    return int(np.clip(round(base - mcs_offset), 0, MAX_MCS))


def select_mcs_array(sinr_db, mcs_offset) -> np.ndarray:
    """Vectorized :func:`select_mcs` over arrays of SINRs and offsets.

    ``np.rint`` rounds half to even exactly like the scalar path's Python
    ``round``, so the two paths pick identical MCS indices for identical
    inputs.
    """
    sinr = np.asarray(sinr_db, dtype=float)
    cqi = np.searchsorted(_CQI_SINR_THRESHOLDS_DB, sinr, side="right") - 1
    base = np.where(cqi <= 0, 0, (np.minimum(cqi, 15) - 1) * MAX_MCS // 14)
    return np.clip(np.rint(base - mcs_offset), 0, MAX_MCS).astype(np.int64)


def spectral_efficiency(mcs: int) -> float:
    """Spectral efficiency (bits/s/Hz) of an MCS index via CQI interpolation."""
    mcs = int(np.clip(mcs, 0, MAX_MCS))
    cqi_equivalent = 1.0 + mcs * 14.0 / MAX_MCS
    lower = int(np.floor(cqi_equivalent))
    upper = min(lower + 1, 15)
    fraction = cqi_equivalent - lower
    return float((1.0 - fraction) * _CQI_EFFICIENCY[lower] + fraction * _CQI_EFFICIENCY[upper])


def spectral_efficiency_array(mcs) -> np.ndarray:
    """Vectorized :func:`spectral_efficiency` over an array of MCS indices."""
    mcs = np.clip(np.asarray(mcs), 0, MAX_MCS)
    cqi_equivalent = 1.0 + mcs * 14.0 / MAX_MCS
    lower = np.floor(cqi_equivalent).astype(np.int64)
    upper = np.minimum(lower + 1, 15)
    fraction = cqi_equivalent - lower
    return (1.0 - fraction) * _CQI_EFFICIENCY[lower] + fraction * _CQI_EFFICIENCY[upper]


def prb_rate_bps(n_prbs: float, mcs: int, efficiency_factor: float = 1.0) -> float:
    """Achievable data rate over ``n_prbs`` resource blocks at a given MCS.

    ``efficiency_factor`` accounts for protocol overhead (reference signals,
    control channels, RLC/PDCP headers); the uplink of the paper's prototype
    reaches roughly 0.4 Mbps/PRB and the downlink roughly 0.65 Mbps/PRB,
    which correspond to factors of ~0.4 and ~0.65 at the top MCS.
    """
    if n_prbs <= 0:
        return 0.0
    if efficiency_factor <= 0:
        raise ValueError("efficiency_factor must be positive")
    return float(n_prbs * PRB_BANDWIDTH_HZ * spectral_efficiency(mcs) * efficiency_factor)


def block_error_rate(sinr_db: float, mcs: int, floor: float = 2e-3) -> float:
    """Block error probability of one transmission attempt.

    Modelled as a logistic curve around the MCS decoding threshold with a
    residual error floor (decoding failures that persist even at high SINR,
    e.g. from bursty interference), matching the small but non-zero packet
    error rates of Table 1.
    """
    mcs = int(np.clip(mcs, 0, MAX_MCS))
    cqi_equivalent = 1 + int(round(mcs * 14.0 / MAX_MCS))
    threshold = _CQI_SINR_THRESHOLDS_DB[min(cqi_equivalent, 15)]
    if not np.isfinite(threshold):
        threshold = -7.0
    margin = sinr_db - threshold
    bler = 1.0 / (1.0 + np.exp(1.5 * margin))
    return float(np.clip(bler + floor, floor, 1.0))


def block_error_rate_array(sinr_db, mcs, floor) -> np.ndarray:
    """Vectorized :func:`block_error_rate` over arrays (``floor`` may be an array)."""
    mcs = np.clip(np.asarray(mcs), 0, MAX_MCS)
    cqi_equivalent = 1 + np.rint(mcs * 14.0 / MAX_MCS).astype(np.int64)
    threshold = _CQI_SINR_THRESHOLDS_DB[np.minimum(cqi_equivalent, 15)]
    threshold = np.where(np.isfinite(threshold), threshold, -7.0)
    margin = np.asarray(sinr_db, dtype=float) - threshold
    with np.errstate(over="ignore"):
        bler = 1.0 / (1.0 + np.exp(1.5 * margin))
    floor = np.asarray(floor, dtype=float)
    return np.clip(bler + floor, floor, 1.0)


def expected_transmissions_array(bler, max_attempts: int = 4) -> np.ndarray:
    """Vectorized :func:`expected_transmissions` over an array of error rates."""
    bler = np.asarray(bler, dtype=float)
    attempts = np.zeros_like(bler)
    survive = np.ones_like(bler)
    for attempt in range(1, max_attempts + 1):
        attempts += attempt * survive * (1.0 - bler)
        survive = survive * bler
    return attempts + max_attempts * survive


def expected_transmissions(bler: float, max_attempts: int = 4) -> float:
    """Expected number of HARQ attempts given a per-attempt error rate."""
    if not 0.0 <= bler <= 1.0:
        raise ValueError("bler must be in [0, 1]")
    attempts = 0.0
    survive = 1.0
    for attempt in range(1, max_attempts + 1):
        attempts += attempt * survive * (1.0 - bler)
        survive *= bler
    # Frames that fail all attempts still consumed max_attempts transmissions.
    attempts += max_attempts * survive
    return float(attempts)


@dataclass(frozen=True)
class LinkAdaptation:
    """Resolved link state for one direction of the radio link.

    Produced by the RAN model from the channel SINR and the slice
    configuration; consumed by the transmission servers.
    """

    sinr_db: float
    mcs: int
    n_prbs: float
    rate_bps: float
    bler: float

    @property
    def residual_error_rate(self) -> float:
        """Probability a transport block is lost after all HARQ attempts."""
        return float(self.bler**4)
