"""Scenario description: the environment beyond actions and simulation parameters.

A scenario captures the network state ``s_t`` of the paper (user traffic,
user position/mobility, number of extra background users) together with the
fixed physical setup of the prototype (transmit powers, carrier, application
traffic statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """Environment and workload description for one simulation/measurement run.

    Attributes
    ----------
    traffic:
        Number of on-the-fly frames the application keeps in flight; the
        paper uses this congestion-control window to emulate 1–4 users.
    distance_m:
        Line-of-sight UE–eNB distance in metres (1 m in the prototype).
    mobility:
        ``"static"`` or ``"random_walk"``; a random walk re-samples the
        distance during the run, increasing channel variability (Fig. 10).
    extra_users:
        Background users attached to the cell generating best-effort traffic
        outside the slice (isolation experiment, Fig. 11).
    ue_tx_power_dbm, enb_tx_power_dbm:
        Uplink and downlink transmit powers.
    frame_size_mean_bytes, frame_size_std_bytes:
        Uplink frame (540p image) size statistics; the paper measures
        28.8 kB mean and 9.9 kB standard deviation.
    result_size_bytes:
        Size of the downlink feature-extraction result.
    compute_time_mean_ms, compute_time_std_ms:
        Edge compute (ORB feature extraction) service-time statistics at
        CPU ratio 1.0; the paper measures 81 ms mean and 35 ms std.
    base_loading_time_ms:
        UE-side frame capture/encoding time before transmission.
    duration_s:
        Length of one measurement run (60 s in the paper).
    """

    traffic: int = 1
    distance_m: float = 1.0
    mobility: str = "static"
    extra_users: int = 0
    ue_tx_power_dbm: float = 23.0
    enb_tx_power_dbm: float = 43.0
    frame_size_mean_bytes: float = 28_800.0
    frame_size_std_bytes: float = 9_900.0
    result_size_bytes: float = 2_000.0
    compute_time_mean_ms: float = 81.0
    compute_time_std_ms: float = 35.0
    base_loading_time_ms: float = 20.0
    duration_s: float = 60.0

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.traffic < 1:
            raise ValueError(f"traffic must be >= 1, got {self.traffic}")
        if self.distance_m <= 0:
            raise ValueError(f"distance_m must be positive, got {self.distance_m}")
        if self.mobility not in ("static", "random_walk"):
            raise ValueError(f"mobility must be 'static' or 'random_walk', got {self.mobility!r}")
        if self.extra_users < 0:
            raise ValueError(f"extra_users must be >= 0, got {self.extra_users}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")

    def replace(self, **changes) -> "Scenario":
        """Return a copy with some fields replaced."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return Scenario(**current)

    def state_vector(self) -> tuple[float, ...]:
        """The observable network state ``s_t`` exposed to the learning stages."""
        return (float(self.traffic), float(self.distance_m), float(self.extra_users))
