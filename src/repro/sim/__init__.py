"""Discrete-event network simulator substrate (the NS-3 stand-in).

The paper's stage 1 and stage 2 interact with an NS-3/LENA LTE simulator; in
this reproduction the simulator is implemented natively in Python on top of a
small discrete-event engine.  It models the same end-to-end path as the
paper's prototype (Sec. 7): an LTE radio access network with per-slice PRB
allocation, a point-to-point transport/backhaul link, an EPC core forwarding
stage, and a queue-based edge-compute server executing the frame-offloading
application.

The simulator is fully parameterised by

* the 6-dimensional slice configuration of Table 2
  (:class:`repro.sim.config.SliceConfig`), and
* the 7-dimensional simulation-parameter vector of Table 3
  (:class:`repro.sim.parameters.SimulationParameters`),

which is exactly the interface Atlas' three stages need.
"""

from repro.sim.application import FrameRecord, OffloadingApplication
from repro.sim.config import SliceConfig
from repro.sim.events import EventScheduler, FifoServer
from repro.sim.faults import (
    DriftRamp,
    DropoutWindow,
    FaultedEnvironment,
    FaultSchedule,
    RandomDropout,
    StormWindow,
    dropped_result,
    telemetry_lost,
)
from repro.sim.network import NetworkSimulator, SimulationResult
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

__all__ = [
    "EventScheduler",
    "FifoServer",
    "SliceConfig",
    "SimulationParameters",
    "Scenario",
    "NetworkSimulator",
    "SimulationResult",
    "OffloadingApplication",
    "FrameRecord",
    "DriftRamp",
    "StormWindow",
    "DropoutWindow",
    "RandomDropout",
    "FaultSchedule",
    "FaultedEnvironment",
    "dropped_result",
    "telemetry_lost",
]
