"""Vectorized batch evaluation of the network simulator.

The scalar path (:meth:`repro.sim.network.NetworkSimulator.run`) walks every
frame through a discrete-event calendar — flexible, but each of the N
configurations a stage evaluates per iteration pays the full Python event
loop.  This module evaluates all N lanes of a batch in one NumPy pass:

* every per-frame quantity (frame sizes, link adaptation, HARQ/ARQ
  penalties, compute times, jitters) is precomputed as an ``(N, B)`` array
  for a block of ``B`` frame indices at a time, and
* the closed-loop pipeline itself — UE loading, radio uplink, backhaul,
  core, edge compute, core/backhaul/radio downlink, with ``traffic`` frames
  kept in flight — collapses to the Lindley recurrence of a tandem of FIFO
  servers, evaluated frame-by-frame with ``(N,)``-wide vector operations.

Numerical contract
    The vectorized path samples the *same distributions* as the scalar
    discrete-event path and applies the same queueing discipline, but it
    consumes its per-lane random stream in a different (fixed, batched)
    order.  Results for one request are therefore statistically equivalent
    to — not byte-identical with — the scalar path; the equivalence gate in
    ``tests/test_sim_batch.py`` pins the agreement on every catalog
    scenario.  The only behavioural approximation is frame re-ordering:
    the scalar path spawns a new frame on every *completion event*, while
    the vectorized recurrence assumes frame ``j`` is spawned by the
    completion of frame ``j - traffic``.  The two differ only when latency
    spikes reorder completions, which perturbs per-frame pairings but not
    the latency distribution.

Determinism and shard invariance
    Each lane draws from its own generator, seeded exactly like the scalar
    path (``SeedSequence([base_seed, request_seed])``), on a fixed schedule:
    the post-run draws (ping, saturation throughput) first, then one
    ``(_VARS, _BLOCK_FRAMES)`` block of normals/uniforms per block of frame
    indices.  A lane's draws depend only on its own request, never on which
    other requests share the batch, so ``run_batch`` results are
    reproducible per request under any batch composition.

    This per-lane seed-stream slicing is a load-bearing contract: it means
    any *partition* of a batch evaluates byte-identically to the whole
    batch — lanes that outlive their shard-mates merely stop producing
    finite frames, and the extra blocks a longer-lived composition draws
    are never consumed by a finished lane's result.  The ``sharded`` engine
    executor (``repro/engine/executors.py``) relies on exactly this to
    split one large batch across worker processes, each running this
    vectorized pass over its shard, with results byte-identical to the
    single whole-batch pass; ``tests/test_engine_sharded.py`` gates the
    equivalence on every catalog scenario.  Sharding also has a second,
    less obvious win: a shard groups fewer lanes under one "longest lane",
    so short-lane shards exit their block loop earlier instead of idling
    until the global longest lane completes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.sim import ran as _ran
from repro.sim.channel import PRB_BANDWIDTH_HZ
from repro.sim.config import SliceConfig
from repro.sim.core_network import BASE_FORWARDING_DELAY_MS
from repro.sim.edge import MINIMUM_CPU_RATIO
from repro.sim.imperfections import Imperfections
from repro.sim.lte import (
    block_error_rate_array,
    expected_transmissions_array,
    select_mcs_array,
    spectral_efficiency_array,
)
from repro.sim.transport import BASE_PROPAGATION_DELAY_MS, MINIMUM_BACKHAUL_MBPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import SimulationResult
    from repro.sim.parameters import SimulationParameters
    from repro.sim.scenario import Scenario

__all__ = ["simulate_batch"]

#: Frame indices evaluated per precomputation block.  Part of the per-lane
#: random-draw schedule: changing it re-shuffles the vectorized streams
#: (like changing a seed derivation would), so treat it as a constant.
_BLOCK_FRAMES = 256

#: Hard cap on frame indices per batch — a runaway guard, far above any
#: realistic closed-loop run (the paper's 60 s runs complete ~10^3 frames).
_MAX_FRAMES = 2_000_000

#: Thermal noise density (dBm/Hz), mirroring :mod:`repro.sim.channel`.
_THERMAL_NOISE_DBM_PER_HZ = -174.0

#: Core-network defaults mirrored from :class:`repro.sim.core_network.CoreNetwork`
#: (the simulator facade always builds it with default arguments).
_CORE_SERVICE_S = 0.1 / 1e3
_CORE_JITTER_MS = 0.2
#: Backhaul propagation jitter mirrored from :class:`repro.sim.transport.BackhaulLink`.
_BACKHAUL_JITTER_MS = 0.3

# Normal-draw rows of one precomputation block (fixed schedule, see module
# docstring).
_N_FRAME, _N_RESULT, _N_LOADING, _N_UL_FADE, _N_BH_UL, _N_CORE_UL, _N_COMPUTE, \
    _N_CORE_DL, _N_BH_DL, _N_DL_FADE = range(10)
# Uniform-draw rows.
_U_UL_DIST, _U_UL_DEEP, _U_UL_ERR, _U_UL_ARQ, _U_DL_DIST, _U_DL_DEEP, _U_DL_ERR, \
    _U_DL_ARQ, _U_SPIKE, _U_SPIKE_MAG = range(10)


def _per_lane(values, dtype=float) -> np.ndarray:
    return np.asarray(list(values), dtype=dtype)


def _available_prbs(configured: np.ndarray, isolation: bool, extra_users: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`RadioAccessNetwork._available_prbs`."""
    if isolation:
        return configured
    stolen = np.minimum(configured * 0.2 * extra_users, configured * 0.8)
    return np.where(extra_users > 0, configured - stolen, configured)


def _adaptation(
    *,
    prbs: np.ndarray,
    tx_power_dbm: np.ndarray,
    noise_figure_db: np.ndarray,
    baseline_loss: np.ndarray,
    distance: np.ndarray,
    fading_db: np.ndarray,
    mcs_offset: np.ndarray,
    efficiency_factor: float,
    rate_derate: float,
    bler_floor: float,
):
    """Vectorized link adaptation: SINR -> MCS -> rate/BLER for one direction.

    All lane-shaped inputs broadcast against the frame axis, so the same
    routine serves the per-frame ``(N, B)`` arrays of the main loop and the
    per-lane ``(N,)`` post-run draws (ping, saturation throughput).
    """
    pathloss = baseline_loss + 30.0 * np.log10(np.maximum(distance, 1.0))
    bandwidth_hz = np.maximum(prbs, 1.0) * PRB_BANDWIDTH_HZ
    noise_dbm = _THERMAL_NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + noise_figure_db
    sinr = tx_power_dbm - pathloss - fading_db - noise_dbm
    mcs = select_mcs_array(sinr, mcs_offset)
    rate = np.where(
        prbs > 0,
        prbs * PRB_BANDWIDTH_HZ * spectral_efficiency_array(mcs) * efficiency_factor,
        0.0,
    ) * rate_derate
    bler = block_error_rate_array(sinr, mcs, bler_floor)
    return sinr, rate, bler


def _transmission_time_s(
    size_bytes: np.ndarray,
    rate_bps: np.ndarray,
    bler: np.ndarray,
    arq_uniform: np.ndarray,
) -> np.ndarray:
    """Vectorized :meth:`RadioAccessNetwork._transmission_time_s`."""
    retx = expected_transmissions_array(bler)
    safe_rate = np.where(rate_bps > 0, rate_bps, 1.0)
    airtime = size_bytes * 8.0 / safe_rate
    harq_penalty = (retx - 1.0) * _ran._HARQ_RTT_MS / 1e3
    arq_penalty = np.where(arq_uniform < bler**4, _ran._ARQ_RECOVERY_MS / 1e3, 0.0)
    return np.where(rate_bps > 0, airtime * retx + harq_penalty + arq_penalty, 2.0)


def _sample_distance(
    uniform: np.ndarray, distance_m: np.ndarray, random_walk: np.ndarray
) -> np.ndarray:
    """Vectorized :meth:`RadioAccessNetwork._current_distance`."""
    spread = np.maximum(1.0, distance_m)
    walked = 0.5 + uniform * (distance_m + spread - 0.5)
    return np.where(random_walk, walked, distance_m)


def simulate_batch(
    configs: Sequence[SliceConfig],
    scenarios: Sequence["Scenario"],
    params: Sequence["SimulationParameters"],
    imperfections: Imperfections,
    durations: Sequence[float],
    rngs: Sequence[np.random.Generator],
    isolation: bool = True,
) -> list["SimulationResult"]:
    """Evaluate N ``(config, scenario, params, duration, rng)`` lanes in one pass.

    The entry point the simulator facade (and through it the ``vectorized``
    engine executor) uses; all sequences must have equal length N.  Returns
    one :class:`~repro.sim.network.SimulationResult` per lane, in order.
    """
    from repro.sim.network import SimulationResult

    n = len(configs)
    if not (len(scenarios) == len(params) == len(durations) == len(rngs) == n):
        raise ValueError("all per-lane sequences must have the same length")
    if n == 0:
        return []
    imp = imperfections

    # ------------------------------------------------- per-lane constants (N,)
    traffic = _per_lane((s.traffic for s in scenarios), dtype=np.int64)
    duration = _per_lane(durations)
    distance_m = _per_lane(s.distance_m for s in scenarios)
    random_walk = np.array([s.mobility == "random_walk" for s in scenarios])
    extra_users = _per_lane(s.extra_users for s in scenarios)
    ue_tx = _per_lane(s.ue_tx_power_dbm for s in scenarios)
    enb_tx = _per_lane(s.enb_tx_power_dbm for s in scenarios)
    frame_mean = _per_lane(s.frame_size_mean_bytes for s in scenarios)
    frame_std = _per_lane(s.frame_size_std_bytes for s in scenarios)
    result_mean = _per_lane(s.result_size_bytes for s in scenarios)
    base_loading = _per_lane(s.base_loading_time_ms for s in scenarios)

    baseline_loss = _per_lane(p.baseline_loss for p in params)
    enb_nf = _per_lane(p.enb_noise_figure for p in params)
    ue_nf = _per_lane(p.ue_noise_figure for p in params)
    p_backhaul_delay = _per_lane(p.backhaul_delay for p in params)
    p_compute = _per_lane(p.compute_time for p in params)

    ul_prbs = _available_prbs(
        _per_lane(c.effective_uplink_prbs() for c in configs), isolation, extra_users
    )
    dl_prbs = _available_prbs(
        _per_lane(c.effective_downlink_prbs() for c in configs), isolation, extra_users
    )
    mcs_off_ul = _per_lane(c.mcs_offset_ul for c in configs)
    mcs_off_dl = _per_lane(c.mcs_offset_dl for c in configs)
    capacity_mbps = np.maximum(
        _per_lane(c.backhaul_bw for c in configs) + _per_lane(p.backhaul_bw for p in params),
        MINIMUM_BACKHAUL_MBPS,
    )
    cpu_ratio = np.maximum(_per_lane(c.cpu_ratio for c in configs), MINIMUM_CPU_RATIO)

    compute_mean = _per_lane(s.compute_time_mean_ms for s in scenarios) * imp.compute_slowdown
    compute_std = _per_lane(s.compute_time_std_ms for s in scenarios) * imp.compute_jitter_scale
    loading_extra_ms = (
        _per_lane(p.loading_time for p in params)
        + imp.per_frame_overhead_ms
        + imp.per_traffic_overhead_ms * np.maximum(traffic - 1, 0)
    )
    ul_floor = 4e-3 * max(imp.error_floor_scale, 1e-6)
    dl_floor = 2e-3 * max(imp.error_floor_scale, 1e-6)
    spike_lo, spike_hi = imp.spike_ms_range
    serialization_denominator = capacity_mbps[:, None] * 1e6

    # Post-run draws come first on each lane's schedule so their position —
    # and therefore the ping/saturation metrics — cannot depend on how many
    # frame blocks the longest-lived lane of the batch consumes.
    post_normals = np.stack([rng.standard_normal(5) for rng in rngs])  # (N, 5)
    post_uniforms = np.stack([rng.random(8) for rng in rngs])  # (N, 8)

    # ----------------------------------------------------- closed-loop rollout
    lanes = np.arange(n)
    # Per-server "previous service finished at" state of the Lindley recurrence.
    fin_ul = np.zeros(n)
    fin_bh_ul = np.zeros(n)
    fin_core_ul = np.zeros(n)
    fin_edge = np.zeros(n)
    fin_core_dl = np.zeros(n)
    fin_bh_dl = np.zeros(n)
    fin_dl = np.zeros(n)

    completed_mat = np.full((n, _BLOCK_FRAMES), np.inf)
    blocks: list[dict[str, np.ndarray]] = []
    total_frames = 0
    done = False

    while not done:
        start = total_frames
        if start + _BLOCK_FRAMES > completed_mat.shape[1]:
            completed_mat = np.concatenate(
                [completed_mat, np.full((n, completed_mat.shape[1]), np.inf)], axis=1
            )
        normals = np.stack([rng.standard_normal((10, _BLOCK_FRAMES)) for rng in rngs])
        uniforms = np.stack([rng.random((10, _BLOCK_FRAMES)) for rng in rngs])

        frame_bytes = np.maximum(
            frame_mean[:, None] + frame_std[:, None] * normals[:, _N_FRAME],
            0.2 * frame_mean[:, None],
        )
        result_bytes = np.maximum(
            result_mean[:, None] * (1.0 + 0.1 * normals[:, _N_RESULT]),
            0.2 * result_mean[:, None],
        )
        loading_s = (
            base_loading[:, None]
            + loading_extra_ms[:, None]
            + np.abs(normals[:, _N_LOADING]) * 0.1 * base_loading[:, None]
        ) / 1e3

        ul_fading = imp.fading_std_db * normals[:, _N_UL_FADE] + np.where(
            uniforms[:, _U_UL_DEEP] < imp.deep_fade_probability, imp.deep_fade_db, 0.0
        )
        _, ul_rate, ul_bler = _adaptation(
            prbs=ul_prbs[:, None],
            tx_power_dbm=ue_tx[:, None],
            noise_figure_db=enb_nf[:, None],
            baseline_loss=baseline_loss[:, None],
            distance=_sample_distance(
                uniforms[:, _U_UL_DIST], distance_m[:, None], random_walk[:, None]
            ),
            fading_db=ul_fading,
            mcs_offset=mcs_off_ul[:, None],
            efficiency_factor=_ran.UL_EFFICIENCY_FACTOR,
            rate_derate=imp.ul_rate_derate,
            bler_floor=ul_floor,
        )
        ul_service = _transmission_time_s(frame_bytes, ul_rate, ul_bler, uniforms[:, _U_UL_ARQ])
        ul_error = uniforms[:, _U_UL_ERR] < ul_bler

        dl_fading = imp.fading_std_db * normals[:, _N_DL_FADE] + np.where(
            uniforms[:, _U_DL_DEEP] < imp.deep_fade_probability, imp.deep_fade_db, 0.0
        )
        _, dl_rate, dl_bler = _adaptation(
            prbs=dl_prbs[:, None],
            tx_power_dbm=enb_tx[:, None],
            noise_figure_db=ue_nf[:, None],
            baseline_loss=baseline_loss[:, None],
            distance=_sample_distance(
                uniforms[:, _U_DL_DIST], distance_m[:, None], random_walk[:, None]
            ),
            fading_db=dl_fading,
            mcs_offset=mcs_off_dl[:, None],
            efficiency_factor=_ran.DL_EFFICIENCY_FACTOR,
            rate_derate=imp.dl_rate_derate,
            bler_floor=dl_floor,
        )
        dl_service = _transmission_time_s(result_bytes, dl_rate, dl_bler, uniforms[:, _U_DL_ARQ])
        dl_error = uniforms[:, _U_DL_ERR] < dl_bler

        bh_ul_service = frame_bytes * 8.0 / serialization_denominator
        bh_dl_service = result_bytes * 8.0 / serialization_denominator
        bh_ul_post = (
            BASE_PROPAGATION_DELAY_MS
            + p_backhaul_delay[:, None]
            + np.abs(normals[:, _N_BH_UL]) * _BACKHAUL_JITTER_MS
        ) / 1e3
        bh_dl_post = (
            BASE_PROPAGATION_DELAY_MS
            + p_backhaul_delay[:, None]
            + np.abs(normals[:, _N_BH_DL]) * _BACKHAUL_JITTER_MS
        ) / 1e3
        core_ul_post = (
            BASE_FORWARDING_DELAY_MS + np.abs(normals[:, _N_CORE_UL]) * _CORE_JITTER_MS
        ) / 1e3
        core_dl_post = (
            BASE_FORWARDING_DELAY_MS + np.abs(normals[:, _N_CORE_DL]) * _CORE_JITTER_MS
        ) / 1e3
        compute_s = (
            np.maximum(
                compute_mean[:, None] + compute_std[:, None] * normals[:, _N_COMPUTE],
                0.2 * compute_mean[:, None],
            )
            / cpu_ratio[:, None]
            + p_compute[:, None]
        ) / 1e3
        spike_s = np.where(
            uniforms[:, _U_SPIKE] < imp.spike_probability,
            (spike_lo + uniforms[:, _U_SPIKE_MAG] * (spike_hi - spike_lo)) / 1e3,
            0.0,
        )

        block = {
            name: np.empty((n, _BLOCK_FRAMES))
            for name in (
                "created", "arr_ul", "start_ul", "fin_ul", "arr_core", "arr_edge",
                "fin_edge", "arr_ran_dl", "start_dl", "completed",
            )
        }
        block["ul_error"] = ul_error
        block["dl_error"] = dl_error

        for j in range(_BLOCK_FRAMES):
            g = start + j
            window = g - traffic
            recycled = completed_mat[lanes, np.maximum(window, 0)]
            created = np.where(window < 0, g * 0.005, recycled)
            # A frame is generated only if its triggering event fires within
            # the run; inf marks "never generated" and poisons all downstream
            # timestamps of the lane, which by the closed loop has no later
            # frames either.
            created = np.where(created <= duration, created, np.inf)
            if not np.any(np.isfinite(created)):
                done = True
                block = {name: values[:, :j] for name, values in block.items()}
                break

            arr_ul = created + loading_s[:, j]
            start_ul = np.maximum(arr_ul, fin_ul)
            fin_ul = start_ul + ul_service[:, j]
            fin_bh_ul = np.maximum(fin_ul, fin_bh_ul) + bh_ul_service[:, j]
            arr_core = fin_bh_ul + bh_ul_post[:, j]
            fin_core_ul = np.maximum(arr_core, fin_core_ul) + _CORE_SERVICE_S
            arr_edge = fin_core_ul + core_ul_post[:, j]
            start_edge = np.maximum(arr_edge, fin_edge)
            fin_edge = start_edge + compute_s[:, j]
            fin_core_dl = np.maximum(fin_edge, fin_core_dl) + _CORE_SERVICE_S
            arr_bh_dl = fin_core_dl + core_dl_post[:, j]
            fin_bh_dl = np.maximum(arr_bh_dl, fin_bh_dl) + bh_dl_service[:, j]
            arr_ran_dl = fin_bh_dl + bh_dl_post[:, j]
            start_dl = np.maximum(arr_ran_dl, fin_dl)
            fin_dl = start_dl + dl_service[:, j]
            completed = fin_dl + spike_s[:, j]

            completed_mat[:, g] = completed
            block["created"][:, j] = created
            block["arr_ul"][:, j] = arr_ul
            block["start_ul"][:, j] = start_ul
            block["fin_ul"][:, j] = fin_ul
            block["arr_core"][:, j] = arr_core
            block["arr_edge"][:, j] = arr_edge
            block["fin_edge"][:, j] = fin_edge
            block["arr_ran_dl"][:, j] = arr_ran_dl
            block["start_dl"][:, j] = start_dl
            block["completed"][:, j] = completed
            total_frames += 1

        blocks.append(block)
        if total_frames >= _MAX_FRAMES:  # pragma: no cover - runaway guard
            raise RuntimeError(
                f"vectorized batch exceeded {_MAX_FRAMES} frame indices; "
                "check the duration/traffic inputs"
            )

    timeline = {
        name: np.concatenate([block[name] for block in blocks], axis=1) for name in blocks[0]
    }

    # ------------------------------------------------------- post-run metrics
    full_prbs = _available_prbs(
        np.full(n, float(SliceConfig.maximum().bandwidth_ul)), isolation, extra_users
    )
    sat_metrics = []
    for uplink in (True, False):
        offset = 0 if uplink else 1
        fading = imp.fading_std_db * post_normals[:, offset] + np.where(
            post_uniforms[:, offset] < imp.deep_fade_probability, imp.deep_fade_db, 0.0
        )
        _, rate, bler = _adaptation(
            prbs=full_prbs,
            tx_power_dbm=ue_tx if uplink else enb_tx,
            noise_figure_db=enb_nf if uplink else ue_nf,
            baseline_loss=baseline_loss,
            distance=_sample_distance(post_uniforms[:, 4 + offset], distance_m, random_walk),
            fading_db=fading,
            mcs_offset=np.zeros(n),
            efficiency_factor=_ran.UL_EFFICIENCY_FACTOR if uplink else _ran.DL_EFFICIENCY_FACTOR,
            rate_derate=imp.ul_rate_derate if uplink else imp.dl_rate_derate,
            bler_floor=ul_floor if uplink else dl_floor,
        )
        sat_metrics.append(rate * (1.0 - bler) / 1e6)
    ul_throughput, dl_throughput = sat_metrics

    ping_rates = []
    for uplink in (True, False):
        offset = 2 if uplink else 3
        fading = imp.fading_std_db * post_normals[:, offset] + np.where(
            post_uniforms[:, offset] < imp.deep_fade_probability, imp.deep_fade_db, 0.0
        )
        _, rate, _ = _adaptation(
            prbs=ul_prbs if uplink else dl_prbs,
            tx_power_dbm=ue_tx if uplink else enb_tx,
            noise_figure_db=enb_nf if uplink else ue_nf,
            baseline_loss=baseline_loss,
            distance=_sample_distance(post_uniforms[:, 4 + offset], distance_m, random_walk),
            fading_db=fading,
            mcs_offset=mcs_off_ul if uplink else mcs_off_dl,
            efficiency_factor=_ran.UL_EFFICIENCY_FACTOR if uplink else _ran.DL_EFFICIENCY_FACTOR,
            rate_derate=imp.ul_rate_derate if uplink else imp.dl_rate_derate,
            bler_floor=ul_floor if uplink else dl_floor,
        )
        ping_rates.append(rate)
    ping_bytes = 64.0
    with np.errstate(divide="ignore"):
        air_ms = (ping_bytes * 8.0 / ping_rates[0] + ping_bytes * 8.0 / ping_rates[1]) * 1e3
    transport_ms = 2.0 * (
        ping_bytes * 8.0 / (capacity_mbps * 1e6) * 1e3
        + BASE_PROPAGATION_DELAY_MS
        + p_backhaul_delay
    )
    ping_ms = np.where(
        (ping_rates[0] > 0) & (ping_rates[1] > 0),
        24.0
        + air_ms
        + transport_ms
        + 2.0 * BASE_FORWARDING_DELAY_MS
        + imp.per_frame_overhead_ms * 0.25
        + np.abs(post_normals[:, 4]),
        np.inf,
    )

    # --------------------------------------------------------------- results
    created = timeline["created"]
    completed = timeline["completed"]
    generated = np.isfinite(created)
    completed_ok = generated & (completed <= duration[:, None])
    started_ul = generated & (timeline["start_ul"] <= duration[:, None])
    started_dl = generated & (timeline["start_dl"] <= duration[:, None])

    stage_bounds = (
        ("loading", "created", "arr_ul"),
        ("uplink", "arr_ul", "fin_ul"),
        ("backhaul_ul", "fin_ul", "arr_core"),
        ("core_ul", "arr_core", "arr_edge"),
        ("compute", "arr_edge", "fin_edge"),
        ("backhaul_dl", "fin_edge", "arr_ran_dl"),
        ("downlink", "arr_ran_dl", "completed"),
    )

    results: list[SimulationResult] = []
    for i in range(n):
        ok = completed_ok[i]
        latencies = (completed[i, ok] - created[i, ok]) * 1e3
        breakdown: dict[str, float] = {}
        if ok.any():
            for stage, begin, end in stage_bounds:
                breakdown[stage] = float(
                    np.mean((timeline[end][i, ok] - timeline[begin][i, ok]) * 1e3)
                )
        ul_blocks = int(np.sum(started_ul[i]))
        dl_blocks = int(np.sum(started_dl[i]))
        results.append(
            SimulationResult(
                latencies_ms=latencies,
                frames_generated=int(np.sum(generated[i])),
                frames_completed=int(latencies.size),
                duration_s=float(duration[i]),
                config=configs[i],
                traffic=int(traffic[i]),
                ul_throughput_mbps=float(ul_throughput[i]),
                dl_throughput_mbps=float(dl_throughput[i]),
                ul_packet_error_rate=(
                    float(np.sum(timeline["ul_error"][i] & started_ul[i]) / ul_blocks)
                    if ul_blocks
                    else 0.0
                ),
                dl_packet_error_rate=(
                    float(np.sum(timeline["dl_error"][i] & started_dl[i]) / dl_blocks)
                    if dl_blocks
                    else 0.0
                ),
                ping_delay_ms=float(ping_ms[i]),
                stage_breakdown_ms=breakdown,
            )
        )
    return results
