"""Deterministic fault injection: drift ramps, storm windows, dropout masks.

The paper's online stage operates a learned controller on a *live* network,
where traffic drifts away from the level the offline policy was trained at,
flash crowds storm the SLA, and telemetry goes missing.  This module gives
the reproduction a composable, fully deterministic fault model:

* :class:`DriftRamp` — a mid-episode traffic drift: the load multiplier
  ramps linearly from 1 to ``multiplier`` over a step window and stays
  there, modelling slow demand growth the offline policy never saw.
* :class:`StormWindow` — a flash-crowd SLA storm: extra users join the
  slice for a step window while the radio/compute conditions degrade
  (:meth:`~repro.sim.imperfections.Imperfections.degraded`), modelling an
  event that draws a crowd into one cell.
* :class:`DropoutWindow` / :class:`RandomDropout` — telemetry dropouts:
  the measurement still *happens* on the network, but its telemetry never
  reaches the controller (:func:`dropped_result` empties the collection).

A :class:`FaultSchedule` composes any number of the above into a pure
function of the measurement step — like the traffic traces, there is no
hidden random state, so two runs of the same schedule are byte-identical
under every executor kind.  :class:`FaultedEnvironment` injects a schedule
into any environment (:class:`~repro.sim.network.NetworkSimulator` or
:class:`~repro.prototype.testbed.RealNetwork`) one step at a time, and is
careful to keep the engine cache honest: measurements taken inside a fault
window carry the fault fingerprint in their cache key, while out-of-window
measurements share cache entries with unfaulted runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.protocol import MeasurementRequest
    from repro.sim.config import SliceConfig
    from repro.sim.network import SimulationResult
    from repro.sim.parameters import SimulationParameters
    from repro.sim.scenario import Scenario

__all__ = [
    "DriftRamp",
    "StormWindow",
    "DropoutWindow",
    "RandomDropout",
    "FaultSchedule",
    "FaultedEnvironment",
    "dropped_result",
    "telemetry_lost",
]


@dataclass(frozen=True)
class DriftRamp:
    """Mid-episode traffic drift: load ramps from 1x to ``multiplier``.

    The factor is 1 before ``start`` and climbs linearly over ``steps``
    steps, reaching ``multiplier`` at step ``start + steps - 1``.  With the
    default ``hold=None`` the plateau is permanent — slow demand growth the
    offline policy never saw.  A positive ``hold`` makes the drift an
    *excursion*: the plateau (which includes the peak step) lasts ``hold``
    steps, then the factor ramps symmetrically back down to 1 over another
    ``steps`` steps (a demand surge that eventually recedes).
    """

    start: int = 0
    steps: int = 8
    multiplier: float = 2.0
    hold: int | None = None

    def __post_init__(self) -> None:
        """Validate the ramp window, target multiplier and plateau hold."""
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {self.multiplier}")
        if self.hold is not None and self.hold < 1:
            raise ValueError(f"hold must be None (permanent) or >= 1, got {self.hold}")

    def factor(self, step: int) -> float:
        """Traffic multiplier at measurement step ``step``."""
        if step < self.start:
            return 1.0
        peak = self.start + self.steps - 1
        if step < peak:
            progress = (step - self.start + 1) / self.steps
            return 1.0 + (self.multiplier - 1.0) * progress
        if self.hold is None:
            return self.multiplier
        release = peak + self.hold
        if step < release:
            return self.multiplier
        descent = step - release + 1
        if descent >= self.steps:
            return 1.0
        return self.multiplier - (self.multiplier - 1.0) * descent / self.steps


@dataclass(frozen=True)
class StormWindow:
    """Flash-crowd SLA storm: extra users plus degraded conditions for a window."""

    start: int = 0
    steps: int = 3
    extra_traffic: int = 2
    severity: float = 2.0

    def __post_init__(self) -> None:
        """Validate the storm window, crowd size and degradation severity."""
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.extra_traffic < 0:
            raise ValueError(f"extra_traffic must be >= 0, got {self.extra_traffic}")
        if self.severity < 1.0:
            raise ValueError(f"severity must be >= 1, got {self.severity}")

    def active(self, step: int) -> bool:
        """Whether the storm covers measurement step ``step``."""
        return self.start <= step < self.start + self.steps


@dataclass(frozen=True)
class DropoutWindow:
    """Telemetry dropout over a contiguous step window (optionally periodic).

    ``period=0`` (the default) is a one-shot blackout; a positive ``period``
    repeats the window every ``period`` steps (flaky telemetry uplink).
    """

    start: int = 0
    steps: int = 1
    period: int = 0

    def __post_init__(self) -> None:
        """Validate the window and the repeat period."""
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.period != 0 and self.period < self.start + self.steps:
            raise ValueError(
                f"period must be 0 (one-shot) or cover the window, got {self.period}"
            )

    def dropped(self, step: int) -> bool:
        """Whether telemetry is lost at measurement step ``step``."""
        position = step % self.period if self.period > 0 else step
        return self.start <= position < self.start + self.steps


@dataclass(frozen=True)
class RandomDropout:
    """Seeded pseudo-random telemetry dropout: each step drops with ``rate``.

    Deterministic under seed — whether a step is dropped is a pure function
    of ``(seed, step)`` through a :class:`numpy.random.SeedSequence` hash, so
    the mask replays identically under every executor kind.
    """

    rate: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate the dropout rate."""
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def dropped(self, step: int) -> bool:
        """Whether telemetry is lost at measurement step ``step``."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        word = np.random.SeedSequence([0xD809, int(self.seed), int(step)]).generate_state(1)[0]
        return float(word) / float(2**32) < self.rate


_DropoutMask = Union[DropoutWindow, RandomDropout]


@dataclass(frozen=True)
class FaultSchedule:
    """A composition of drift ramps, storm windows and dropout masks.

    Every query is a pure function of the measurement step: the schedule is
    frozen, hashable (it participates in engine cache keys through
    :class:`FaultedEnvironment`) and picklable (it crosses process-pool
    boundaries inside prepared environments).
    """

    drifts: tuple[DriftRamp, ...] = ()
    storms: tuple[StormWindow, ...] = ()
    dropouts: tuple[_DropoutMask, ...] = ()

    def __post_init__(self) -> None:
        """Coerce field sequences to tuples so the schedule stays hashable."""
        object.__setattr__(self, "drifts", tuple(self.drifts))
        object.__setattr__(self, "storms", tuple(self.storms))
        object.__setattr__(self, "dropouts", tuple(self.dropouts))

    # ------------------------------------------------------------------ queries
    def traffic_factor(self, step: int) -> float:
        """Combined multiplicative drift factor at ``step``."""
        factor = 1.0
        for drift in self.drifts:
            factor *= drift.factor(step)
        return factor

    def extra_traffic(self, step: int) -> int:
        """Additive flash-crowd users at ``step`` (sum of active storms)."""
        return sum(storm.extra_traffic for storm in self.storms if storm.active(step))

    def traffic_at(self, step: int, base: int) -> int:
        """Effective traffic level at ``step`` given the un-faulted ``base`` level."""
        level = float(base) * self.traffic_factor(step) + self.extra_traffic(step)
        return max(1, int(round(level)))

    def storm_severity(self, step: int) -> float:
        """Worst active storm severity at ``step`` (1.0 when no storm is active)."""
        severities = [storm.severity for storm in self.storms if storm.active(step)]
        return max(severities) if severities else 1.0

    def imperfections_at(self, step: int, base):
        """``base`` imperfections under the storm (if any) active at ``step``."""
        severity = self.storm_severity(step)
        return base.degraded(severity) if severity > 1.0 else base

    def dropped(self, step: int) -> bool:
        """Whether any dropout mask loses the telemetry of step ``step``."""
        return any(mask.dropped(step) for mask in self.dropouts)

    def affects(self, step: int) -> bool:
        """Whether any fault changes what step ``step`` measures or reports."""
        return (
            self.dropped(step)
            or self.storm_severity(step) > 1.0
            or self.extra_traffic(step) > 0
            or self.traffic_factor(step) != 1.0
        )

    # ------------------------------------------------------------- derivations
    def without_dropouts(self) -> "FaultSchedule":
        """The same schedule minus telemetry loss.

        The simulator side of an evaluation sees the *world* faults (drift,
        storms — load is observable) but not the measurement-plane failure.
        """
        return replace(self, dropouts=())


def dropped_result(result: "SimulationResult") -> "SimulationResult":
    """Strip a measurement's telemetry: the run happened, the data never arrived.

    ``frames_generated`` survives (the slice knows its own offered load) but
    every delivered metric is gone: the latency collection is empty and the
    networking scalars are NaN.  NaN ``ping_delay_ms`` is the unambiguous
    stale-telemetry marker — genuine measurements report a finite or
    ``inf`` ping, never NaN (see :func:`telemetry_lost`).
    """
    from repro.sim.network import SimulationResult

    return SimulationResult(
        latencies_ms=np.zeros(0, dtype=float),
        frames_generated=result.frames_generated,
        frames_completed=0,
        duration_s=result.duration_s,
        config=result.config,
        traffic=result.traffic,
        ul_throughput_mbps=float("nan"),
        dl_throughput_mbps=float("nan"),
        ul_packet_error_rate=float("nan"),
        dl_packet_error_rate=float("nan"),
        ping_delay_ms=float("nan"),
        stage_breakdown_ms={},
    )


def telemetry_lost(result: "SimulationResult") -> bool:
    """Whether ``result`` is a telemetry-dropout placeholder."""
    return result.latencies_ms.size == 0 and math.isnan(result.ping_delay_ms)


class FaultedEnvironment:
    """Inject a :class:`FaultSchedule` into an environment, one step at a time.

    The wrapper is pinned to a single measurement step (:meth:`at_step`
    derives siblings) because faults are step-indexed while engine batches
    are not: everything submitted through one wrapper experiences that
    step's faults.  It satisfies the full engine Environment protocol:

    * traffic is transformed (drift + storm crowd) at measurement time, so
      requests keep their un-faulted base level;
    * storm windows degrade the environment's imperfections through
      ``with_imperfections`` before measuring;
    * dropout steps return :func:`dropped_result` placeholders;
    * ``prepare_batch`` re-wraps whatever the inner hook resolves to — the
      real network resolves to its inner simulator, and without the re-wrap
      a dropout-window measurement would be cached (and later served!)
      under the bare simulator's key, poisoning the cache for clean runs.

    The fingerprint collapses to the inner environment's own fingerprint on
    steps no fault touches, so out-of-window measurements share cache
    entries with unfaulted runs; fault-window measurements are namespaced
    by ``(schedule, step)``.
    """

    def __init__(self, inner, schedule: FaultSchedule, step: int = 0) -> None:
        self.inner = inner
        self.schedule = schedule
        self.step = int(step)

    def at_step(self, step: int) -> "FaultedEnvironment":
        """This wrapper re-pinned to another measurement step."""
        return FaultedEnvironment(self.inner, self.schedule, step)

    # ------------------------------------------------------------- protocol
    @property
    def scenario(self) -> "Scenario":
        """The wrapped environment's (un-faulted) scenario."""
        return self.inner.scenario

    def fingerprint(self) -> tuple:
        """Content identity: fault-window steps carry the fault fingerprint."""
        inner_fp = tuple(self._resolved().fingerprint())
        if self.schedule.affects(self.step):
            return ("faults", self.schedule, self.step) + inner_fp
        return inner_fp

    def _resolved(self):
        """The inner environment under this step's storm degradation (if any)."""
        severity = self.schedule.storm_severity(self.step)
        if severity <= 1.0:
            return self.inner
        base = getattr(self.inner, "imperfections", None)
        with_imperfections = getattr(self.inner, "with_imperfections", None)
        if base is None or with_imperfections is None:
            raise TypeError(
                f"{type(self.inner).__name__} does not expose imperfections; "
                "storm windows cannot degrade it"
            )
        return with_imperfections(base.degraded(severity))

    def _base_traffic(self, traffic, scenario) -> int:
        if traffic is not None:
            return int(traffic)
        if scenario is not None:
            return scenario.traffic
        return self.inner.scenario.traffic

    def _transform(self, request: "MeasurementRequest") -> "MeasurementRequest":
        level = self.schedule.traffic_at(
            self.step, self._base_traffic(request.traffic, request.scenario)
        )
        return request.replace(traffic=level)

    # ------------------------------------------------------------------- runs
    def run(
        self,
        config: "SliceConfig",
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> "SimulationResult":
        """Measure ``config`` under this step's faults."""
        level = self.schedule.traffic_at(self.step, self._base_traffic(traffic, None))
        result = self._resolved().run(config, traffic=level, duration=duration, seed=seed)
        return dropped_result(result) if self.schedule.dropped(self.step) else result

    def collect_latencies(
        self,
        config: "SliceConfig",
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Measure under faults and return only the latency collection."""
        return self.run(config, traffic=traffic, duration=duration, seed=seed).latencies_ms

    def run_requests(self, requests: Sequence["MeasurementRequest"]) -> "list[SimulationResult]":
        """Evaluate a batch under this step's faults (vectorized hook)."""
        transformed = [self._transform(request) for request in requests]
        env = self._resolved()
        hook = getattr(env, "run_requests", None)
        if hook is None:
            prepare = getattr(env, "prepare_batch", None)
            if prepare is None:
                raise TypeError(
                    f"{type(env).__name__} implements neither run_requests nor prepare_batch"
                )
            prepared, resolved = prepare(transformed)
            hook = getattr(prepared, "run_requests", None)
            if hook is None:
                raise TypeError(
                    f"{type(env).__name__}.prepare_batch resolved to "
                    f"{type(prepared).__name__}, which has no run_requests hook"
                )
            results = hook(resolved)
        else:
            results = hook(transformed)
        if self.schedule.dropped(self.step):
            results = [dropped_result(result) for result in results]
        return results

    def prepare_batch(
        self, requests: Sequence["MeasurementRequest"]
    ) -> "tuple[FaultedEnvironment, list[MeasurementRequest]]":
        """Delegate batch preparation and re-wrap the resolved environment.

        Traffic is *not* transformed here — the re-wrapped environment
        transforms it at measurement time — so requests keep their base
        traffic and the faulted results are keyed under this wrapper's
        fault-carrying fingerprint, never the bare inner environment's.
        """
        prepare = getattr(self.inner, "prepare_batch", None)
        if prepare is None:
            return self, list(requests)
        prepared, resolved = prepare(list(requests))
        return FaultedEnvironment(prepared, self.schedule, self.step), resolved

    # ------------------------------------------------------------- overrides
    def with_params(self, params: "SimulationParameters") -> "FaultedEnvironment":
        """A faulted copy of the wrapped environment under different parameters."""
        with_params = getattr(self.inner, "with_params", None)
        if with_params is None:
            raise TypeError(
                f"{type(self.inner).__name__} does not support simulation-parameter overrides"
            )
        return FaultedEnvironment(with_params(params), self.schedule, self.step)

    def with_scenario(self, scenario: "Scenario") -> "FaultedEnvironment":
        """A faulted copy of the wrapped environment under a different scenario."""
        with_scenario = getattr(self.inner, "with_scenario", None)
        if with_scenario is None:
            raise TypeError(
                f"{type(self.inner).__name__} does not support scenario overrides"
            )
        return FaultedEnvironment(with_scenario(scenario), self.schedule, self.step)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Compact description naming the wrapped environment and step."""
        return f"FaultedEnvironment({self.inner!r}, step={self.step})"
