"""Multi-slice execution with cross-slice resource contention.

The paper's prototype runs a single slice, so every configuration dimension
of Table 2 is bounded only by its own feasible range.  When several slices
share one eNB, one transport link and one edge server, their *combined*
demands can exceed the physical budgets: 50 PRBs per direction on a 10 MHz
LTE carrier, the provisioned transport capacity, and the CPU cores of the
edge host.  This module resolves that contention deterministically:

* :class:`ResourceBudget` declares the shared totals,
* :func:`resolve_contention` scales each oversubscribed dimension
  proportionally (weighted fair sharing, conserving the budget), and
* :class:`SliceRun` / :class:`MultiSliceResult` carry the per-slice inputs
  and outcomes of one concurrent measurement round.

The actual measurements are executed by the environments
(:meth:`repro.sim.network.NetworkSimulator.run_slices`,
:meth:`repro.prototype.testbed.RealNetwork.measure_slices`) as one
:class:`~repro.engine.engine.MeasurementEngine` batch, so multi-slice rounds
parallelise and cache exactly like single-slice ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.sim.config import CONFIG_BOUNDS, SliceConfig
from repro.sim.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prototype.slice_manager import SLA
    from repro.sim.network import SimulationResult

__all__ = [
    "CONTENDED_DIMENSIONS",
    "ResourceBudget",
    "SliceRun",
    "MultiSliceResult",
    "resolve_contention",
    "run_contended",
    "run_contended_batch",
]

#: Configuration dimensions that draw from a shared physical pool.  MCS
#: offsets are per-slice modulation choices and never contend.
CONTENDED_DIMENSIONS: tuple[str, ...] = (
    "bandwidth_ul",
    "bandwidth_dl",
    "backhaul_bw",
    "cpu_ratio",
)


@dataclass(frozen=True)
class ResourceBudget:
    """Shared physical budgets one cell/transport/edge deployment offers.

    Attributes
    ----------
    bandwidth_ul, bandwidth_dl:
        Total uplink/downlink PRBs of the carrier (50 for 10 MHz LTE,
        matching the Table 2 per-slice maxima).
    backhaul_bw:
        Total transport-network capacity in Mbps.
    cpu_ratio:
        Total edge CPU in "cores"; the prototype's edge server pins slice
        containers to two cores, so two slices at ``cpu_ratio=1.0`` fit
        without contention but a third forces scaling.
    """

    bandwidth_ul: float = CONFIG_BOUNDS["bandwidth_ul"][1]
    bandwidth_dl: float = CONFIG_BOUNDS["bandwidth_dl"][1]
    backhaul_bw: float = CONFIG_BOUNDS["backhaul_bw"][1]
    cpu_ratio: float = 2.0

    def __post_init__(self) -> None:
        """Validate that every budget is positive."""
        for name in CONTENDED_DIMENSIONS:
            if getattr(self, name) <= 0:
                raise ValueError(f"budget {name} must be positive, got {getattr(self, name)}")

    def total(self, dimension: str) -> float:
        """Total budget of one contended dimension."""
        if dimension not in CONTENDED_DIMENSIONS:
            raise KeyError(f"{dimension!r} is not a contended dimension")
        return float(getattr(self, dimension))


@dataclass(frozen=True)
class SliceRun:
    """One slice's inputs to a concurrent multi-slice measurement round.

    ``scenario`` carries the slice's workload (traffic, frame statistics);
    ``config`` is the *requested* allocation before contention is resolved.
    """

    name: str
    config: SliceConfig
    scenario: Scenario = field(default_factory=Scenario)
    sla: "SLA | None" = None
    seed: int | None = None


@dataclass
class MultiSliceResult:
    """Outcome of one concurrent multi-slice measurement round.

    Attributes
    ----------
    runs:
        The per-slice inputs, in submission order.
    allocated:
        The post-contention configuration each slice actually received.
    results:
        Per-slice :class:`~repro.sim.network.SimulationResult`.
    budget:
        The shared budget the round was resolved against.
    """

    runs: list[SliceRun]
    allocated: list[SliceConfig]
    results: list["SimulationResult"]
    budget: ResourceBudget

    def __len__(self) -> int:
        """Number of slices in the round."""
        return len(self.runs)

    def slice_names(self) -> list[str]:
        """Names of the slices, in submission order."""
        return [run.name for run in self.runs]

    def total_allocated(self, dimension: str) -> float:
        """Sum of the post-contention allocations of one contended dimension."""
        if dimension not in CONTENDED_DIMENSIONS:
            raise KeyError(f"{dimension!r} is not a contended dimension")
        return float(sum(getattr(config, dimension) for config in self.allocated))

    def qoe(self, index: int) -> float:
        """QoE of slice ``index`` against its own SLA threshold (300 ms default)."""
        run = self.runs[index]
        threshold = run.sla.latency_threshold_ms if run.sla is not None else 300.0
        return self.results[index].qoe(threshold)

    def sla_satisfied(self, index: int) -> bool | None:
        """Whether slice ``index`` met its SLA (``None`` when it has no SLA)."""
        run = self.runs[index]
        if run.sla is None:
            return None
        return run.sla.is_satisfied_by(self.qoe(index))

    def summary(self) -> list[dict]:
        """Per-slice summary rows (name, allocation, QoE, SLA verdict)."""
        rows = []
        for index, (run, config, result) in enumerate(
            zip(self.runs, self.allocated, self.results)
        ):
            rows.append(
                {
                    "slice": run.name,
                    "requested_usage": run.config.resource_usage(),
                    "allocated_usage": config.resource_usage(),
                    "mean_latency_ms": result.mean_latency_ms,
                    "qoe": self.qoe(index),
                    "sla_met": self.sla_satisfied(index),
                }
            )
        return rows

    def format_table(self, title: str) -> str:
        """The round as a printable table: per-slice rows plus allocated totals."""
        lines = [
            title,
            f"{'slice':<18} {'requested%':>10} {'allocated%':>10} {'mean ms':>9} {'QoE':>6}  SLA",
        ]
        for row in self.summary():
            verdict = {True: "met", False: "VIOLATED", None: "-"}[row["sla_met"]]
            lines.append(
                f"{row['slice']:<18} {100 * row['requested_usage']:>10.1f} "
                f"{100 * row['allocated_usage']:>10.1f} {row['mean_latency_ms']:>9.1f} "
                f"{row['qoe']:>6.3f}  {verdict}"
            )
        totals = ", ".join(
            f"{dim}={self.total_allocated(dim):.1f}/{self.budget.total(dim):g}"
            for dim in CONTENDED_DIMENSIONS
        )
        lines.append(f"allocated totals: {totals}")
        return "\n".join(lines)


def resolve_contention(
    configs: Sequence[SliceConfig], budget: ResourceBudget | None = None
) -> list[SliceConfig]:
    """Scale requested slice configurations onto the shared physical budgets.

    Each contended dimension (UL/DL PRBs, backhaul Mbps, edge CPU) is
    resolved independently with proportional (weighted fair) sharing: when
    the summed demand exceeds the budget every slice keeps the same fraction
    ``budget / demand`` of its request, so the totals are conserved exactly
    and no slice is starved in favour of another.  Dimensions within budget
    are granted as requested — contention never *increases* an allocation.
    MCS offsets pass through untouched.

    Returns the allocations in the order the requests were given; an empty
    request list resolves to an empty allocation list.
    """
    budget = budget if budget is not None else ResourceBudget()
    configs = list(configs)
    if not configs:
        return []
    allocations = [
        {name: float(getattr(config, name)) for name in CONTENDED_DIMENSIONS}
        for config in configs
    ]
    for dimension in CONTENDED_DIMENSIONS:
        demand = sum(allocation[dimension] for allocation in allocations)
        total = budget.total(dimension)
        if demand > total and demand > 0.0:
            share = total / demand
            for allocation in allocations:
                allocation[dimension] *= share
    return [
        config.replace(**allocation) for config, allocation in zip(configs, allocations)
    ]


def run_contended(
    environment,
    runs: Sequence[SliceRun],
    budget: ResourceBudget | None = None,
    duration: float | None = None,
    engine=None,
) -> MultiSliceResult:
    """Resolve contention and measure every slice as one engine batch.

    Shared implementation behind
    :meth:`repro.sim.network.NetworkSimulator.run_slices` and
    :meth:`repro.prototype.testbed.RealNetwork.measure_slices`: the requested
    configurations are scaled onto ``budget`` with
    :func:`resolve_contention`, then one
    :class:`~repro.engine.protocol.MeasurementRequest` per slice — each
    carrying its own scenario — goes out as a single batch, so multi-slice
    rounds parallelise across executor workers and hit the result cache
    exactly like single-slice measurements.  ``engine`` must wrap
    ``environment``; a private serial engine is created when omitted.
    """
    from repro.engine.engine import MeasurementEngine
    from repro.engine.protocol import MeasurementRequest

    budget = budget if budget is not None else ResourceBudget()
    runs = list(runs)
    allocated = resolve_contention([run.config for run in runs], budget)
    if engine is None:
        engine = MeasurementEngine(environment)
    elif engine.environment is not environment:
        raise ValueError("engine must wrap the environment whose slices it measures")
    requests = [
        MeasurementRequest(config=config, duration=duration, seed=run.seed, scenario=run.scenario)
        for run, config in zip(runs, allocated)
    ]
    results = engine.run_batch(requests)
    return MultiSliceResult(runs=runs, allocated=allocated, results=results, budget=budget)


def run_contended_batch(
    environment,
    rounds: Sequence[Sequence[SliceRun]],
    budget: ResourceBudget | None = None,
    duration: float | None = None,
    engine=None,
) -> "list[MultiSliceResult]":
    """Resolve and measure many contended rounds as one engine batch.

    The batched counterpart of :func:`run_contended`: contention is resolved
    round by round against the same ``budget`` (each round's slices share
    the physical totals; rounds never contend with each other), then the
    slices of *all* rounds go out as one flat
    :class:`~repro.engine.engine.MeasurementEngine` batch — under the
    ``vectorized`` executor that is a single
    :func:`repro.sim.batch.simulate_batch` pass over every slice of every
    round.  Results are regrouped into one :class:`MultiSliceResult` per
    round, in submission order.
    """
    from repro.engine.engine import MeasurementEngine
    from repro.engine.protocol import MeasurementRequest

    budget = budget if budget is not None else ResourceBudget()
    rounds = [list(runs) for runs in rounds]
    if engine is None:
        engine = MeasurementEngine(environment)
    elif engine.environment is not environment:
        raise ValueError("engine must wrap the environment whose slices it measures")
    allocated_rounds = [resolve_contention([run.config for run in runs], budget) for runs in rounds]
    requests = [
        MeasurementRequest(config=config, duration=duration, seed=run.seed, scenario=run.scenario)
        for runs, allocated in zip(rounds, allocated_rounds)
        for run, config in zip(runs, allocated)
    ]
    flat_results = engine.run_batch(requests)
    results: list[MultiSliceResult] = []
    cursor = 0
    for runs, allocated in zip(rounds, allocated_rounds):
        results.append(
            MultiSliceResult(
                runs=runs,
                allocated=allocated,
                results=flat_results[cursor : cursor + len(runs)],
                budget=budget,
            )
        )
        cursor += len(runs)
    return results
