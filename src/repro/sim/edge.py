"""Edge computing model: queue-based compute server with CPU-ratio scaling.

The prototype co-locates a Docker-contained edge server with the slice's
SPGW-U and throttles it with ``docker update --cpus``.  The simulator models
it as a single FIFO queue whose per-frame service time is the ORB
feature-extraction time measured in the paper (mean 81 ms, std 35 ms at a
full CPU), inversely scaled by the configured CPU ratio, plus the
``compute_time`` simulation parameter of Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import SliceConfig
from repro.sim.events import EventScheduler, FifoServer
from repro.sim.imperfections import Imperfections
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

__all__ = ["EdgeServer", "MINIMUM_CPU_RATIO"]

#: Docker will not run a container with zero CPU; the prototype keeps a floor.
MINIMUM_CPU_RATIO = 0.05


class EdgeServer:
    """Queue-based edge compute server for one slice."""

    def __init__(
        self,
        scheduler: EventScheduler,
        scenario: Scenario,
        params: SimulationParameters,
        config: SliceConfig,
        imperfections: Imperfections | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.scenario = scenario
        self.params = params
        self.config = config
        self.imperfections = imperfections if imperfections is not None else Imperfections.none()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.server = FifoServer(scheduler, self._compute_time_s, name="edge-compute")

    @property
    def effective_cpu_ratio(self) -> float:
        """CPU ratio after enforcing the container floor."""
        return max(float(self.config.cpu_ratio), MINIMUM_CPU_RATIO)

    def _compute_time_s(self, frame) -> float:
        mean = self.scenario.compute_time_mean_ms * self.imperfections.compute_slowdown
        std = self.scenario.compute_time_std_ms * self.imperfections.compute_jitter_scale
        base = self._rng.normal(mean, std)
        base = max(base, 0.2 * mean)
        scaled = base / self.effective_cpu_ratio + self.params.compute_time
        frame.compute_time_ms = scaled
        return scaled / 1e3
