"""Transport (backhaul) network model.

The prototype meters the slice's backhaul bandwidth on an SDN switch between
the eNB and the core network (OpenDayLight + OpenFlow meters).  The simulator
models it as a point-to-point link: frames are serialised at the metered rate
and then experience a propagation/forwarding delay.  The ``backhaul_bw`` and
``backhaul_delay`` simulation parameters (Table 3) add capacity and delay on
top of the configured values — they are two of the knobs stage 1 searches.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import SliceConfig
from repro.sim.events import EventScheduler, FifoServer
from repro.sim.parameters import SimulationParameters

__all__ = ["BackhaulLink", "BASE_PROPAGATION_DELAY_MS", "MINIMUM_BACKHAUL_MBPS"]

#: Fixed one-way propagation/forwarding delay of the switch fabric.
BASE_PROPAGATION_DELAY_MS = 1.5

#: Floor on the metered rate so a zero-bandwidth configuration still trickles
#: (the OpenFlow meter cannot drop the control-plane keep-alives to zero).
MINIMUM_BACKHAUL_MBPS = 0.5


class BackhaulLink:
    """Metered point-to-point backhaul link between the eNB and the core.

    Exposes two FIFO servers (one per direction) sharing the same metered
    rate configuration but with independent queues, matching the full-duplex
    switch port of the prototype.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        params: SimulationParameters,
        config: SliceConfig,
        rng: np.random.Generator | None = None,
        jitter_ms: float = 0.3,
    ) -> None:
        self.scheduler = scheduler
        self.params = params
        self.config = config
        self.jitter_ms = jitter_ms
        self._rng = rng if rng is not None else np.random.default_rng()
        self.uplink_server = FifoServer(
            scheduler,
            lambda frame: self._serialization_time_s(frame.size_bytes),
            post_delay_fn=lambda frame: self._propagation_delay_s(),
            name="backhaul-uplink",
        )
        self.downlink_server = FifoServer(
            scheduler,
            lambda frame: self._serialization_time_s(frame.result_size_bytes),
            post_delay_fn=lambda frame: self._propagation_delay_s(),
            name="backhaul-downlink",
        )

    @property
    def capacity_mbps(self) -> float:
        """Effective metered rate: configured slice bandwidth plus the stage-1 extra."""
        return max(self.config.backhaul_bw + self.params.backhaul_bw, MINIMUM_BACKHAUL_MBPS)

    def _serialization_time_s(self, size_bytes: float) -> float:
        return size_bytes * 8.0 / (self.capacity_mbps * 1e6)

    def _propagation_delay_s(self) -> float:
        jitter = abs(self._rng.normal(0.0, self.jitter_ms)) if self.jitter_ms > 0 else 0.0
        delay_ms = BASE_PROPAGATION_DELAY_MS + self.params.backhaul_delay + jitter
        return delay_ms / 1e3
