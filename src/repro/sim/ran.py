"""Radio access network model: eNB, UE, per-slice PRB allocation and links.

The RAN resolves the slice configuration (UL/DL PRB budgets, MCS offsets)
and the channel conditions (pathloss from the UE–eNB distance, noise
figures, fading) into per-direction :class:`~repro.sim.lte.LinkAdaptation`
states, and exposes FIFO transmission servers whose service time is the
airtime of a frame including HARQ retransmissions.
"""

from __future__ import annotations

import numpy as np

from repro.sim.channel import PRB_BANDWIDTH_HZ, LogDistancePathloss, ShadowFading, sinr_db
from repro.sim.config import SliceConfig
from repro.sim.events import EventScheduler, FifoServer
from repro.sim.imperfections import Imperfections
from repro.sim.lte import (
    LinkAdaptation,
    block_error_rate,
    expected_transmissions,
    prb_rate_bps,
    select_mcs,
)
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

__all__ = ["RadioAccessNetwork", "UL_EFFICIENCY_FACTOR", "DL_EFFICIENCY_FACTOR"]

#: Protocol-efficiency factors calibrated so a full 50-PRB carrier reaches
#: roughly the UL/DL throughput the paper measures for 10 MHz LTE (Table 1).
UL_EFFICIENCY_FACTOR = 0.40
DL_EFFICIENCY_FACTOR = 0.65

#: HARQ round-trip time (ms) added per retransmission.
_HARQ_RTT_MS = 8.0
#: RLC ARQ recovery delay (ms) when all HARQ attempts fail.
_ARQ_RECOVERY_MS = 40.0


class RadioAccessNetwork:
    """The eNB + UE radio model for one slice.

    Parameters
    ----------
    scheduler:
        Discrete-event scheduler the transmission servers run on.
    scenario, params, config:
        Workload, simulation parameters and slice configuration.
    imperfections:
        Un-modelled real-world effects (neutral for the ideal simulator).
    rng:
        Random generator for fading, HARQ and error sampling.
    isolation:
        Whether slice isolation is enforced; when disabled, background users
        (``scenario.extra_users``) steal PRBs from the slice.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        scenario: Scenario,
        params: SimulationParameters,
        config: SliceConfig,
        imperfections: Imperfections | None = None,
        rng: np.random.Generator | None = None,
        isolation: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.scenario = scenario
        self.params = params
        self.config = config
        self.imperfections = imperfections if imperfections is not None else Imperfections.none()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.isolation = isolation
        self.pathloss = LogDistancePathloss(reference_loss_db=params.baseline_loss)
        self.fading = ShadowFading(
            std_db=self.imperfections.fading_std_db,
            deep_fade_probability=self.imperfections.deep_fade_probability,
            deep_fade_db=self.imperfections.deep_fade_db,
            rng=self._rng,
        )
        # Error/transmission counters for the PER metrics of Table 1.
        self.ul_blocks = 0
        self.ul_block_errors = 0
        self.dl_blocks = 0
        self.dl_block_errors = 0

        self.uplink_server = FifoServer(
            scheduler, self._uplink_service_time, name="radio-uplink"
        )
        self.downlink_server = FifoServer(
            scheduler, self._downlink_service_time, name="radio-downlink"
        )

    # ------------------------------------------------------------- adaptation
    def _current_distance(self) -> float:
        if self.scenario.mobility == "random_walk":
            # Re-sample the UE position uniformly within a disc around the
            # nominal distance; this is the "random" case of Fig. 10.
            spread = max(1.0, self.scenario.distance_m)
            return float(self._rng.uniform(0.5, self.scenario.distance_m + spread))
        return self.scenario.distance_m

    def _available_prbs(self, configured: float) -> float:
        if self.isolation or self.scenario.extra_users == 0:
            return configured
        # Without isolation, each background user grabs a share of the carrier.
        stolen = min(configured * 0.2 * self.scenario.extra_users, configured * 0.8)
        return configured - stolen

    def uplink_adaptation(self) -> LinkAdaptation:
        """Resolve the uplink link state under the current channel and config."""
        n_prbs = self._available_prbs(self.config.effective_uplink_prbs())
        fading_db = self.fading.sample_db()
        sinr = sinr_db(
            tx_power_dbm=self.scenario.ue_tx_power_dbm,
            pathloss_db=self.pathloss.loss_db(self._current_distance()),
            fading_db=fading_db,
            bandwidth_hz=max(n_prbs, 1.0) * PRB_BANDWIDTH_HZ,
            noise_figure_db=self.params.enb_noise_figure,
        )
        mcs = select_mcs(sinr, self.config.mcs_offset_ul)
        rate = prb_rate_bps(n_prbs, mcs, UL_EFFICIENCY_FACTOR) * self.imperfections.ul_rate_derate
        bler = block_error_rate(sinr, mcs, floor=4e-3 * max(self.imperfections.error_floor_scale, 1e-6))
        return LinkAdaptation(sinr_db=sinr, mcs=mcs, n_prbs=n_prbs, rate_bps=rate, bler=bler)

    def downlink_adaptation(self) -> LinkAdaptation:
        """Resolve the downlink link state under the current channel and config."""
        n_prbs = self._available_prbs(self.config.effective_downlink_prbs())
        fading_db = self.fading.sample_db()
        sinr = sinr_db(
            tx_power_dbm=self.scenario.enb_tx_power_dbm,
            pathloss_db=self.pathloss.loss_db(self._current_distance()),
            fading_db=fading_db,
            bandwidth_hz=max(n_prbs, 1.0) * PRB_BANDWIDTH_HZ,
            noise_figure_db=self.params.ue_noise_figure,
        )
        mcs = select_mcs(sinr, self.config.mcs_offset_dl)
        rate = prb_rate_bps(n_prbs, mcs, DL_EFFICIENCY_FACTOR) * self.imperfections.dl_rate_derate
        bler = block_error_rate(sinr, mcs, floor=2e-3 * max(self.imperfections.error_floor_scale, 1e-6))
        return LinkAdaptation(sinr_db=sinr, mcs=mcs, n_prbs=n_prbs, rate_bps=rate, bler=bler)

    # ---------------------------------------------------------- service times
    def _transmission_time_s(self, size_bytes: float, link: LinkAdaptation, uplink: bool) -> float:
        """Airtime (seconds) of one frame, including HARQ/ARQ recovery."""
        if link.rate_bps <= 0:
            # No usable rate: the frame stalls until ARQ recovery repeatedly
            # kicks in; report a large but finite time so the run terminates.
            return 2.0
        retx = expected_transmissions(link.bler)
        airtime = size_bytes * 8.0 / link.rate_bps
        harq_penalty = (retx - 1.0) * _HARQ_RTT_MS / 1e3
        # The PER metric of Table 1 is the first-transmission block error
        # rate; residual loss after HARQ is recovered by RLC ARQ.
        first_tx_error = self._rng.random() < link.bler
        if uplink:
            self.ul_blocks += 1
            self.ul_block_errors += int(first_tx_error)
        else:
            self.dl_blocks += 1
            self.dl_block_errors += int(first_tx_error)
        lost_after_harq = self._rng.random() < link.residual_error_rate
        arq_penalty = _ARQ_RECOVERY_MS / 1e3 if lost_after_harq else 0.0
        return airtime * retx + harq_penalty + arq_penalty

    def _uplink_service_time(self, frame) -> float:
        link = self.uplink_adaptation()
        frame.uplink_mcs = link.mcs
        frame.uplink_sinr_db = link.sinr_db
        return self._transmission_time_s(frame.size_bytes, link, uplink=True)

    def _downlink_service_time(self, frame) -> float:
        link = self.downlink_adaptation()
        frame.downlink_mcs = link.mcs
        return self._transmission_time_s(frame.result_size_bytes, link, uplink=False)

    # ---------------------------------------------------------------- metrics
    def uplink_packet_error_rate(self) -> float:
        """Residual uplink block error rate observed so far."""
        if self.ul_blocks == 0:
            return 0.0
        return self.ul_block_errors / self.ul_blocks

    def downlink_packet_error_rate(self) -> float:
        """Residual downlink block error rate observed so far."""
        if self.dl_blocks == 0:
            return 0.0
        return self.dl_block_errors / self.dl_blocks

    def saturation_throughput_mbps(self, uplink: bool = True) -> float:
        """Full-buffer throughput (Mbps) with the full carrier, for Table 1."""
        full_config = SliceConfig.maximum()
        saved = self.config
        self.config = full_config
        try:
            link = self.uplink_adaptation() if uplink else self.downlink_adaptation()
        finally:
            self.config = saved
        effective = link.rate_bps * (1.0 - link.bler)
        return float(effective / 1e6)
