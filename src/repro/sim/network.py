"""Simulator facade: assemble the end-to-end slice path and run measurements.

:class:`NetworkSimulator` is the offline environment Atlas' stages 1 and 2
query: given a slice configuration, a traffic level and a duration it runs
the discrete-event simulation and returns the latency collection plus the
networking metrics reported in Table 1 (ping delay, saturation throughput,
packet error rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.metrics.qoe import qoe_from_latencies
from repro.sim.config import SliceConfig
from repro.sim.core_network import CoreNetwork
from repro.sim.edge import EdgeServer
from repro.sim.events import EventScheduler
from repro.sim.imperfections import Imperfections
from repro.sim.application import OffloadingApplication
from repro.sim.parameters import SimulationParameters
from repro.sim.multislice import (
    MultiSliceResult,
    ResourceBudget,
    SliceRun,
    run_contended,
    run_contended_batch,
)
from repro.sim.ran import RadioAccessNetwork
from repro.sim.scenario import Scenario
from repro.sim.transport import BackhaulLink, BASE_PROPAGATION_DELAY_MS
from repro.sim.core_network import BASE_FORWARDING_DELAY_MS

__all__ = ["NetworkSimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one 60-second (by default) measurement run."""

    latencies_ms: np.ndarray
    frames_generated: int
    frames_completed: int
    duration_s: float
    config: SliceConfig
    traffic: int
    ul_throughput_mbps: float
    dl_throughput_mbps: float
    ul_packet_error_rate: float
    dl_packet_error_rate: float
    ping_delay_ms: float
    stage_breakdown_ms: dict[str, float] = field(default_factory=dict)

    def qoe(self, threshold_ms: float) -> float:
        """Slice QoE ``Pr(latency <= threshold)`` over all generated frames."""
        if self.frames_generated == 0:
            return 0.0
        # Frames still in flight at the end of the run are not SLA violations;
        # QoE is computed over completed frames, but a run that completes
        # nothing has zero QoE.
        if self.latencies_ms.size == 0:
            return 0.0
        return qoe_from_latencies(self.latencies_ms, threshold_ms)

    @property
    def mean_latency_ms(self) -> float:
        """Mean latency of completed frames (``nan`` if none completed)."""
        if self.latencies_ms.size == 0:
            return float("nan")
        return float(np.mean(self.latencies_ms))


class NetworkSimulator:
    """Parameterised end-to-end network simulator (the NS-3 stand-in).

    Parameters
    ----------
    params:
        Simulation parameters (Table 3); stage 1 searches over these.
    scenario:
        Workload/environment description (traffic, distance, mobility...).
    imperfections:
        Un-modelled effects; the ideal simulator leaves them at their neutral
        defaults, the real-network substitute overrides them.
    seed:
        Base seed; every run derives its own stream from this seed, the
        configuration and the explicit per-run seed so results are
        reproducible yet varied across runs.
    isolation:
        Whether slice isolation is enforced in the RAN.
    """

    def __init__(
        self,
        params: SimulationParameters | None = None,
        scenario: Scenario | None = None,
        imperfections: Imperfections | None = None,
        seed: int = 0,
        isolation: bool = True,
    ) -> None:
        self.params = params if params is not None else SimulationParameters.defaults()
        self.scenario = scenario if scenario is not None else Scenario()
        self.imperfections = imperfections if imperfections is not None else Imperfections.none()
        self.seed = int(seed)
        self.isolation = isolation
        # Auto-seed stream for seed=None runs: spawning from a SeedSequence is
        # deterministic per instance and cannot collide with explicit per-run
        # seeds (which previously shared the counter's key space).
        self._auto_seed_stream = np.random.SeedSequence([self.seed, 0x5EED])

    # ----------------------------------------------------------------- helpers
    def with_params(self, params: SimulationParameters) -> "NetworkSimulator":
        """A copy of this simulator with different simulation parameters."""
        return NetworkSimulator(
            params=params,
            scenario=self.scenario,
            imperfections=self.imperfections,
            seed=self.seed,
            isolation=self.isolation,
        )

    def with_scenario(self, scenario: Scenario) -> "NetworkSimulator":
        """A copy of this simulator with a different scenario."""
        return NetworkSimulator(
            params=self.params,
            scenario=scenario,
            imperfections=self.imperfections,
            seed=self.seed,
            isolation=self.isolation,
        )

    def with_imperfections(self, imperfections: Imperfections) -> "NetworkSimulator":
        """A copy of this simulator under different un-modelled effects.

        The hook :class:`~repro.sim.faults.FaultedEnvironment` uses to apply
        storm-window degradation; the copy's fingerprint differs, so faulted
        measurements can never share cache entries with clean ones.
        """
        return NetworkSimulator(
            params=self.params,
            scenario=self.scenario,
            imperfections=imperfections,
            seed=self.seed,
            isolation=self.isolation,
        )

    def _make_rng(self, seed: int | None) -> np.random.Generator:
        if seed is None:
            # Unseeded runs draw from a per-instance spawn stream: results are
            # reproducible given construction + call order, and explicit-seed
            # runs are unaffected by how many unseeded runs preceded them (the
            # old mutable run counter broke both properties and was unsafe
            # under parallel execution; the engine resolves seeds before
            # dispatch so None never reaches a worker).
            return np.random.default_rng(self._auto_seed_stream.spawn(1)[0])
        return np.random.default_rng(np.random.SeedSequence([self.seed, int(seed) & 0x7FFFFFFF]))

    def fingerprint(self) -> tuple:
        """Content identity of this simulator (engine cache key component)."""
        return ("sim", self.params, self.scenario, self.imperfections, self.seed, self.isolation)

    # --------------------------------------------------------------------- run
    def run(
        self,
        config: SliceConfig,
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> SimulationResult:
        """Run one measurement under ``config`` and return the collected metrics."""
        scenario = self.scenario
        if traffic is not None:
            scenario = scenario.replace(traffic=int(traffic))
        run_duration = float(duration) if duration is not None else scenario.duration_s
        rng = self._make_rng(seed)

        scheduler = EventScheduler()
        ran = RadioAccessNetwork(
            scheduler, scenario, self.params, config, self.imperfections, rng, self.isolation
        )
        backhaul = BackhaulLink(scheduler, self.params, config, rng)
        core = CoreNetwork(scheduler, rng)
        edge = EdgeServer(scheduler, scenario, self.params, config, self.imperfections, rng)
        app = OffloadingApplication(
            scheduler, scenario, self.params, ran, backhaul, core, edge, self.imperfections, rng
        )
        app.start()
        scheduler.run(until=run_duration)
        app.stop()

        latencies = app.completed_latencies_ms()
        return SimulationResult(
            latencies_ms=latencies,
            frames_generated=len(app.records),
            frames_completed=int(latencies.size),
            duration_s=run_duration,
            config=config,
            traffic=scenario.traffic,
            ul_throughput_mbps=ran.saturation_throughput_mbps(uplink=True),
            dl_throughput_mbps=ran.saturation_throughput_mbps(uplink=False),
            ul_packet_error_rate=ran.uplink_packet_error_rate(),
            dl_packet_error_rate=ran.downlink_packet_error_rate(),
            ping_delay_ms=self._ping_delay_ms(ran, backhaul, rng),
            stage_breakdown_ms=app.stage_breakdown_ms(),
        )

    def collect_latencies(
        self,
        config: SliceConfig,
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Convenience wrapper returning only the latency collection."""
        return self.run(config, traffic=traffic, duration=duration, seed=seed).latencies_ms

    # -------------------------------------------------------------- batched run
    def run_requests(self, requests) -> "list[SimulationResult]":
        """Evaluate a batch of engine requests in one vectorized pass.

        The hook the ``vectorized`` engine executor dispatches to: every
        :class:`~repro.engine.protocol.MeasurementRequest` becomes one lane
        of :func:`repro.sim.batch.simulate_batch`, with per-request
        ``params``/``scenario``/``traffic``/``duration`` overrides resolved
        exactly like the scalar path resolves them and per-request seeds
        mapped onto the same ``SeedSequence([base_seed, seed])`` streams —
        so a request's result is reproducible regardless of which other
        requests share the batch.  Results are statistically equivalent to,
        not byte-identical with, the scalar discrete-event path (see
        :mod:`repro.sim.batch`).
        """
        from repro.sim.batch import simulate_batch

        configs, scenarios, params, durations, rngs = [], [], [], [], []
        for request in requests:
            scenario = request.scenario if request.scenario is not None else self.scenario
            if request.traffic is not None:
                scenario = scenario.replace(traffic=int(request.traffic))
            configs.append(request.config)
            scenarios.append(scenario)
            params.append(request.params if request.params is not None else self.params)
            durations.append(
                float(request.duration) if request.duration is not None else scenario.duration_s
            )
            rngs.append(self._make_rng(request.seed))
        return simulate_batch(
            configs,
            scenarios,
            params,
            self.imperfections,
            durations,
            rngs,
            isolation=self.isolation,
        )

    def run_batch(
        self,
        configs: "Sequence[SliceConfig]",
        traffic: int | None = None,
        duration: float | None = None,
        seeds: "Sequence[int | None] | int | None" = None,
        scenario: Scenario | None = None,
    ) -> "list[SimulationResult]":
        """Evaluate N configurations in one vectorized pass.

        Parameters
        ----------
        configs:
            The slice configurations to measure, one lane each.
        traffic, duration, scenario:
            Shared overrides, with the same ``None`` semantics as
            :meth:`run` (``scenario`` replaces this simulator's scenario
            for every lane before the ``traffic`` override is applied).
        seeds:
            Per-lane seeds.  A sequence gives each lane its own seed
            (``None`` entries draw from the auto-seed stream like
            :meth:`run` with ``seed=None``); a single ``int`` reuses that
            seed for every lane — the batched equivalent of calling
            :meth:`run` with the same seed per configuration; ``None``
            draws every lane from the auto-seed stream.
        """
        from repro.engine.protocol import MeasurementRequest

        configs = list(configs)
        if seeds is None or isinstance(seeds, (int, np.integer)):
            seeds = [seeds] * len(configs)
        elif len(seeds) != len(configs):
            raise ValueError(f"expected {len(configs)} seeds, got {len(seeds)}")
        return self.run_requests(
            [
                MeasurementRequest(
                    config=config, traffic=traffic, duration=duration, seed=seed, scenario=scenario
                )
                for config, seed in zip(configs, seeds)
            ]
        )

    # ------------------------------------------------------------- multi-slice
    def run_slices(
        self,
        runs: "list[SliceRun] | tuple[SliceRun, ...]",
        budget: ResourceBudget | None = None,
        duration: float | None = None,
        engine=None,
    ) -> MultiSliceResult:
        """Measure several slices concurrently under shared-resource contention.

        The requested configurations are first resolved against ``budget``
        (proportional fair sharing, see
        :func:`repro.sim.multislice.resolve_contention`), then every slice is
        measured under its own scenario as one
        :class:`~repro.engine.engine.MeasurementEngine` batch — so
        multi-slice rounds parallelise across executor workers and hit the
        result cache exactly like single-slice measurements.

        Parameters
        ----------
        runs:
            One :class:`~repro.sim.multislice.SliceRun` per slice (name,
            requested config, scenario, optional SLA and seed).
        budget:
            Shared physical totals; defaults to one 10 MHz carrier, 100 Mbps
            transport and a dual-core edge host.
        duration:
            Measurement duration override (defaults to each slice scenario's
            ``duration_s``).
        engine:
            Engine to batch through; must wrap this environment.  A private
            serial engine is created when omitted.
        """
        return run_contended(self, runs, budget=budget, duration=duration, engine=engine)

    def run_slices_batch(
        self,
        rounds: "Sequence[Sequence[SliceRun]]",
        budget: ResourceBudget | None = None,
        duration: float | None = None,
        engine=None,
    ) -> "list[MultiSliceResult]":
        """Measure many contended multi-slice rounds as one batch.

        Each round's requested configurations are resolved against
        ``budget`` with the same proportional-fair contention solver as
        :meth:`run_slices`; the slices of every round are then measured as
        one engine batch (one vectorized pass under the ``vectorized``
        executor).  Returns one
        :class:`~repro.sim.multislice.MultiSliceResult` per round, in
        order.  ``engine`` must wrap this simulator; a private engine is
        created when omitted.
        """
        return run_contended_batch(self, rounds, budget=budget, duration=duration, engine=engine)

    # ------------------------------------------------------------------- ping
    def _ping_delay_ms(
        self,
        ran: RadioAccessNetwork,
        backhaul: BackhaulLink,
        rng: np.random.Generator,
    ) -> float:
        """Round-trip time of a 64-byte ICMP echo through RAN + TN + CN."""
        ping_bytes = 64.0
        uplink = ran.uplink_adaptation()
        downlink = ran.downlink_adaptation()
        if uplink.rate_bps <= 0 or downlink.rate_bps <= 0:
            return float("inf")
        # LTE scheduling grant + HARQ round trip dominate small-packet RTT.
        scheduling_grant_ms = 24.0
        air_ms = (ping_bytes * 8.0 / uplink.rate_bps + ping_bytes * 8.0 / downlink.rate_bps) * 1e3
        transport_ms = 2.0 * (
            ping_bytes * 8.0 / (backhaul.capacity_mbps * 1e6) * 1e3
            + BASE_PROPAGATION_DELAY_MS
            + self.params.backhaul_delay
        )
        core_ms = 2.0 * BASE_FORWARDING_DELAY_MS
        overhead_ms = self.imperfections.per_frame_overhead_ms * 0.25
        jitter_ms = abs(rng.normal(0.0, 1.0))
        return float(scheduling_grant_ms + air_ms + transport_ms + core_ms + overhead_ms + jitter_ms)
