"""Radio channel models: pathloss, shadowing/fading and SINR computation.

The simulator mirrors the NS-3 setup described in Sec. 7.2 of the paper: a
``LogDistancePropagationLossModel`` with a configurable reference loss (the
``baseline_loss`` simulation parameter) and no fading model; the real-network
substitute adds log-normal shadowing and occasional deep fades that the
simulator's parameter search cannot fully express — this is one source of the
residual sim-to-real discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LogDistancePathloss",
    "ShadowFading",
    "thermal_noise_dbm",
    "sinr_db",
    "PRB_BANDWIDTH_HZ",
]

#: Bandwidth of one LTE physical resource block.
PRB_BANDWIDTH_HZ = 180e3

#: Thermal noise power spectral density at room temperature.
_THERMAL_NOISE_DBM_PER_HZ = -174.0


@dataclass(frozen=True)
class LogDistancePathloss:
    """Log-distance pathloss: ``PL(d) = L0 + 10 * n * log10(d / d0)`` in dB.

    ``L0`` is the reference loss at distance ``d0`` (1 metre by default, which
    is also the UE–eNB distance of the paper's prototype), and ``n`` the
    pathloss exponent.
    """

    reference_loss_db: float = 38.57
    exponent: float = 3.0
    reference_distance_m: float = 1.0

    def loss_db(self, distance_m: float) -> float:
        """Pathloss in dB at ``distance_m`` metres."""
        if distance_m <= 0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        distance = max(distance_m, self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            distance / self.reference_distance_m
        )


class ShadowFading:
    """Log-normal shadowing plus occasional deep fades.

    The NS-3 configuration in the paper uses *no* fading model; the real
    network, of course, has one.  ``std_db = 0`` therefore reproduces the
    simulator behaviour, while the real-network substitute uses a non-zero
    standard deviation and a small deep-fade probability.
    """

    def __init__(
        self,
        std_db: float = 0.0,
        deep_fade_probability: float = 0.0,
        deep_fade_db: float = 10.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if std_db < 0:
            raise ValueError("std_db must be non-negative")
        if not 0.0 <= deep_fade_probability <= 1.0:
            raise ValueError("deep_fade_probability must be in [0, 1]")
        self.std_db = std_db
        self.deep_fade_probability = deep_fade_probability
        self.deep_fade_db = deep_fade_db
        self._rng = rng if rng is not None else np.random.default_rng()

    def sample_db(self) -> float:
        """Draw one fading realisation in dB (positive values are extra loss)."""
        fade = self._rng.normal(0.0, self.std_db) if self.std_db > 0 else 0.0
        if self.deep_fade_probability > 0 and self._rng.random() < self.deep_fade_probability:
            fade += self.deep_fade_db
        return float(fade)


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float) -> float:
    """Receiver noise floor in dBm over ``bandwidth_hz`` with the given noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return _THERMAL_NOISE_DBM_PER_HZ + 10.0 * np.log10(bandwidth_hz) + noise_figure_db


def sinr_db(
    tx_power_dbm: float,
    pathloss_db: float,
    fading_db: float,
    bandwidth_hz: float,
    noise_figure_db: float,
    interference_dbm: float | None = None,
) -> float:
    """Signal-to-interference-plus-noise ratio in dB.

    Interference is optional; the prototype isolates slices so intra-cell
    interference is negligible, but background load can be injected through
    ``interference_dbm`` for the isolation experiments (Fig. 11).
    """
    received_dbm = tx_power_dbm - pathloss_db - fading_db
    noise_dbm = thermal_noise_dbm(bandwidth_hz, noise_figure_db)
    if interference_dbm is None:
        total_noise_dbm = noise_dbm
    else:
        noise_mw = 10.0 ** (noise_dbm / 10.0)
        interference_mw = 10.0 ** (interference_dbm / 10.0)
        total_noise_dbm = 10.0 * np.log10(noise_mw + interference_mw)
    return float(received_dbm - total_noise_dbm)
