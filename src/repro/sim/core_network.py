"""Core network (EPC) model.

The prototype runs OpenAir-CN with CUPS: HSS/MME on the control plane and a
dedicated SPGW-U container per slice on the data plane.  On the data path a
frame only traverses GTP encapsulation and forwarding in the slice's SPGW-U,
which is modelled as a fast FIFO forwarding stage with a small per-packet
processing time and jitter.
"""

from __future__ import annotations

import numpy as np

from repro.sim.events import EventScheduler, FifoServer

__all__ = ["CoreNetwork", "BASE_FORWARDING_DELAY_MS"]

#: Mean per-packet GTP forwarding delay of the SPGW-U container.
BASE_FORWARDING_DELAY_MS = 1.0


class CoreNetwork:
    """Per-slice SPGW-U forwarding stage (uplink and downlink)."""

    def __init__(
        self,
        scheduler: EventScheduler,
        rng: np.random.Generator | None = None,
        forwarding_delay_ms: float = BASE_FORWARDING_DELAY_MS,
        jitter_ms: float = 0.2,
        per_packet_processing_ms: float = 0.1,
    ) -> None:
        if forwarding_delay_ms < 0 or jitter_ms < 0 or per_packet_processing_ms < 0:
            raise ValueError("core-network delays must be non-negative")
        self.scheduler = scheduler
        self.forwarding_delay_ms = forwarding_delay_ms
        self.jitter_ms = jitter_ms
        self.per_packet_processing_ms = per_packet_processing_ms
        self._rng = rng if rng is not None else np.random.default_rng()
        self.uplink_server = FifoServer(
            scheduler,
            lambda frame: self.per_packet_processing_ms / 1e3,
            post_delay_fn=lambda frame: self._forwarding_delay_s(),
            name="core-uplink",
        )
        self.downlink_server = FifoServer(
            scheduler,
            lambda frame: self.per_packet_processing_ms / 1e3,
            post_delay_fn=lambda frame: self._forwarding_delay_s(),
            name="core-downlink",
        )

    def _forwarding_delay_s(self) -> float:
        jitter = abs(self._rng.normal(0.0, self.jitter_ms)) if self.jitter_ms > 0 else 0.0
        return (self.forwarding_delay_ms + jitter) / 1e3
