"""Un-modelled real-world effects.

The sim-to-real discrepancy in the paper is "non-trivial and uneven"
(Sec. 2): part of it can be absorbed by better simulation parameters
(stage 1), part of it cannot and must be learned online (stage 3).  The
real-network substitute of this reproduction therefore runs the same
discrete-event engine as the simulator but with an additional set of effects
the 7 searchable parameters cannot express: shadow fading and deep fades,
heavier-tailed compute jitter, protocol/processing overheads that scale with
load, occasional latency spikes, and throughput derating from imperfect
open-source implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["Imperfections"]


@dataclass(frozen=True)
class Imperfections:
    """Additional effects applied on top of the parameterised simulator.

    All defaults are neutral (no effect), which is the behaviour of the ideal
    simulator; the real-network substitute overrides them.
    """

    #: Log-normal shadow-fading standard deviation (dB).
    fading_std_db: float = 0.0
    #: Probability that a frame experiences a deep fade.
    deep_fade_probability: float = 0.0
    #: Extra loss (dB) applied during a deep fade.
    deep_fade_db: float = 8.0
    #: Multiplier on the compute-time standard deviation (bursty CPU contention).
    compute_jitter_scale: float = 1.0
    #: Multiplier on the mean compute time (container/co-location overhead that
    #: compounds with queueing at high traffic).
    compute_slowdown: float = 1.0
    #: Probability that a frame hits a latency spike (GC pause, scheduler stall...).
    spike_probability: float = 0.0
    #: Range (ms) of the latency spike, sampled uniformly.
    spike_ms_range: tuple[float, float] = (50.0, 250.0)
    #: Multiplicative derating of the achievable uplink radio rate.
    ul_rate_derate: float = 1.0
    #: Multiplicative derating of the achievable downlink radio rate.
    dl_rate_derate: float = 1.0
    #: Multiplier on the residual block-error floor (imperfect HARQ/RF chain).
    error_floor_scale: float = 1.0
    #: Per-frame protocol/processing overhead (ms) that the simulator omits.
    per_frame_overhead_ms: float = 0.0
    #: Overhead (ms) added per in-flight frame (contention grows with traffic).
    per_traffic_overhead_ms: float = 0.0

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.fading_std_db < 0:
            raise ValueError("fading_std_db must be non-negative")
        if not 0.0 <= self.deep_fade_probability <= 1.0:
            raise ValueError("deep_fade_probability must be in [0, 1]")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike_probability must be in [0, 1]")
        if self.compute_jitter_scale <= 0:
            raise ValueError("compute_jitter_scale must be positive")
        if self.compute_slowdown <= 0:
            raise ValueError("compute_slowdown must be positive")
        if not 0.0 < self.ul_rate_derate <= 1.5 or not 0.0 < self.dl_rate_derate <= 1.5:
            raise ValueError("rate derates must be in (0, 1.5]")
        if self.error_floor_scale < 0:
            raise ValueError("error_floor_scale must be non-negative")
        lo, hi = self.spike_ms_range
        if lo < 0 or hi < lo:
            raise ValueError("spike_ms_range must be a non-negative, ordered pair")

    @classmethod
    def none(cls) -> "Imperfections":
        """The ideal-simulator setting: no un-modelled effects."""
        return cls()

    def replace(self, **changes) -> "Imperfections":
        """Return a copy with some fields replaced."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return Imperfections(**current)

    def degraded(self, severity: float) -> "Imperfections":
        """These imperfections under storm conditions of the given ``severity``.

        The deterministic degradation model behind
        :class:`~repro.sim.faults.StormWindow`: a flash crowd worsens every
        un-modelled effect at once — deeper fades and a noisier channel as
        the cell fills, heavier compute contention on the shared edge host,
        more frequent latency spikes, derated radio rates and inflated
        per-frame/per-traffic overheads.  ``severity=1`` is the identity;
        the mapping is monotone in ``severity`` and keeps every field within
        its validated range, so degraded imperfections are always valid.
        """
        if severity < 1.0:
            raise ValueError(f"severity must be >= 1, got {severity}")
        extra = float(severity) - 1.0
        if extra == 0.0:
            return self
        return self.replace(
            fading_std_db=self.fading_std_db + 2.0 * extra,
            deep_fade_probability=min(1.0, self.deep_fade_probability * severity + 0.02 * extra),
            compute_jitter_scale=self.compute_jitter_scale * (1.0 + 0.5 * extra),
            compute_slowdown=self.compute_slowdown * (1.0 + 0.1 * extra),
            spike_probability=min(1.0, self.spike_probability * severity + 0.03 * extra),
            ul_rate_derate=max(0.05, self.ul_rate_derate / (1.0 + 0.3 * extra)),
            dl_rate_derate=max(0.05, self.dl_rate_derate / (1.0 + 0.2 * extra)),
            error_floor_scale=self.error_floor_scale * (1.0 + extra),
            per_frame_overhead_ms=self.per_frame_overhead_ms + 4.0 * extra,
            per_traffic_overhead_ms=self.per_traffic_overhead_ms + 8.0 * extra,
        )
