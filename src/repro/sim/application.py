"""End-to-end frame-offloading application.

One frame's life cycle mirrors the prototype's Android application
(Sec. 7.1): the UE captures and encodes a frame (*loading*), transmits it on
the slice's uplink PRBs, the frame crosses the metered backhaul and the
slice's SPGW-U, is processed by the edge server (ORB feature extraction) and
the result travels back through the core, backhaul and downlink to the UE.
The application keeps at most ``scenario.traffic`` frames in flight, which is
how the paper emulates 1–4 users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.core_network import CoreNetwork
from repro.sim.edge import EdgeServer
from repro.sim.events import EventScheduler
from repro.sim.imperfections import Imperfections
from repro.sim.parameters import SimulationParameters
from repro.sim.ran import RadioAccessNetwork
from repro.sim.scenario import Scenario
from repro.sim.traffic import FrameSizeModel
from repro.sim.transport import BackhaulLink

__all__ = ["FrameRecord", "OffloadingApplication"]


@dataclass
class FrameRecord:
    """Per-frame trace: sizes, per-stage timestamps and radio details."""

    frame_id: int
    created_at: float
    size_bytes: float
    result_size_bytes: float
    loading_done_at: float = float("nan")
    uplink_done_at: float = float("nan")
    backhaul_ul_done_at: float = float("nan")
    core_ul_done_at: float = float("nan")
    compute_done_at: float = float("nan")
    backhaul_dl_done_at: float = float("nan")
    completed_at: float = float("nan")
    uplink_mcs: int = -1
    downlink_mcs: int = -1
    uplink_sinr_db: float = float("nan")
    compute_time_ms: float = float("nan")
    extra_delay_ms: float = 0.0
    stage_durations: dict[str, float] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """Whether the result made it back to the UE within the run."""
        return np.isfinite(self.completed_at)

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in milliseconds (``nan`` if never completed)."""
        if not self.completed:
            return float("nan")
        return (self.completed_at - self.created_at) * 1e3


class OffloadingApplication:
    """Drives frames through the full slice path on the event scheduler."""

    def __init__(
        self,
        scheduler: EventScheduler,
        scenario: Scenario,
        params: SimulationParameters,
        ran: RadioAccessNetwork,
        backhaul: BackhaulLink,
        core: CoreNetwork,
        edge: EdgeServer,
        imperfections: Imperfections | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.scenario = scenario
        self.params = params
        self.ran = ran
        self.backhaul = backhaul
        self.core = core
        self.edge = edge
        self.imperfections = imperfections if imperfections is not None else Imperfections.none()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._frame_model = FrameSizeModel(scenario, self._rng)
        self.records: list[FrameRecord] = []
        self._next_frame_id = 0
        self._in_flight = 0
        self._stopped = False

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Launch the initial window of frames (staggered by the loading time)."""
        for slot in range(self.scenario.traffic):
            self.scheduler.schedule(slot * 0.005, self._generate_frame)

    def stop(self) -> None:
        """Stop generating new frames (in-flight frames still complete)."""
        self._stopped = True

    # ----------------------------------------------------------------- stages
    def _loading_time_s(self) -> float:
        overhead = (
            self.imperfections.per_frame_overhead_ms
            + self.imperfections.per_traffic_overhead_ms * max(self.scenario.traffic - 1, 0)
        )
        loading_ms = self.scenario.base_loading_time_ms + self.params.loading_time + overhead
        jitter_ms = abs(self._rng.normal(0.0, 0.1 * self.scenario.base_loading_time_ms))
        return (loading_ms + jitter_ms) / 1e3

    def _generate_frame(self) -> None:
        if self._stopped:
            return
        frame = FrameRecord(
            frame_id=self._next_frame_id,
            created_at=self.scheduler.now,
            size_bytes=self._frame_model.sample_frame_bytes(),
            result_size_bytes=self._frame_model.sample_result_bytes(),
        )
        self._next_frame_id += 1
        self._in_flight += 1
        self.records.append(frame)
        self.scheduler.schedule(self._loading_time_s(), lambda: self._on_loaded(frame))

    def _on_loaded(self, frame: FrameRecord) -> None:
        frame.loading_done_at = self.scheduler.now
        frame.stage_durations["loading"] = (frame.loading_done_at - frame.created_at) * 1e3
        self.ran.uplink_server.submit(frame, self._on_uplink_done)

    def _on_uplink_done(self, frame: FrameRecord) -> None:
        frame.uplink_done_at = self.scheduler.now
        frame.stage_durations["uplink"] = (frame.uplink_done_at - frame.loading_done_at) * 1e3
        self.backhaul.uplink_server.submit(frame, self._on_backhaul_ul_done)

    def _on_backhaul_ul_done(self, frame: FrameRecord) -> None:
        frame.backhaul_ul_done_at = self.scheduler.now
        frame.stage_durations["backhaul_ul"] = (
            frame.backhaul_ul_done_at - frame.uplink_done_at
        ) * 1e3
        self.core.uplink_server.submit(frame, self._on_core_ul_done)

    def _on_core_ul_done(self, frame: FrameRecord) -> None:
        frame.core_ul_done_at = self.scheduler.now
        frame.stage_durations["core_ul"] = (frame.core_ul_done_at - frame.backhaul_ul_done_at) * 1e3
        self.edge.server.submit(frame, self._on_compute_done)

    def _on_compute_done(self, frame: FrameRecord) -> None:
        frame.compute_done_at = self.scheduler.now
        frame.stage_durations["compute"] = (frame.compute_done_at - frame.core_ul_done_at) * 1e3
        self.core.downlink_server.submit(frame, self._on_core_dl_done)

    def _on_core_dl_done(self, frame: FrameRecord) -> None:
        self.backhaul.downlink_server.submit(frame, self._on_backhaul_dl_done)

    def _on_backhaul_dl_done(self, frame: FrameRecord) -> None:
        frame.backhaul_dl_done_at = self.scheduler.now
        frame.stage_durations["backhaul_dl"] = (
            frame.backhaul_dl_done_at - frame.compute_done_at
        ) * 1e3
        self.ran.downlink_server.submit(frame, self._on_downlink_done)

    def _on_downlink_done(self, frame: FrameRecord) -> None:
        extra_delay_s = 0.0
        if (
            self.imperfections.spike_probability > 0
            and self._rng.random() < self.imperfections.spike_probability
        ):
            lo, hi = self.imperfections.spike_ms_range
            extra_delay_s = self._rng.uniform(lo, hi) / 1e3
            frame.extra_delay_ms = extra_delay_s * 1e3
        self.scheduler.schedule(extra_delay_s, lambda: self._complete_frame(frame))

    def _complete_frame(self, frame: FrameRecord) -> None:
        frame.completed_at = self.scheduler.now
        frame.stage_durations["downlink"] = (
            frame.completed_at - frame.backhaul_dl_done_at
        ) * 1e3
        self._in_flight -= 1
        # Keep the congestion window full: a completed frame frees one slot.
        self._generate_frame()

    # ---------------------------------------------------------------- results
    def completed_latencies_ms(self) -> np.ndarray:
        """Latencies (ms) of all frames that completed during the run."""
        return np.array([r.latency_ms for r in self.records if r.completed], dtype=float)

    def all_latencies_ms(self) -> np.ndarray:
        """Latencies of all generated frames; incomplete frames appear as ``nan``."""
        return np.array([r.latency_ms for r in self.records], dtype=float)

    def stage_breakdown_ms(self) -> dict[str, float]:
        """Mean duration (ms) of every pipeline stage over completed frames."""
        breakdown: dict[str, list[float]] = {}
        for record in self.records:
            if not record.completed:
                continue
            for stage, duration in record.stage_durations.items():
                breakdown.setdefault(stage, []).append(duration)
        return {stage: float(np.mean(values)) for stage, values in breakdown.items()}
