"""Minimal discrete-event simulation engine.

The engine provides an event calendar (:class:`EventScheduler`) and a generic
work-conserving FIFO server (:class:`FifoServer`) from which every stage of
the end-to-end slice path (radio uplink, backhaul, core forwarding, edge
compute, radio downlink) is built.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["EventScheduler", "FifoServer"]


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventScheduler:
    """Event calendar with a simulation clock.

    Events scheduled for the same instant fire in insertion order, which makes
    runs fully deterministic for a given random seed.
    """

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = 0
        self.now = 0.0
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule an event in the past (time={time}, now={self.now})")
        event = _Event(time=time, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    @staticmethod
    def cancel(event: _Event) -> None:
        """Mark an event as cancelled; it will be skipped when it comes up."""
        event.cancelled = True

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def run(self, until: float | None = None) -> None:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events scheduled later
            remain in the calendar).  ``None`` drains the calendar completely.
        """
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._processed += 1
            event.callback()
        if until is not None and until > self.now:
            self.now = until


class FifoServer:
    """Single work-conserving FIFO server over the event scheduler.

    Each submitted job occupies the server for a service time returned by
    ``service_time_fn(job)``; the completion callback fires after the service
    time plus an optional per-job ``post_delay_fn(job)`` (e.g. propagation
    delay that does not block the next job from being served).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        service_time_fn: Callable[[Any], float],
        post_delay_fn: Callable[[Any], float] | None = None,
        name: str = "server",
    ) -> None:
        self.scheduler = scheduler
        self.service_time_fn = service_time_fn
        self.post_delay_fn = post_delay_fn
        self.name = name
        self._queue: deque[tuple[Any, Callable[[Any], None]]] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.jobs_served = 0

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        """Whether a job is currently in service."""
        return self._busy

    def submit(self, job: Any, on_complete: Callable[[Any], None]) -> None:
        """Enqueue ``job``; ``on_complete(job)`` fires when it leaves the server."""
        self._queue.append((job, on_complete))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        job, on_complete = self._queue.popleft()
        service_time = max(0.0, float(self.service_time_fn(job)))
        self.busy_time += service_time
        post_delay = 0.0
        if self.post_delay_fn is not None:
            post_delay = max(0.0, float(self.post_delay_fn(job)))

        def _finish_service() -> None:
            self.jobs_served += 1
            if post_delay > 0:
                self.scheduler.schedule(post_delay, lambda: on_complete(job))
            else:
                on_complete(job)
            self._start_next()

        self.scheduler.schedule(service_time, _finish_service)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the server spent serving jobs."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
