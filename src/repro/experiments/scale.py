"""Experiment scaling: smoke / small / paper iteration budgets.

The paper's experiments use 500 stage-1 iterations, 1000 offline iterations,
100 online iterations and 60-second measurements — several hours of wall
clock even with multiprocessing.  The benchmark harness therefore runs the
same code with smaller budgets by default; set ``ATLAS_BENCH_SCALE=paper``
to reproduce the full-scale runs and ``ATLAS_BENCH_SCALE=smoke`` for the
fastest possible sanity pass.

The variable is read by :func:`get_scale` each time an experiment runner or
benchmark asks for its budgets (there is no import-time caching), so one
pytest session can only run at one scale but consecutive invocations can
mix scales freely.  Every budget travels inside the returned frozen
:class:`ExperimentScale`; nothing else in the library consults the
environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Iteration budgets and measurement durations for the experiment runners."""

    name: str
    #: Duration (s) of each simulator / real-network measurement.
    measurement_duration_s: float
    #: Number of repeated runs for purely observational experiments.
    motivation_runs: int
    #: Stage 1 (learning-based simulator) budgets.
    stage1_iterations: int
    stage1_initial_random: int
    stage1_parallel: int
    stage1_candidate_pool: int
    #: Stage 2 (offline training) budgets.
    stage2_iterations: int
    stage2_initial_random: int
    stage2_parallel: int
    stage2_candidate_pool: int
    #: Stage 3 (online learning) budgets.
    stage3_iterations: int
    stage3_offline_queries: int
    stage3_candidate_pool: int
    #: Baseline budgets.
    baseline_iterations: int
    dlda_grid_points: int
    dlda_selection_pool: int
    #: Heatmap resolution (cells per axis) for the Fig. 4 / Fig. 15 grids.
    heatmap_resolution: int


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        measurement_duration_s=10.0,
        motivation_runs=1,
        stage1_iterations=6,
        stage1_initial_random=3,
        stage1_parallel=2,
        stage1_candidate_pool=300,
        stage2_iterations=8,
        stage2_initial_random=4,
        stage2_parallel=2,
        stage2_candidate_pool=300,
        stage3_iterations=6,
        stage3_offline_queries=2,
        stage3_candidate_pool=300,
        baseline_iterations=6,
        dlda_grid_points=2,
        dlda_selection_pool=500,
        heatmap_resolution=3,
    ),
    "small": ExperimentScale(
        name="small",
        measurement_duration_s=20.0,
        motivation_runs=2,
        stage1_iterations=20,
        stage1_initial_random=6,
        stage1_parallel=3,
        stage1_candidate_pool=800,
        stage2_iterations=30,
        stage2_initial_random=8,
        stage2_parallel=3,
        stage2_candidate_pool=800,
        stage3_iterations=25,
        stage3_offline_queries=10,
        stage3_candidate_pool=800,
        baseline_iterations=20,
        dlda_grid_points=3,
        dlda_selection_pool=2000,
        heatmap_resolution=5,
    ),
    "paper": ExperimentScale(
        name="paper",
        measurement_duration_s=60.0,
        motivation_runs=5,
        stage1_iterations=500,
        stage1_initial_random=100,
        stage1_parallel=16,
        stage1_candidate_pool=10_000,
        stage2_iterations=1000,
        stage2_initial_random=100,
        stage2_parallel=16,
        stage2_candidate_pool=10_000,
        stage3_iterations=100,
        stage3_offline_queries=20,
        stage3_candidate_pool=10_000,
        baseline_iterations=100,
        dlda_grid_points=4,
        dlda_selection_pool=10_000,
        heatmap_resolution=5,
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Return the requested scale, or the one selected by ``ATLAS_BENCH_SCALE``.

    ``name=None`` (the usual call from experiment runners, benchmarks and
    the CLI) reads the ``ATLAS_BENCH_SCALE`` environment variable and falls
    back to ``small`` when it is unset.  Recognised values — explicit or via
    the variable, case-insensitive — are the :data:`SCALES` keys ``smoke``
    (seconds, CI sanity pass), ``small`` (minutes, the default) and
    ``paper`` (hours, the full-scale reproduction); anything else raises
    ``ValueError`` naming the valid choices.
    """
    if name is None:
        name = os.environ.get("ATLAS_BENCH_SCALE", "small")
    lowered = name.lower()
    if lowered not in SCALES:
        raise ValueError(f"unknown scale {name!r}; expected one of {sorted(SCALES)}")
    return SCALES[lowered]
