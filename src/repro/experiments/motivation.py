"""Motivation experiments (Sec. 2): Table 1 and Figs. 2–5.

These experiments quantify the sim-to-real discrepancy between the original
simulator and the real network, and demonstrate why existing online learners
(DLDA, plain Bayesian optimisation) are unsafe: most of their exploration
violates the QoE requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.dlda import DLDA, DLDAConfig
from repro.baselines.gp_bo import GPConfigurationOptimizer, GPOptimizerConfig
from repro.engine import MeasurementEngine, MeasurementRequest
from repro.experiments.scale import ExperimentScale, get_scale
from repro.experiments.scenarios import (
    default_deployed_config,
    default_sla,
    make_real_network,
    make_simulator,
)
from repro.metrics.kl import histogram_kl_divergence
from repro.metrics.stats import empirical_cdf, summarize_latencies
from repro.sim.config import SliceConfig

__all__ = [
    "NetworkPerformanceRow",
    "table1_network_performance",
    "LatencyCdfResult",
    "fig2_latency_cdf",
    "TrafficLatencyResult",
    "fig3_latency_vs_traffic",
    "KLHeatmapResult",
    "fig4_kl_heatmap",
    "OnlineFootprintResult",
    "fig5_online_footprint",
]


# --------------------------------------------------------------------- Table 1
@dataclass(frozen=True)
class NetworkPerformanceRow:
    """One row of Table 1: a metric measured in the simulator and the system."""

    metric: str
    simulator: float
    system: float


def table1_network_performance(scale: ExperimentScale | None = None) -> list[NetworkPerformanceRow]:
    """Reproduce Table 1: networking performance of simulator vs real network."""
    scale = scale if scale is not None else get_scale()
    sim_engine = MeasurementEngine(make_simulator(seed=0))
    sys_engine = MeasurementEngine(make_real_network(seed=1))
    config = default_deployed_config()
    requests = [
        MeasurementRequest(config=config, traffic=1, duration=scale.measurement_duration_s, seed=run)
        for run in range(scale.motivation_runs)
    ]

    sim_metrics = {"ping": [], "ul": [], "dl": [], "ul_per": [], "dl_per": []}
    sys_metrics = {"ping": [], "ul": [], "dl": [], "ul_per": [], "dl_per": []}
    for sim_result, sys_result in zip(sim_engine.run_batch(requests), sys_engine.run_batch(requests)):
        for metrics, result in ((sim_metrics, sim_result), (sys_metrics, sys_result)):
            metrics["ping"].append(result.ping_delay_ms)
            metrics["ul"].append(result.ul_throughput_mbps)
            metrics["dl"].append(result.dl_throughput_mbps)
            metrics["ul_per"].append(result.ul_packet_error_rate)
            metrics["dl_per"].append(result.dl_packet_error_rate)

    def mean(values: list[float]) -> float:
        return float(np.mean(values))

    return [
        NetworkPerformanceRow("Average Ping Delay (ms)", mean(sim_metrics["ping"]), mean(sys_metrics["ping"])),
        NetworkPerformanceRow("UL Throughput (Mbps)", mean(sim_metrics["ul"]), mean(sys_metrics["ul"])),
        NetworkPerformanceRow("DL Throughput (Mbps)", mean(sim_metrics["dl"]), mean(sys_metrics["dl"])),
        NetworkPerformanceRow("UL Packet Error Rate", mean(sim_metrics["ul_per"]), mean(sys_metrics["ul_per"])),
        NetworkPerformanceRow("DL Packet Error Rate", mean(sim_metrics["dl_per"]), mean(sys_metrics["dl_per"])),
    ]


# ---------------------------------------------------------------------- Fig. 2
@dataclass
class LatencyCdfResult:
    """Empirical latency CDFs of the simulator and the system (Fig. 2)."""

    simulator_latencies: np.ndarray
    system_latencies: np.ndarray

    def simulator_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """CDF curve of the simulator collection."""
        return empirical_cdf(self.simulator_latencies)

    def system_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """CDF curve of the system collection."""
        return empirical_cdf(self.system_latencies)

    def mean_latency_increase(self) -> float:
        """Fractional increase of the system's mean latency over the simulator's."""
        sim_mean = float(np.mean(self.simulator_latencies))
        sys_mean = float(np.mean(self.system_latencies))
        return sys_mean / sim_mean - 1.0


def fig2_latency_cdf(scale: ExperimentScale | None = None) -> LatencyCdfResult:
    """Reproduce Fig. 2: end-to-end latency CDF under one slice user."""
    scale = scale if scale is not None else get_scale()
    sim_engine = MeasurementEngine(make_simulator(seed=0))
    sys_engine = MeasurementEngine(make_real_network(seed=1))
    config = default_deployed_config()
    requests = [
        MeasurementRequest(config=config, traffic=1, duration=scale.measurement_duration_s, seed=run)
        for run in range(scale.motivation_runs)
    ]
    return LatencyCdfResult(
        simulator_latencies=np.concatenate(sim_engine.collect_latencies_batch(requests)),
        system_latencies=np.concatenate(sys_engine.collect_latencies_batch(requests)),
    )


# ---------------------------------------------------------------------- Fig. 3
@dataclass
class TrafficLatencyResult:
    """Latency statistics under different user traffic (Fig. 3)."""

    traffic_levels: list[int]
    simulator_summaries: list[dict]
    system_summaries: list[dict]

    def mean_gap_ms(self) -> np.ndarray:
        """System-minus-simulator mean latency gap per traffic level."""
        return np.array(
            [s["mean"] - r["mean"] for s, r in zip(self.system_summaries, self.simulator_summaries)]
        )


def fig3_latency_vs_traffic(
    scale: ExperimentScale | None = None, traffic_levels: tuple[int, ...] = (1, 2, 3, 4)
) -> TrafficLatencyResult:
    """Reproduce Fig. 3: latency statistics under different user traffic."""
    scale = scale if scale is not None else get_scale()
    sim_engine = MeasurementEngine(make_simulator(seed=0))
    sys_engine = MeasurementEngine(make_real_network(seed=1))
    config = default_deployed_config()
    requests = [
        MeasurementRequest(
            config=config, traffic=traffic, duration=scale.measurement_duration_s, seed=traffic
        )
        for traffic in traffic_levels
    ]
    sim_summaries = [
        summarize_latencies(latencies).as_dict()
        for latencies in sim_engine.collect_latencies_batch(requests)
    ]
    sys_summaries = [
        summarize_latencies(latencies).as_dict()
        for latencies in sys_engine.collect_latencies_batch(requests)
    ]
    return TrafficLatencyResult(
        traffic_levels=list(traffic_levels),
        simulator_summaries=sim_summaries,
        system_summaries=sys_summaries,
    )


# ---------------------------------------------------------------------- Fig. 4
@dataclass
class KLHeatmapResult:
    """KL-divergence between system and simulator over a resource grid (Fig. 4)."""

    cpu_levels: np.ndarray
    ul_bw_levels: np.ndarray
    kl_matrix: np.ndarray

    def max_divergence(self) -> float:
        """Largest divergence over the grid."""
        return float(np.max(self.kl_matrix))

    def min_divergence(self) -> float:
        """Smallest divergence over the grid."""
        return float(np.min(self.kl_matrix))


def _resource_grid_config(cpu_fraction: float, ul_fraction: float) -> SliceConfig:
    """Configuration used by the Fig. 4 / Fig. 15 resource grids.

    CPU and UL bandwidth sweep the grid; the remaining resources stay at the
    deployed defaults so the latency is sensitive to the swept dimensions.
    """
    base = default_deployed_config()
    return base.replace(cpu_ratio=cpu_fraction, bandwidth_ul=50.0 * ul_fraction)


def fig4_kl_heatmap(scale: ExperimentScale | None = None) -> KLHeatmapResult:
    """Reproduce Fig. 4: heatmap of KL-divergence under CPU × UL bandwidth usage."""
    scale = scale if scale is not None else get_scale()
    sim_engine = MeasurementEngine(make_simulator(seed=0))
    sys_engine = MeasurementEngine(make_real_network(seed=1))
    levels = np.linspace(0.1, 0.9, scale.heatmap_resolution)
    requests = [
        MeasurementRequest(
            config=_resource_grid_config(cpu_fraction, ul_fraction),
            traffic=1,
            duration=scale.measurement_duration_s,
            seed=100 + i * len(levels) + j,
        )
        for i, ul_fraction in enumerate(levels)
        for j, cpu_fraction in enumerate(levels)
    ]
    sim_collections = sim_engine.collect_latencies_batch(requests)
    sys_collections = sys_engine.collect_latencies_batch(requests)
    kl_cells = [
        histogram_kl_divergence(sys_latencies, sim_latencies)
        for sys_latencies, sim_latencies in zip(sys_collections, sim_collections)
    ]
    kl_matrix = np.array(kl_cells).reshape(len(levels), len(levels))
    return KLHeatmapResult(cpu_levels=levels, ul_bw_levels=levels, kl_matrix=kl_matrix)


# ---------------------------------------------------------------------- Fig. 5
@dataclass
class OnlineFootprintResult:
    """Footprint (usage, QoE) of DLDA and plain BO during online learning (Fig. 5)."""

    methods: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    qoe_requirement: float = 0.9

    def violation_rate(self, method: str) -> float:
        """Fraction of explored configurations violating the QoE requirement."""
        qoes = self.methods[method]["qoe"]
        if qoes.size == 0:
            return 0.0
        return float(np.mean(qoes < self.qoe_requirement))


def fig5_online_footprint(scale: ExperimentScale | None = None) -> OnlineFootprintResult:
    """Reproduce Fig. 5: footprint of DLDA and BO exploring the real network."""
    scale = scale if scale is not None else get_scale()
    sla = default_sla()
    system = make_real_network(seed=2)
    simulator = make_simulator(seed=0)

    bo = GPConfigurationOptimizer(
        environment=system,
        sla=sla,
        traffic=1,
        config=GPOptimizerConfig(
            iterations=scale.baseline_iterations,
            initial_random=max(3, scale.baseline_iterations // 4),
            candidate_pool=scale.stage3_candidate_pool,
            measurement_duration_s=scale.measurement_duration_s,
            seed=3,
        ),
    )
    bo_result = bo.run()

    dlda = DLDA(
        simulator=simulator,
        sla=sla,
        traffic=1,
        config=DLDAConfig(
            grid_points_per_dim=scale.dlda_grid_points,
            selection_pool=scale.dlda_selection_pool,
            online_iterations=scale.baseline_iterations,
            measurement_duration_s=scale.measurement_duration_s,
            seed=4,
        ),
    )
    dlda_result = dlda.run_online(make_real_network(seed=3))

    result = OnlineFootprintResult(qoe_requirement=sla.availability)
    result.methods["BO"] = {"usage": bo_result.usages(), "qoe": bo_result.qoes()}
    result.methods["DLDA"] = {"usage": dlda_result.usages(), "qoe": dlda_result.qoes()}
    return result
