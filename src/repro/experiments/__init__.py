"""Experiment runners for every table and figure of the paper's evaluation.

Each module groups the experiments of one evaluation subsection:

* :mod:`repro.experiments.motivation` — Sec. 2: Table 1, Figs. 2–5.
* :mod:`repro.experiments.stage1` — Sec. 8.1: Fig. 8/Table 4, Figs. 9–15.
* :mod:`repro.experiments.stage2` — Sec. 8.2: Figs. 16–19.
* :mod:`repro.experiments.stage3` — Sec. 8.3: Figs. 20–26 and Table 5.

Every runner takes an :class:`~repro.experiments.scale.ExperimentScale`
(defaulting to the value selected by the ``ATLAS_BENCH_SCALE`` environment
variable) so the same code drives quick benchmark runs and full paper-scale
reproductions.
"""

from repro.experiments.scale import ExperimentScale, get_scale
from repro.experiments.scenarios import (
    default_deployed_config,
    default_sla,
    make_real_network,
    make_simulator,
)

__all__ = [
    "ExperimentScale",
    "get_scale",
    "default_sla",
    "default_deployed_config",
    "make_simulator",
    "make_real_network",
]
