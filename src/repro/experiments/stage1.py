"""Stage-1 evaluation experiments (Sec. 8.1): Fig. 8/Table 4 through Fig. 15.

All runners share the same structure: collect the online dataset ``D_r`` from
the real network under the deployed configuration, search the simulation
parameters with the requested method, and evaluate the resulting augmented
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.simulator_learning import (
    ParameterSearchConfig,
    ParameterSearchResult,
    SimulatorParameterSearch,
)
from repro.core.spaces import SimulationParameterSpace
from repro.engine import MeasurementEngine, MeasurementRequest
from repro.experiments.scale import ExperimentScale, get_scale
from repro.experiments.scenarios import (
    collect_online_dataset,
    default_deployed_config,
    make_real_network,
    make_simulator,
)
from repro.metrics.kl import histogram_kl_divergence
from repro.prototype.slice_manager import SLA, NetworkSlice, SliceManager
from repro.sim.parameters import SimulationParameters

__all__ = [
    "ParameterSearchComparison",
    "fig8_table4_parameter_search",
    "fig9_latency_cdf_methods",
    "MobilityDiscrepancyResult",
    "fig10_mobility_discrepancy",
    "IsolationResult",
    "fig11_isolation",
    "ParetoAlphaResult",
    "fig12_pareto_alpha",
    "ParallelQueriesResult",
    "fig13_parallel_queries",
    "DiscrepancyReductionResult",
    "fig14_discrepancy_under_traffic",
    "fig15_discrepancy_under_resources",
]


def _stage1_duration(scale: ExperimentScale) -> float:
    """Stage-1 measurements need enough samples for a stable KL estimate."""
    return max(scale.measurement_duration_s, 30.0)


def _stage1_config(scale: ExperimentScale, surrogate: str = "bnn", **overrides) -> ParameterSearchConfig:
    defaults = dict(
        iterations=scale.stage1_iterations,
        initial_random=scale.stage1_initial_random,
        parallel_queries=scale.stage1_parallel,
        candidate_pool=scale.stage1_candidate_pool,
        measurement_duration_s=_stage1_duration(scale),
        surrogate=surrogate,
        seed=0,
    )
    defaults.update(overrides)
    return ParameterSearchConfig(**defaults)


def _run_search(
    scale: ExperimentScale,
    surrogate: str = "bnn",
    real_collection: np.ndarray | None = None,
    **config_overrides,
) -> ParameterSearchResult:
    simulator = make_simulator(seed=0)
    if real_collection is None:
        real_network = make_real_network(seed=1)
        real_collection = collect_online_dataset(
            real_network, runs=scale.motivation_runs, duration_s=_stage1_duration(scale)
        )
    search = SimulatorParameterSearch(
        simulator=simulator,
        real_collection=real_collection,
        deployed_config=default_deployed_config(),
        space=SimulationParameterSpace(),
        config=_stage1_config(scale, surrogate, **config_overrides),
    )
    return search.run()


# ------------------------------------------------------------ Fig. 8 / Table 4
@dataclass
class ParameterSearchComparison:
    """Stage-1 comparison of the BNN-PTS search ("ours") vs the GP search."""

    ours: ParameterSearchResult
    gp: ParameterSearchResult

    def table4_rows(self) -> list[dict]:
        """The rows of Table 4: original simulator, GP search, our search."""
        original = SimulationParameters.defaults()
        return [
            {
                "method": "Original Simulator",
                "discrepancy": self.ours.original_discrepancy,
                "parameter_distance": 0.0,
                "parameters": tuple(original.to_array()),
            },
            {
                "method": "Aug. Simulator, GP",
                "discrepancy": self.gp.best_discrepancy,
                "parameter_distance": self.gp.best_distance,
                "parameters": tuple(self.gp.best_parameters.to_array()),
            },
            {
                "method": "Aug. Simulator, Ours",
                "discrepancy": self.ours.best_discrepancy,
                "parameter_distance": self.ours.best_distance,
                "parameters": tuple(self.ours.best_parameters.to_array()),
            },
        ]


def fig8_table4_parameter_search(scale: ExperimentScale | None = None) -> ParameterSearchComparison:
    """Reproduce Fig. 8 and Table 4: searching progress and best parameters."""
    scale = scale if scale is not None else get_scale()
    real_network = make_real_network(seed=1)
    real_collection = collect_online_dataset(
        real_network, runs=scale.motivation_runs, duration_s=_stage1_duration(scale)
    )
    ours = _run_search(scale, surrogate="bnn", real_collection=real_collection)
    gp = _run_search(scale, surrogate="gp", real_collection=real_collection)
    return ParameterSearchComparison(ours=ours, gp=gp)


# ---------------------------------------------------------------------- Fig. 9
@dataclass
class LatencyCdfMethodsResult:
    """Latency collections of the system and of the augmented simulators (Fig. 9)."""

    system: np.ndarray
    augmented_ours: np.ndarray
    augmented_gp: np.ndarray

    def discrepancy(self, which: str) -> float:
        """KL divergence of the chosen augmented simulator against the system."""
        collection = self.augmented_ours if which == "ours" else self.augmented_gp
        return histogram_kl_divergence(self.system, collection)


def fig9_latency_cdf_methods(
    comparison: ParameterSearchComparison | None = None,
    scale: ExperimentScale | None = None,
) -> LatencyCdfMethodsResult:
    """Reproduce Fig. 9: latency CDFs under the best parameters of each method."""
    scale = scale if scale is not None else get_scale()
    if comparison is None:
        comparison = fig8_table4_parameter_search(scale)
    config = default_deployed_config()
    sys_engine = MeasurementEngine(make_real_network(seed=5))
    sim_engine = MeasurementEngine(make_simulator(seed=0))
    system_latencies = sys_engine.collect_latencies(
        config, traffic=1, duration=scale.measurement_duration_s, seed=7
    )
    # Both augmented simulators are parameter overrides of one base
    # simulator, so they go out as a single two-request batch.
    ours_latencies, gp_latencies = sim_engine.collect_latencies_batch(
        [
            MeasurementRequest(
                config=config,
                traffic=1,
                duration=scale.measurement_duration_s,
                seed=7,
                params=best,
            )
            for best in (comparison.ours.best_parameters, comparison.gp.best_parameters)
        ]
    )
    return LatencyCdfMethodsResult(
        system=system_latencies, augmented_ours=ours_latencies, augmented_gp=gp_latencies
    )


# --------------------------------------------------------------------- Fig. 10
@dataclass
class MobilityDiscrepancyResult:
    """Sim-to-real discrepancy under different UE–eNB distances (Fig. 10)."""

    distances: list
    discrepancies: list[float]


def fig10_mobility_discrepancy(
    scale: ExperimentScale | None = None,
    distances: tuple = (1.0, 3.0, 5.0, 7.0, 10.0, "random"),
) -> MobilityDiscrepancyResult:
    """Reproduce Fig. 10: discrepancy under user mobility (distance sweep + random walk)."""
    scale = scale if scale is not None else get_scale()
    config = default_deployed_config()
    discrepancies = []
    for index, distance in enumerate(distances):
        if distance == "random":
            scenario_kwargs = {"distance_m": 5.0, "mobility": "random_walk"}
        else:
            scenario_kwargs = {"distance_m": float(distance), "mobility": "static"}
        # Each distance is a different scenario, i.e. a different environment
        # pair; the engines still give the queries caching + uniform execution.
        sim_engine = MeasurementEngine(make_simulator(seed=0, **scenario_kwargs))
        sys_engine = MeasurementEngine(make_real_network(seed=1, **scenario_kwargs))
        sim_latencies = sim_engine.collect_latencies(
            config, traffic=1, duration=scale.measurement_duration_s, seed=20 + index
        )
        sys_latencies = sys_engine.collect_latencies(
            config, traffic=1, duration=scale.measurement_duration_s, seed=20 + index
        )
        discrepancies.append(histogram_kl_divergence(sys_latencies, sim_latencies))
    return MobilityDiscrepancyResult(distances=list(distances), discrepancies=discrepancies)


# --------------------------------------------------------------------- Fig. 11
@dataclass
class IsolationResult:
    """Slice latency under extra background users (Fig. 11)."""

    extra_users: list[int]
    mean_latencies_ms: list[float]
    qoes: list[float]

    def max_latency_shift(self) -> float:
        """Largest relative change of the slice's mean latency across user counts."""
        base = self.mean_latencies_ms[0]
        return float(max(abs(v - base) / base for v in self.mean_latencies_ms))


def fig11_isolation(
    scale: ExperimentScale | None = None, extra_users: tuple[int, ...] = (0, 1, 2)
) -> IsolationResult:
    """Reproduce Fig. 11: slice latency stays stable as background users come and go."""
    scale = scale if scale is not None else get_scale()
    sla = SLA()
    network = make_real_network(seed=6)
    manager = SliceManager(network)
    manager.admit(NetworkSlice(name="slice-0", sla=sla, config=default_deployed_config(), traffic=1))
    latencies, qoes = [], []
    for count in extra_users:
        manager.attach_background_users(count)
        result, qoe, _ = manager.measure_slice(
            "slice-0", duration=scale.measurement_duration_s, seed=30 + count
        )
        latencies.append(result.mean_latency_ms)
        qoes.append(qoe)
    return IsolationResult(extra_users=list(extra_users), mean_latencies_ms=latencies, qoes=qoes)


# --------------------------------------------------------------------- Fig. 12
@dataclass
class ParetoAlphaResult:
    """Pareto boundary of discrepancy vs parameter distance under varying α (Fig. 12)."""

    alphas: list[float]
    discrepancies: list[float]
    distances: list[float]


def fig12_pareto_alpha(
    scale: ExperimentScale | None = None, alphas: tuple[float, ...] = (1.0, 4.0, 7.0, 12.0)
) -> ParetoAlphaResult:
    """Reproduce Fig. 12: the α weight trades discrepancy against parameter distance."""
    scale = scale if scale is not None else get_scale()
    real_network = make_real_network(seed=1)
    real_collection = collect_online_dataset(
        real_network, runs=scale.motivation_runs, duration_s=_stage1_duration(scale)
    )
    discrepancies, distances = [], []
    for index, alpha in enumerate(alphas):
        result = _run_search(
            scale, surrogate="bnn", real_collection=real_collection, alpha=alpha, seed=index
        )
        discrepancies.append(result.best_discrepancy)
        distances.append(result.best_distance)
    return ParetoAlphaResult(alphas=list(alphas), discrepancies=discrepancies, distances=distances)


# --------------------------------------------------------------------- Fig. 13
@dataclass
class ParallelQueriesResult:
    """Searching progress under different numbers of parallel queries (Fig. 13)."""

    parallel_counts: list[int]
    progress_curves: dict[int, np.ndarray] = field(default_factory=dict)
    best_weighted: dict[int, float] = field(default_factory=dict)


def fig13_parallel_queries(
    scale: ExperimentScale | None = None, parallel_counts: tuple[int, ...] = (1, 2, 4, 8)
) -> ParallelQueriesResult:
    """Reproduce Fig. 13: more parallel Thompson-sampling queries converge better."""
    scale = scale if scale is not None else get_scale()
    real_network = make_real_network(seed=1)
    real_collection = collect_online_dataset(
        real_network, runs=scale.motivation_runs, duration_s=_stage1_duration(scale)
    )
    result = ParallelQueriesResult(parallel_counts=list(parallel_counts))
    for count in parallel_counts:
        search_result = _run_search(
            scale,
            surrogate="bnn",
            real_collection=real_collection,
            parallel_queries=count,
            candidate_pool=max(scale.stage1_candidate_pool, count * 10),
        )
        result.progress_curves[count] = search_result.best_so_far()
        result.best_weighted[count] = search_result.best_weighted_discrepancy
    return result


# ------------------------------------------------------------- Figs. 14 and 15
@dataclass
class DiscrepancyReductionResult:
    """Discrepancy of the original vs augmented simulator over scenarios (Figs. 14–15)."""

    labels: list
    original: list[float]
    augmented: list[float]

    def reductions(self) -> np.ndarray:
        """Fractional reduction (1 means the discrepancy vanished) per scenario."""
        original = np.asarray(self.original)
        augmented = np.asarray(self.augmented)
        with np.errstate(divide="ignore", invalid="ignore"):
            reduction = 1.0 - augmented / original
        return np.nan_to_num(reduction, nan=0.0, posinf=0.0, neginf=0.0)


def fig14_discrepancy_under_traffic(
    best_parameters: SimulationParameters,
    scale: ExperimentScale | None = None,
    traffic_levels: tuple[int, ...] = (1, 2, 3, 4),
) -> DiscrepancyReductionResult:
    """Reproduce Fig. 14: discrepancy reduction across traffic levels.

    The best parameters are derived from traffic level 1 only (as in the
    paper) and then applied to every traffic level.
    """
    scale = scale if scale is not None else get_scale()
    config = default_deployed_config()
    sys_engine = MeasurementEngine(make_real_network(seed=1))
    sim_engine = MeasurementEngine(make_simulator(seed=0))

    def requests(params: SimulationParameters | None) -> list[MeasurementRequest]:
        return [
            MeasurementRequest(
                config=config,
                traffic=traffic,
                duration=scale.measurement_duration_s,
                seed=40 + traffic,
                params=params,
            )
            for traffic in traffic_levels
        ]

    sys_collections = sys_engine.collect_latencies_batch(requests(None))
    orig_collections = sim_engine.collect_latencies_batch(requests(None))
    aug_collections = sim_engine.collect_latencies_batch(requests(best_parameters))
    original = [
        histogram_kl_divergence(sys_latencies, orig_latencies)
        for sys_latencies, orig_latencies in zip(sys_collections, orig_collections)
    ]
    augmented = [
        histogram_kl_divergence(sys_latencies, aug_latencies)
        for sys_latencies, aug_latencies in zip(sys_collections, aug_collections)
    ]
    return DiscrepancyReductionResult(
        labels=list(traffic_levels), original=original, augmented=augmented
    )


def fig15_discrepancy_under_resources(
    best_parameters: SimulationParameters,
    scale: ExperimentScale | None = None,
) -> DiscrepancyReductionResult:
    """Reproduce Fig. 15: discrepancy reduction over the CPU × UL-bandwidth grid."""
    scale = scale if scale is not None else get_scale()
    sys_engine = MeasurementEngine(make_real_network(seed=1))
    sim_engine = MeasurementEngine(make_simulator(seed=0))
    levels = np.linspace(0.1, 0.9, scale.heatmap_resolution)
    base = default_deployed_config()
    labels, cells = [], []
    for i, ul_fraction in enumerate(levels):
        for j, cpu_fraction in enumerate(levels):
            labels.append((round(float(ul_fraction), 2), round(float(cpu_fraction), 2)))
            cells.append(
                (
                    base.replace(
                        cpu_ratio=float(cpu_fraction), bandwidth_ul=float(50.0 * ul_fraction)
                    ),
                    300 + i * len(levels) + j,
                )
            )

    def requests(params: SimulationParameters | None) -> list[MeasurementRequest]:
        return [
            MeasurementRequest(
                config=config,
                traffic=1,
                duration=scale.measurement_duration_s,
                seed=seed,
                params=params,
            )
            for config, seed in cells
        ]

    sys_collections = sys_engine.collect_latencies_batch(requests(None))
    orig_collections = sim_engine.collect_latencies_batch(requests(None))
    aug_collections = sim_engine.collect_latencies_batch(requests(best_parameters))
    original = [
        histogram_kl_divergence(sys_latencies, orig_latencies)
        for sys_latencies, orig_latencies in zip(sys_collections, orig_collections)
    ]
    augmented = [
        histogram_kl_divergence(sys_latencies, aug_latencies)
        for sys_latencies, aug_latencies in zip(sys_collections, aug_collections)
    ]
    return DiscrepancyReductionResult(labels=labels, original=original, augmented=augmented)
