"""Stage-3 evaluation experiments (Sec. 8.3): Figs. 20–26 and Table 5.

The online learning experiments compare Atlas against the Baseline (direct
GP-EI Bayesian optimisation), VirtualEdge and DLDA on the real network, and
ablate Atlas' own components: the acquisition function (Fig. 22), the online
approximation function (Fig. 23) and the three stages themselves (Fig. 24).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.dlda import DLDA, DLDAConfig
from repro.baselines.gp_bo import GPConfigurationOptimizer, GPOptimizerConfig
from repro.baselines.virtualedge import VirtualEdge, VirtualEdgeConfig
from repro.core.offline_training import OfflineConfigurationTrainer
from repro.core.online_learning import (
    OnlineConfigurationLearner,
    OnlineLearningConfig,
    OnlineLearningResult,
)
from repro.core.policy import OfflinePolicy
from repro.engine import MeasurementEngine, MeasurementRequest
from repro.experiments.scale import ExperimentScale, get_scale
from repro.experiments.scenarios import default_sla, make_real_network
from repro.experiments.stage2 import _make_augmented_simulator, offline_training_config
from repro.prototype.slice_manager import SLA

__all__ = [
    "MethodOnlineRun",
    "OnlineComparisonResult",
    "fig20_21_table5_online_comparison",
    "AcquisitionAblationResult",
    "fig22_acquisition_ablation",
    "ModelAblationResult",
    "fig23_online_model_ablation",
    "StageAblationResult",
    "fig24_stage_ablation",
    "DynamicTrafficResult",
    "fig25_26_dynamic_traffic",
    "train_offline_policy",
    "online_learning_config",
]


def online_learning_config(scale: ExperimentScale, **overrides) -> OnlineLearningConfig:
    """Stage-3 configuration scaled to the requested experiment budget."""
    defaults = dict(
        iterations=scale.stage3_iterations,
        offline_queries_per_step=scale.stage3_offline_queries,
        candidate_pool=scale.stage3_candidate_pool,
        measurement_duration_s=scale.measurement_duration_s,
        simulator_duration_s=max(scale.measurement_duration_s / 2.0, 10.0),
        seed=0,
    )
    defaults.update(overrides)
    return OnlineLearningConfig(**defaults)


def train_offline_policy(
    scale: ExperimentScale, sla: SLA, traffic: int = 1, seed: int = 0
) -> OfflinePolicy:
    """Train the stage-2 policy used as the starting point of the online experiments."""
    trainer = OfflineConfigurationTrainer(
        simulator=_make_augmented_simulator(seed=seed),
        sla=sla,
        traffic=traffic,
        config=offline_training_config(scale, seed=seed),
    )
    return trainer.run().policy


# --------------------------------------------------- Figs. 20–21 and Table 5
@dataclass
class MethodOnlineRun:
    """Per-iteration usage/QoE and average regrets of one online method."""

    method: str
    usages: np.ndarray
    qoes: np.ndarray
    average_usage_regret: float
    average_qoe_regret: float
    sla_violation_rate: float


@dataclass
class OnlineComparisonResult:
    """Outcome of the Figs. 20–21 / Table 5 comparison.

    The regrets of Eqs. 10–11 are defined against the optimal policy
    ``phi*``; as in the paper, the best SLA-satisfying configuration observed
    across the compared methods within the online horizon stands in for it,
    so every method is measured against the *same* reference.
    """

    runs: dict[str, MethodOnlineRun] = field(default_factory=dict)
    qoe_requirement: float = 0.9
    optimal_usage: float = 0.0
    optimal_qoe: float = 1.0

    def recompute_regrets(self) -> None:
        """Determine the common hindsight optimum and recompute every method's regrets."""
        best_usage, best_qoe = None, None
        for run in self.runs.values():
            feasible = run.qoes >= self.qoe_requirement
            if feasible.any():
                usages = run.usages[feasible]
                qoes = run.qoes[feasible]
                index = int(np.argmin(usages))
                if best_usage is None or usages[index] < best_usage:
                    best_usage, best_qoe = float(usages[index]), float(qoes[index])
        if best_usage is None:
            # No method ever met the SLA: fall back to the highest-QoE point.
            all_points = [
                (u, q) for run in self.runs.values() for u, q in zip(run.usages, run.qoes)
            ]
            best_usage, best_qoe = min(all_points, key=lambda p: -p[1])
        self.optimal_usage, self.optimal_qoe = best_usage, best_qoe
        for run in self.runs.values():
            run.average_usage_regret = float(np.mean(run.usages - self.optimal_usage))
            run.average_qoe_regret = float(np.mean(np.maximum(self.optimal_qoe - run.qoes, 0.0)))

    def table5_rows(self) -> list[dict]:
        """Rows of Table 5: average usage regret and average QoE regret per method."""
        return [
            {
                "method": run.method,
                "avg_usage_regret_percent": 100.0 * run.average_usage_regret,
                "avg_qoe_regret": run.average_qoe_regret,
                "sla_violation_rate": run.sla_violation_rate,
            }
            for run in self.runs.values()
        ]


def _record_run(name: str, usages, qoes, usage_regret, qoe_regret, violation_rate) -> MethodOnlineRun:
    return MethodOnlineRun(
        method=name,
        usages=np.asarray(usages, dtype=float),
        qoes=np.asarray(qoes, dtype=float),
        average_usage_regret=float(usage_regret),
        average_qoe_regret=float(qoe_regret),
        sla_violation_rate=float(violation_rate),
    )


def fig20_21_table5_online_comparison(
    scale: ExperimentScale | None = None,
    sla: SLA | None = None,
    traffic: int = 1,
    methods: tuple[str, ...] = ("ours", "baseline", "virtualedge", "dlda"),
    offline_policy: OfflinePolicy | None = None,
) -> OnlineComparisonResult:
    """Reproduce Figs. 20–21 and Table 5: online learning on the real network."""
    scale = scale if scale is not None else get_scale()
    sla = sla if sla is not None else default_sla()
    result = OnlineComparisonResult(qoe_requirement=sla.availability)
    simulator = _make_augmented_simulator()
    if offline_policy is None and ("ours" in methods):
        offline_policy = train_offline_policy(scale, sla, traffic=traffic)

    for method in methods:
        real_network = make_real_network(seed=10 + hash(method) % 50, traffic=traffic)
        if method == "ours":
            learner = OnlineConfigurationLearner(
                offline_policy=offline_policy,
                simulator=simulator,
                real_network=real_network,
                sla=sla,
                traffic=traffic,
                config=online_learning_config(scale),
            )
            run = learner.run()
            result.runs[method] = _record_run(
                "Ours",
                run.usages(),
                run.qoes(),
                run.average_usage_regret(),
                run.average_qoe_regret(),
                run.sla_violation_rate(),
            )
        elif method == "baseline":
            optimizer = GPConfigurationOptimizer(
                environment=real_network,
                sla=sla,
                traffic=traffic,
                config=GPOptimizerConfig(
                    iterations=scale.stage3_iterations,
                    initial_random=max(3, scale.stage3_iterations // 4),
                    candidate_pool=scale.stage3_candidate_pool,
                    measurement_duration_s=scale.measurement_duration_s,
                    seed=11,
                ),
            )
            run = optimizer.run()
            result.runs[method] = _record_run(
                "Baseline",
                run.usages(),
                run.qoes(),
                run.average_usage_regret(),
                run.average_qoe_regret(),
                run.sla_violation_rate(),
            )
        elif method == "virtualedge":
            learner = VirtualEdge(
                environment=real_network,
                sla=sla,
                traffic=traffic,
                config=VirtualEdgeConfig(
                    iterations=scale.stage3_iterations,
                    measurement_duration_s=scale.measurement_duration_s,
                    seed=12,
                ),
            )
            run = learner.run()
            result.runs[method] = _record_run(
                "VirtualEdge",
                run.usages(),
                run.qoes(),
                run.average_usage_regret(),
                run.average_qoe_regret(),
                run.sla_violation_rate(),
            )
        elif method == "dlda":
            # DLDA has no learning-based simulator stage: its offline grid
            # dataset comes from the original (un-augmented) simulator.
            from repro.experiments.scenarios import make_simulator

            dlda = DLDA(
                simulator=make_simulator(seed=0, traffic=traffic),
                sla=sla,
                traffic=traffic,
                config=DLDAConfig(
                    grid_points_per_dim=scale.dlda_grid_points,
                    selection_pool=scale.dlda_selection_pool,
                    online_iterations=scale.stage3_iterations,
                    measurement_duration_s=scale.measurement_duration_s,
                    seed=13,
                ),
            )
            run = dlda.run_online(real_network, iterations=scale.stage3_iterations)
            result.runs[method] = _record_run(
                "DLDA",
                run.usages(),
                run.qoes(),
                run.average_usage_regret(),
                run.average_qoe_regret(),
                run.sla_violation_rate(),
            )
        else:
            raise ValueError(f"unknown online method {method!r}")
    result.recompute_regrets()
    return result


# --------------------------------------------------------------------- Fig. 22
@dataclass
class AcquisitionAblationResult:
    """Footprint of Atlas under different acquisition functions (Fig. 22)."""

    footprints: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    qoe_requirement: float = 0.9

    def violation_rate(self, acquisition: str) -> float:
        """Fraction of explored configurations violating the QoE requirement."""
        qoes = self.footprints[acquisition]["qoe"]
        if qoes.size == 0:
            return 0.0
        return float(np.mean(qoes < self.qoe_requirement))


def fig22_acquisition_ablation(
    scale: ExperimentScale | None = None,
    sla: SLA | None = None,
    acquisitions: tuple[str, ...] = ("crgp_ucb", "gp_ucb", "ei", "pi"),
    offline_policy: OfflinePolicy | None = None,
) -> AcquisitionAblationResult:
    """Reproduce Fig. 22: cRGP-UCB explores more safely than EI/PI/GP-UCB."""
    scale = scale if scale is not None else get_scale()
    sla = sla if sla is not None else default_sla()
    simulator = _make_augmented_simulator()
    if offline_policy is None:
        offline_policy = train_offline_policy(scale, sla)
    result = AcquisitionAblationResult(qoe_requirement=sla.availability)
    for index, acquisition in enumerate(acquisitions):
        real_network = make_real_network(seed=60 + index)
        learner = OnlineConfigurationLearner(
            offline_policy=offline_policy,
            simulator=simulator,
            real_network=real_network,
            sla=sla,
            config=online_learning_config(scale, acquisition=acquisition, seed=index),
        )
        run = learner.run()
        result.footprints[acquisition] = {"usage": run.usages(), "qoe": run.qoes()}
    return result


# --------------------------------------------------------------------- Fig. 23
@dataclass
class ModelAblationResult:
    """Regret of Atlas under different online approximation functions (Fig. 23)."""

    regrets: dict[str, dict[str, float]] = field(default_factory=dict)


def fig23_online_model_ablation(
    scale: ExperimentScale | None = None,
    sla: SLA | None = None,
    variants: tuple[str, ...] = ("ours", "bnn", "bnn_contd", "no_offline_acceleration"),
    offline_policy: OfflinePolicy | None = None,
) -> ModelAblationResult:
    """Reproduce Fig. 23: GP residual + offline acceleration beats the alternatives."""
    scale = scale if scale is not None else get_scale()
    sla = sla if sla is not None else default_sla()
    simulator = _make_augmented_simulator()
    if offline_policy is None:
        offline_policy = train_offline_policy(scale, sla)
    result = ModelAblationResult()
    for index, variant in enumerate(variants):
        overrides: dict = {"seed": index}
        if variant == "ours":
            pass
        elif variant == "bnn":
            overrides["residual_model"] = "bnn"
        elif variant == "bnn_contd":
            overrides["residual_model"] = "bnn_contd"
        elif variant == "no_offline_acceleration":
            overrides["offline_acceleration"] = False
        else:
            raise ValueError(f"unknown variant {variant!r}")
        real_network = make_real_network(seed=70 + index)
        learner = OnlineConfigurationLearner(
            offline_policy=offline_policy,
            simulator=simulator,
            real_network=real_network,
            sla=sla,
            config=online_learning_config(scale, **overrides),
        )
        run = learner.run()
        result.regrets[variant] = {
            "avg_usage_regret": run.average_usage_regret(),
            "avg_qoe_regret": run.average_qoe_regret(),
            "sla_violation_rate": run.sla_violation_rate(),
        }
    return result


# --------------------------------------------------------------------- Fig. 24
@dataclass
class StageAblationResult:
    """Footprint of Atlas when individual stages are removed (Fig. 24)."""

    footprints: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    mean_qoe: dict[str, float] = field(default_factory=dict)
    mean_usage: dict[str, float] = field(default_factory=dict)


def fig24_stage_ablation(
    scale: ExperimentScale | None = None,
    sla: SLA | None = None,
    variants: tuple[str, ...] = ("ours", "no_stage1", "no_stage2", "no_stage3"),
) -> StageAblationResult:
    """Reproduce Fig. 24: the impact of removing each of Atlas' three stages."""
    from repro.core.atlas import Atlas, AtlasConfig
    from repro.experiments.scenarios import default_deployed_config, make_simulator
    from repro.core.simulator_learning import ParameterSearchConfig

    scale = scale if scale is not None else get_scale()
    sla = sla if sla is not None else default_sla()
    result = StageAblationResult()

    for index, variant in enumerate(variants):
        enable_stage1 = variant != "no_stage1"
        enable_stage2 = variant != "no_stage2"
        enable_stage3 = variant != "no_stage3"
        simulator = make_simulator(seed=0)
        if enable_stage1:
            # Stage 1 is represented by the pre-searched augmented parameters to
            # keep the ablation affordable; "no_stage1" keeps the original ones.
            simulator = _make_augmented_simulator(seed=0)
        real_network = make_real_network(seed=80 + index)
        atlas = Atlas(
            simulator=simulator,
            real_network=real_network,
            config=AtlasConfig(
                sla=sla,
                traffic=1,
                deployed_config=default_deployed_config(),
                online_collection_runs=1,
                online_collection_duration_s=scale.measurement_duration_s,
                stage1=ParameterSearchConfig(
                    iterations=max(2, scale.stage1_iterations // 4),
                    initial_random=2,
                    parallel_queries=2,
                    candidate_pool=scale.stage1_candidate_pool,
                    measurement_duration_s=scale.measurement_duration_s,
                ),
                stage2=offline_training_config(scale, seed=index),
                stage3=online_learning_config(scale, seed=index),
                enable_stage1=False,  # parameters are injected above
                enable_stage2=enable_stage2,
                enable_stage3=enable_stage3,
                seed=index,
            ),
        )
        atlas_result = atlas.run_all()

        if enable_stage3 and atlas_result.stage3 is not None:
            usages = atlas_result.stage3.usages()
            qoes = atlas_result.stage3.qoes()
        else:
            # Without online learning the offline best action is applied
            # repeatedly; the repeats go out as one engine batch.
            policy = atlas_result.offline_policy
            requests = [
                MeasurementRequest(
                    config=policy.best_config,
                    traffic=1,
                    duration=scale.measurement_duration_s,
                    seed=iteration,
                )
                for iteration in range(scale.stage3_iterations)
            ]
            measurements = MeasurementEngine(real_network).run_batch(requests)
            usages = np.array(
                [policy.best_config.resource_usage() for _ in measurements]
            )
            qoes = np.array([m.qoe(sla.latency_threshold_ms) for m in measurements])

        result.footprints[variant] = {"usage": np.asarray(usages), "qoe": np.asarray(qoes)}
        result.mean_qoe[variant] = float(np.mean(qoes)) if len(qoes) else 0.0
        result.mean_usage[variant] = float(np.mean(usages)) if len(usages) else 0.0
    return result


# ------------------------------------------------------------- Figs. 25 and 26
@dataclass
class DynamicTrafficResult:
    """Average regrets under different user traffic (Figs. 25–26)."""

    traffic_levels: list[int]
    usage_regret: dict[str, list[float]] = field(default_factory=dict)
    qoe_regret: dict[str, list[float]] = field(default_factory=dict)


def fig25_26_dynamic_traffic(
    scale: ExperimentScale | None = None,
    traffic_levels: tuple[int, ...] = (2, 3, 4),
    methods: tuple[str, ...] = ("ours", "baseline", "virtualedge", "dlda"),
    threshold_ms: float = 500.0,
) -> DynamicTrafficResult:
    """Reproduce Figs. 25–26: online regrets under dynamic traffic (Y = 500 ms)."""
    scale = scale if scale is not None else get_scale()
    result = DynamicTrafficResult(traffic_levels=list(traffic_levels))
    for method in methods:
        result.usage_regret[method] = []
        result.qoe_regret[method] = []
    for traffic in traffic_levels:
        sla = default_sla(threshold_ms=threshold_ms)
        comparison = fig20_21_table5_online_comparison(
            scale=scale, sla=sla, traffic=traffic, methods=methods
        )
        for method in methods:
            run = comparison.runs[method]
            result.usage_regret[method].append(run.average_usage_regret)
            result.qoe_regret[method].append(run.average_qoe_regret)
    return result
