"""Shared experiment setup: default SLA, deployed configuration and networks.

Every evaluation experiment starts from the same prototype setup (Sec. 7):
a single-user slice at 1 m UE–eNB distance running the frame-offloading
application, an SLA of ``Y = 300 ms`` / ``E = 0.9``, and a mid-range deployed
configuration used both for motivation measurements and for collecting the
online dataset ``D_r``.
"""

from __future__ import annotations

import numpy as np

from repro.engine import MeasurementEngine, MeasurementRequest
from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario

__all__ = [
    "default_sla",
    "default_scenario",
    "default_deployed_config",
    "make_simulator",
    "make_real_network",
    "collect_online_dataset",
]


def default_sla(threshold_ms: float = 300.0, availability: float = 0.9) -> SLA:
    """The paper's default SLA: ``Y = 300 ms`` with availability ``E = 0.9``."""
    return SLA(latency_threshold_ms=threshold_ms, availability=availability)


def default_scenario(traffic: int = 1, **overrides) -> Scenario:
    """The prototype scenario: one slice user at 1 m from the eNB."""
    return Scenario(traffic=traffic, **overrides)


def default_deployed_config() -> SliceConfig:
    """The mid-range configuration deployed while collecting ``D_r``.

    The paper collects its online dataset by logging the performance of the
    currently deployed method; a balanced configuration (10 UL / 5 DL PRBs,
    10 Mbps backhaul, 0.8 CPU) plays that role here.
    """
    return SliceConfig(
        bandwidth_ul=10.0,
        bandwidth_dl=5.0,
        mcs_offset_ul=0.0,
        mcs_offset_dl=0.0,
        backhaul_bw=10.0,
        cpu_ratio=0.8,
    )


def make_simulator(seed: int = 0, traffic: int = 1, **scenario_overrides) -> NetworkSimulator:
    """The offline (original) simulator with default parameters."""
    return NetworkSimulator(scenario=default_scenario(traffic, **scenario_overrides), seed=seed)


def make_real_network(seed: int = 1, traffic: int = 1, **scenario_overrides) -> RealNetwork:
    """The real-network testbed substitute with the default hidden ground truth."""
    return RealNetwork(scenario=default_scenario(traffic, **scenario_overrides), seed=seed)


def collect_online_dataset(
    real_network: RealNetwork,
    config: SliceConfig | None = None,
    traffic: int = 1,
    runs: int = 2,
    duration_s: float = 30.0,
    engine: MeasurementEngine | None = None,
) -> np.ndarray:
    """Build the online collection ``D_r`` by repeatedly measuring the deployed config.

    The measurements are submitted as one engine batch.  ``runs=0`` returns
    an empty ``float64`` array (a dtype-less empty array would break the
    downstream scaler fitting).
    """
    runs = int(runs)
    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    config = config if config is not None else default_deployed_config()
    if runs == 0:
        return np.zeros(0, dtype=np.float64)
    engine = engine if engine is not None else MeasurementEngine(real_network)
    requests = [
        MeasurementRequest(config=config, traffic=traffic, duration=duration_s, seed=500 + run)
        for run in range(runs)
    ]
    return np.concatenate(engine.collect_latencies_batch(requests))
