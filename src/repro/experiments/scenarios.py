"""Shared experiment setup: the catalog's paper workload as the default.

Every evaluation experiment starts from the same prototype setup (Sec. 7):
the scenario catalog's ``frame-offloading`` entry — a single-user slice at
1 m UE–eNB distance running the frame-offloading application, an SLA of
``Y = 300 ms`` / ``E = 0.9``, and a mid-range deployed configuration used
both for motivation measurements and for collecting the online dataset
``D_r``.  The helpers below resolve that entry so the experiments and the
``python -m repro`` CLI share one source of truth; point them at any other
entry via :func:`repro.scenarios.get_scenario`.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.engine import MeasurementEngine, MeasurementRequest
from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.scenarios import get_scenario
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario

__all__ = [
    "default_workload",
    "default_sla",
    "default_scenario",
    "default_deployed_config",
    "make_simulator",
    "make_real_network",
    "collect_online_dataset",
]


def default_workload():
    """The catalog workload every experiment defaults to (``frame-offloading``)."""
    return get_scenario("frame-offloading").primary


def default_sla(threshold_ms: float | None = None, availability: float | None = None) -> SLA:
    """The paper's default SLA (``Y = 300 ms``, ``E = 0.9``), from the catalog.

    Explicit arguments override the catalog values (the threshold/availability
    sweeps of Figs. 18–19 and 25–26 rely on this).
    """
    sla = default_workload().sla
    changes = {}
    if threshold_ms is not None:
        changes["latency_threshold_ms"] = threshold_ms
    if availability is not None:
        changes["availability"] = availability
    return replace(sla, **changes) if changes else sla


def default_scenario(traffic: int = 1, **overrides) -> Scenario:
    """The prototype scenario (catalog entry), with optional field overrides."""
    return default_workload().scenario.replace(traffic=traffic, **overrides)


def default_deployed_config() -> SliceConfig:
    """The mid-range configuration deployed while collecting ``D_r``.

    The paper collects its online dataset by logging the performance of the
    currently deployed method; the catalog's balanced configuration
    (10 UL / 5 DL PRBs, 10 Mbps backhaul, 0.8 CPU) plays that role here.
    """
    return default_workload().deployed_config


def make_simulator(seed: int = 0, traffic: int = 1, **scenario_overrides) -> NetworkSimulator:
    """The offline (original) simulator with default parameters."""
    return NetworkSimulator(scenario=default_scenario(traffic, **scenario_overrides), seed=seed)


def make_real_network(seed: int = 1, traffic: int = 1, **scenario_overrides) -> RealNetwork:
    """The real-network testbed substitute with the default hidden ground truth."""
    return RealNetwork(scenario=default_scenario(traffic, **scenario_overrides), seed=seed)


def collect_online_dataset(
    real_network: RealNetwork,
    config: SliceConfig | None = None,
    traffic: int = 1,
    runs: int = 2,
    duration_s: float = 30.0,
    engine: MeasurementEngine | None = None,
) -> np.ndarray:
    """Build the online collection ``D_r`` by repeatedly measuring the deployed config.

    The measurements are submitted as one engine batch.  ``runs=0`` returns
    an empty ``float64`` array (a dtype-less empty array would break the
    downstream scaler fitting).
    """
    runs = int(runs)
    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    config = config if config is not None else default_deployed_config()
    if runs == 0:
        return np.zeros(0, dtype=np.float64)
    engine = engine if engine is not None else MeasurementEngine(real_network)
    requests = [
        MeasurementRequest(config=config, traffic=traffic, duration=duration_s, seed=500 + run)
        for run in range(runs)
    ]
    return np.concatenate(engine.collect_latencies_batch(requests))
