"""Stage-2 evaluation experiments (Sec. 8.2): Figs. 16–19.

All runners train configuration policies purely offline, i.e. against the
(augmented) simulator, and compare Atlas' BNN + parallel-Thompson-sampling
trainer with GP-based Bayesian optimisation (EI/PI/UCB acquisitions) and
DLDA's grid-trained DNN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.dlda import DLDA, DLDAConfig
from repro.baselines.gp_bo import GPConfigurationOptimizer, GPOptimizerConfig
from repro.core.offline_training import (
    OfflineConfigurationTrainer,
    OfflineTrainingConfig,
    OfflineTrainingResult,
)
from repro.engine import MeasurementEngine
from repro.experiments.scale import ExperimentScale, get_scale
from repro.experiments.scenarios import default_sla, make_simulator
from repro.prototype.slice_manager import SLA
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.parameters import SimulationParameters

__all__ = [
    "fig16_offline_progress",
    "OfflineMethodPoint",
    "fig17_offline_comparison",
    "ParetoAvailabilityResult",
    "fig18_pareto_availability",
    "ThresholdSweepResult",
    "fig19_threshold_sweep",
    "offline_training_config",
]


def offline_training_config(scale: ExperimentScale, **overrides) -> OfflineTrainingConfig:
    """Stage-2 configuration scaled to the requested experiment budget."""
    defaults = dict(
        iterations=scale.stage2_iterations,
        initial_random=scale.stage2_initial_random,
        parallel_queries=scale.stage2_parallel,
        candidate_pool=scale.stage2_candidate_pool,
        measurement_duration_s=scale.measurement_duration_s,
        seed=0,
    )
    defaults.update(overrides)
    return OfflineTrainingConfig(**defaults)


def _make_augmented_simulator(seed: int = 0) -> NetworkSimulator:
    """The augmented simulator used by the offline experiments.

    Stage 2's experiments assume stage 1 already ran; to keep each figure's
    runner independent (and affordable), the simulator here uses parameters
    close to the hidden ground truth, i.e. what a completed stage-1 search
    recovers (see Table 4 and :func:`repro.prototype.testbed.default_ground_truth`).
    """
    augmented = SimulationParameters(
        baseline_loss=38.8,
        enb_noise_figure=1.5,
        ue_noise_figure=9.0,
        backhaul_bw=4.5,
        backhaul_delay=8.0,
        compute_time=3.0,
        loading_time=5.0,
    )
    return make_simulator(seed=seed).with_params(augmented)


# --------------------------------------------------------------------- Fig. 16
def fig16_offline_progress(
    scale: ExperimentScale | None = None, sla: SLA | None = None
) -> OfflineTrainingResult:
    """Reproduce Fig. 16: offline training progress (usage and QoE per iteration)."""
    scale = scale if scale is not None else get_scale()
    sla = sla if sla is not None else default_sla()
    trainer = OfflineConfigurationTrainer(
        simulator=_make_augmented_simulator(),
        sla=sla,
        traffic=1,
        config=offline_training_config(scale),
    )
    return trainer.run()


# --------------------------------------------------------------------- Fig. 17
@dataclass(frozen=True)
class OfflineMethodPoint:
    """Best offline policy of one method: its QoE and resource usage (Fig. 17)."""

    method: str
    qoe: float
    resource_usage: float
    config: tuple[float, ...]


def _evaluate_config(
    engine: MeasurementEngine, config: SliceConfig, sla: SLA, scale: ExperimentScale, seed: int
) -> tuple[float, float]:
    # The engine's shared cache makes the repeated per-method evaluations of
    # the Fig. 18/19 sweeps free when the winning configuration repeats.
    result = engine.run(config, traffic=1, duration=scale.measurement_duration_s, seed=seed)
    return result.qoe(sla.latency_threshold_ms), config.resource_usage()


def fig17_offline_comparison(
    scale: ExperimentScale | None = None,
    sla: SLA | None = None,
    methods: tuple[str, ...] = ("ours", "gp-ei", "gp-pi", "gp-ucb", "dlda"),
) -> list[OfflineMethodPoint]:
    """Reproduce Fig. 17: QoE vs resource usage of the best policy per method."""
    scale = scale if scale is not None else get_scale()
    sla = sla if sla is not None else default_sla()
    simulator = _make_augmented_simulator()
    engine = MeasurementEngine(simulator)
    points: list[OfflineMethodPoint] = []

    for method in methods:
        if method == "ours":
            trainer = OfflineConfigurationTrainer(
                simulator=simulator, sla=sla, traffic=1, config=offline_training_config(scale)
            )
            policy = trainer.run().policy
            best_config = policy.best_config
        elif method.startswith("gp-"):
            acquisition = method.split("-", 1)[1]
            optimizer = GPConfigurationOptimizer(
                environment=simulator,
                sla=sla,
                traffic=1,
                config=GPOptimizerConfig(
                    iterations=scale.stage2_iterations,
                    initial_random=scale.stage2_initial_random,
                    candidate_pool=scale.stage2_candidate_pool,
                    acquisition=acquisition,
                    measurement_duration_s=scale.measurement_duration_s,
                    seed=1,
                ),
            )
            run = optimizer.run()
            best = run.best_feasible()
            best_config = (
                best.to_slice_config() if best is not None else run.history[-1].to_slice_config()
            )
        elif method == "dlda":
            dlda = DLDA(
                simulator=simulator,
                sla=sla,
                traffic=1,
                config=DLDAConfig(
                    grid_points_per_dim=scale.dlda_grid_points,
                    selection_pool=scale.dlda_selection_pool,
                    measurement_duration_s=scale.measurement_duration_s,
                    seed=2,
                ),
            )
            dlda.train_offline()
            best_config = dlda.best_offline_config()
        else:
            raise ValueError(f"unknown offline method {method!r}")

        qoe, usage = _evaluate_config(engine, best_config, sla, scale, seed=99)
        points.append(
            OfflineMethodPoint(
                method=method, qoe=qoe, resource_usage=usage, config=tuple(best_config.to_array())
            )
        )
    return points


# --------------------------------------------------------------------- Fig. 18
@dataclass
class ParetoAvailabilityResult:
    """Pareto boundary of QoE requirement vs resource usage per method (Fig. 18)."""

    availabilities: list[float]
    points: dict[str, list[OfflineMethodPoint]] = field(default_factory=dict)


def fig18_pareto_availability(
    scale: ExperimentScale | None = None,
    availabilities: tuple[float, ...] = (0.7, 0.8, 0.9),
    methods: tuple[str, ...] = ("ours", "gp-ei", "dlda"),
) -> ParetoAvailabilityResult:
    """Reproduce Fig. 18: Pareto boundary obtained by varying the availability ``E``."""
    scale = scale if scale is not None else get_scale()
    result = ParetoAvailabilityResult(availabilities=list(availabilities))
    for method in methods:
        result.points[method] = []
        for availability in availabilities:
            sla = default_sla(availability=availability)
            point = fig17_offline_comparison(scale=scale, sla=sla, methods=(method,))[0]
            result.points[method].append(point)
    return result


# --------------------------------------------------------------------- Fig. 19
@dataclass
class ThresholdSweepResult:
    """Average resource usage under different latency thresholds ``Y`` (Fig. 19)."""

    thresholds_ms: list[float]
    usage: dict[str, list[float]] = field(default_factory=dict)
    qoe: dict[str, list[float]] = field(default_factory=dict)


def fig19_threshold_sweep(
    scale: ExperimentScale | None = None,
    thresholds_ms: tuple[float, ...] = (300.0, 400.0, 500.0),
    methods: tuple[str, ...] = ("ours", "dlda"),
) -> ThresholdSweepResult:
    """Reproduce Fig. 19: resource usage of the best policies under looser thresholds."""
    scale = scale if scale is not None else get_scale()
    result = ThresholdSweepResult(thresholds_ms=list(thresholds_ms))
    for method in methods:
        result.usage[method] = []
        result.qoe[method] = []
        for threshold in thresholds_ms:
            sla = default_sla(threshold_ms=threshold)
            point = fig17_offline_comparison(scale=scale, sla=sla, methods=(method,))[0]
            result.usage[method].append(point.resource_usage)
            result.qoe[method].append(point.qoe)
    return result
