"""Telemetry: the online collection ``D_r`` and per-iteration performance logs.

Stage 1 needs a collection of slice performance samples measured on the real
network under the currently deployed configuration (``D_r`` in Eq. 1); the
paper stresses that this should impose minimal collection effort, e.g. by
logging what the deployed method already achieves.  Stage 3 additionally logs
the per-iteration resource usage and QoE so the regret metrics and the
training-progress figures can be produced.  Both records can be saved to and
loaded from JSON (the artifact uses pickle; JSON keeps the files readable).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.sim.config import SliceConfig

__all__ = ["OnlineCollection", "IterationRecord", "PerformanceLog"]


class OnlineCollection:
    """Accumulates latency samples measured on the real network (``D_r``)."""

    def __init__(self, samples=None) -> None:
        self._samples: list[float] = []
        if samples is not None:
            self.extend(samples)

    def extend(self, latencies) -> None:
        """Add a batch of latency samples (non-finite values are dropped)."""
        arr = np.asarray(latencies, dtype=float).ravel()
        self._samples.extend(float(v) for v in arr[np.isfinite(arr)])

    def samples(self) -> np.ndarray:
        """All collected samples as an array."""
        return np.asarray(self._samples, dtype=float)

    def __len__(self) -> int:
        """Number of latency samples collected."""
        return len(self._samples)

    def __bool__(self) -> bool:
        """Whether any samples have been collected."""
        return bool(self._samples)

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Write the collection to a JSON file."""
        Path(path).write_text(json.dumps({"latencies_ms": self._samples}))

    @classmethod
    def load(cls, path) -> "OnlineCollection":
        """Read a collection previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls(payload["latencies_ms"])


@dataclass(frozen=True)
class IterationRecord:
    """One learning iteration: the action taken and what it achieved."""

    iteration: int
    config: tuple[float, ...]
    resource_usage: float
    qoe: float
    mean_latency_ms: float
    stage: str = "online"

    def to_slice_config(self) -> SliceConfig:
        """Rebuild the :class:`SliceConfig` of this iteration."""
        return SliceConfig.from_array(np.asarray(self.config))


class PerformanceLog:
    """Ordered log of :class:`IterationRecord` entries with JSON persistence."""

    def __init__(self) -> None:
        self._records: list[IterationRecord] = []

    def record(
        self,
        iteration: int,
        config: SliceConfig,
        resource_usage: float,
        qoe: float,
        mean_latency_ms: float,
        stage: str = "online",
    ) -> IterationRecord:
        """Append one iteration record and return it."""
        entry = IterationRecord(
            iteration=int(iteration),
            config=tuple(float(v) for v in config.to_array()),
            resource_usage=float(resource_usage),
            qoe=float(qoe),
            mean_latency_ms=float(mean_latency_ms),
            stage=stage,
        )
        self._records.append(entry)
        return entry

    @property
    def records(self) -> tuple[IterationRecord, ...]:
        """All records in insertion order."""
        return tuple(self._records)

    def __len__(self) -> int:
        """Number of logged iteration records."""
        return len(self._records)

    def usages(self) -> np.ndarray:
        """Resource usage of every iteration, in order."""
        return np.array([r.resource_usage for r in self._records], dtype=float)

    def qoes(self) -> np.ndarray:
        """QoE of every iteration, in order."""
        return np.array([r.qoe for r in self._records], dtype=float)

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Write the log to a JSON file."""
        Path(path).write_text(json.dumps([asdict(r) for r in self._records]))

    @classmethod
    def load(cls, path) -> "PerformanceLog":
        """Read a log previously written by :meth:`save`."""
        log = cls()
        for item in json.loads(Path(path).read_text()):
            item["config"] = tuple(item["config"])
            log._records.append(IterationRecord(**item))
        return log
