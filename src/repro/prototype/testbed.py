"""Real-network testbed substitute.

:class:`RealNetwork` stands in for the paper's OpenAirInterface/USRP
prototype.  It exposes the exact same measurement API as
:class:`~repro.sim.network.NetworkSimulator` (``run``/``collect_latencies``)
but is driven by a *hidden* ground-truth parameterisation plus un-modelled
effects, so that:

* the default (original) simulator shows a clear discrepancy against it
  (Table 1, Figs. 2–4),
* stage 1 can reduce — but not eliminate — that discrepancy by searching the
  7 simulation parameters (Table 4, Figs. 8–15), and
* stage 3 still has a residual sim-to-real QoE difference to learn online
  (Figs. 20–26).

Every measurement is routed through the end-to-end orchestrator so the
applied (quantised, clamped) configuration history is available, exactly as
``system.py`` logs it in the paper's artifact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.prototype.domain_managers import EndToEndOrchestrator
from repro.sim.config import SliceConfig
from repro.sim.imperfections import Imperfections
from repro.sim.multislice import MultiSliceResult, ResourceBudget, SliceRun, run_contended
from repro.sim.network import NetworkSimulator, SimulationResult
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.protocol import MeasurementRequest

__all__ = ["RealNetwork", "default_ground_truth", "default_imperfections"]


def default_ground_truth() -> SimulationParameters:
    """Hidden ground-truth parameters of the real network.

    Chosen in the neighbourhood of the best parameters the paper's search
    recovers (Table 4): slightly higher reference loss than the NS-3 default,
    a much better eNB noise figure, extra transport bandwidth and delay, and
    small extra compute/loading times.
    """
    return SimulationParameters(
        baseline_loss=38.9,
        enb_noise_figure=2.0,
        ue_noise_figure=9.2,
        backhaul_bw=4.0,
        backhaul_delay=8.0,
        compute_time=10.0,
        loading_time=14.0,
    )


def default_imperfections() -> Imperfections:
    """Un-modelled effects of the real network (not expressible by Table 3).

    These produce the paper's observations that the system is slightly worse
    than the simulator in most metrics (Table 1), that the discrepancy grows
    with traffic (Fig. 3) and that it is uneven across configurations (Fig. 4).
    """
    return Imperfections(
        fading_std_db=2.0,
        deep_fade_probability=0.02,
        deep_fade_db=8.0,
        compute_jitter_scale=1.6,
        compute_slowdown=1.08,
        spike_probability=0.03,
        spike_ms_range=(40.0, 220.0),
        ul_rate_derate=0.88,
        dl_rate_derate=0.96,
        error_floor_scale=2.2,
        per_frame_overhead_ms=10.0,
        per_traffic_overhead_ms=18.0,
    )


class RealNetwork:
    """The "system" side of the sim-to-real gap.

    Parameters
    ----------
    scenario:
        Workload/environment description shared with the simulator.
    ground_truth:
        Hidden simulation parameters driving the real network.  Callers
        performing experiments should *not* pass these to the learning
        stages — they are what stage 1 tries to recover.
    imperfections:
        Un-modelled effects (see :func:`default_imperfections`).
    seed:
        Base random seed of the testbed.
    isolation:
        Whether slice isolation is enforced (used by the Fig. 11 experiment).
    """

    def __init__(
        self,
        scenario: Scenario | None = None,
        ground_truth: SimulationParameters | None = None,
        imperfections: Imperfections | None = None,
        seed: int = 1,
        isolation: bool = True,
    ) -> None:
        self.scenario = scenario if scenario is not None else Scenario()
        self._ground_truth = ground_truth if ground_truth is not None else default_ground_truth()
        self._imperfections = (
            imperfections if imperfections is not None else default_imperfections()
        )
        self.seed = int(seed)
        self.isolation = isolation
        self.orchestrator = EndToEndOrchestrator()
        self._engine = NetworkSimulator(
            params=self._ground_truth,
            scenario=self.scenario,
            imperfections=self._imperfections,
            seed=self.seed,
            isolation=isolation,
        )
        self.measurement_count = 0

    # ----------------------------------------------------------------- access
    @property
    def applied_history(self):
        """Configurations applied so far (after domain-manager quantisation)."""
        return self.orchestrator.history

    def with_scenario(self, scenario: Scenario) -> "RealNetwork":
        """A copy of the testbed under a different scenario (same hidden truth)."""
        return RealNetwork(
            scenario=scenario,
            ground_truth=self._ground_truth,
            imperfections=self._imperfections,
            seed=self.seed,
            isolation=self.isolation,
        )

    @property
    def imperfections(self) -> Imperfections:
        """The testbed's un-modelled effects (storm windows degrade these)."""
        return self._imperfections

    def with_imperfections(self, imperfections: Imperfections) -> "RealNetwork":
        """A copy of the testbed under different un-modelled effects.

        The hook :class:`~repro.sim.faults.FaultedEnvironment` uses to apply
        storm-window degradation.  The copy *shares* this testbed's
        orchestrator so the applied-configuration history keeps accumulating
        in one place while the storm rages.
        """
        network = RealNetwork(
            scenario=self.scenario,
            ground_truth=self._ground_truth,
            imperfections=imperfections,
            seed=self.seed,
            isolation=self.isolation,
        )
        network.orchestrator = self.orchestrator
        return network

    def fingerprint(self) -> tuple:
        """Content identity of the testbed (Environment protocol).

        Note: engine batches against the testbed are cache-keyed on the
        *resolved* inner simulator's fingerprint (see :meth:`prepare_batch`),
        which is equivalent content — this method exists for protocol
        conformance and direct fingerprint comparisons.
        """
        return ("real",) + self._engine.fingerprint()

    # ------------------------------------------------------------ engine hook
    def prepare_batch(
        self, requests: Sequence["MeasurementRequest"]
    ) -> tuple[NetworkSimulator, list["MeasurementRequest"]]:
        """Resolve engine requests into pure simulator runs.

        Each requested configuration is applied through the domain managers
        in the calling process — exactly as :meth:`measure` does — so the
        quantised/clamped configuration history stays correct even when the
        measurements themselves are dispatched to worker processes or served
        from the engine's cache.  Unseeded requests fall back to the
        measurement counter, matching the direct :meth:`measure` path.
        """
        prepared = []
        for request in requests:
            record = self.orchestrator.apply(request.config)
            self.measurement_count += 1
            seed = request.seed if request.seed is not None else self.measurement_count
            prepared.append(request.replace(config=record.applied, seed=seed))
        return self._engine, prepared

    # ----------------------------------------------------------- measurements
    def measure(
        self,
        config: SliceConfig,
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> SimulationResult:
        """Apply ``config`` through the domain managers and measure the slice."""
        record = self.orchestrator.apply(config)
        self.measurement_count += 1
        if seed is None:
            seed = self.measurement_count
        return self._engine.run(record.applied, traffic=traffic, duration=duration, seed=seed)

    # ``run`` is provided as an alias so RealNetwork and NetworkSimulator are
    # interchangeable for the learning stages and baselines.
    run = measure

    def collect_latencies(
        self,
        config: SliceConfig,
        traffic: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Measure and return only the latency collection (builds ``D_r``)."""
        return self.measure(config, traffic=traffic, duration=duration, seed=seed).latencies_ms

    def measure_slices(
        self,
        runs: "list[SliceRun] | tuple[SliceRun, ...]",
        budget: ResourceBudget | None = None,
        duration: float | None = None,
        engine=None,
    ) -> MultiSliceResult:
        """Measure several slices concurrently under shared-resource contention.

        The testbed counterpart of
        :meth:`repro.sim.network.NetworkSimulator.run_slices`: requested
        configurations are scaled onto ``budget`` first, then every
        contended configuration is routed through the domain managers (the
        engine invokes :meth:`prepare_batch` in the calling process), so the
        applied history records the quantised per-slice allocations and the
        measurements dispatch as one engine batch.
        """
        return run_contended(self, runs, budget=budget, duration=duration, engine=engine)
