"""Slice lifecycle management: SLAs, admission and background users.

A slice tenant signs a service-level agreement specifying the latency
threshold ``Y`` and the availability ``E`` (the minimum probability that the
threshold is met, Eq. 6).  The slice manager admits/removes slices on the
real network, attaches background users for the isolation experiment of
Fig. 11, and measures admitted slices against their SLAs — one at a time
(:meth:`SliceManager.measure_slice`) or all concurrently under
shared-resource contention (:meth:`SliceManager.measure_all`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.qoe import qoe_from_latencies
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.multislice import MultiSliceResult, ResourceBudget, SliceRun
from repro.sim.scenario import Scenario

__all__ = ["SLA", "NetworkSlice", "SliceManager"]


@dataclass(frozen=True)
class SLA:
    """Service-level agreement of one slice.

    Attributes
    ----------
    latency_threshold_ms:
        Performance threshold ``Y``: a frame meets the SLA if its end-to-end
        latency is at or below this value (the paper uses 300 ms by default).
    availability:
        Required probability ``E`` that the threshold is met (0.9 by default).
    """

    latency_threshold_ms: float = 300.0
    availability: float = 0.9

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.latency_threshold_ms <= 0:
            raise ValueError("latency_threshold_ms must be positive")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")

    def is_satisfied_by(self, qoe: float) -> bool:
        """Whether a measured QoE value meets the agreed availability."""
        return qoe >= self.availability


@dataclass
class NetworkSlice:
    """An admitted end-to-end slice: its SLA and current configuration.

    ``scenario`` optionally carries the slice's own workload description
    (frame sizes, compute times...) so heterogeneous slices — e.g. the
    catalog's eMBB/URLLC/mMTC classes — keep their physics when admitted on
    one shared network; ``None`` falls back to the network's scenario
    (the single-workload behaviour of the paper's prototype).
    """

    name: str
    sla: SLA
    config: SliceConfig = field(default_factory=SliceConfig)
    traffic: int = 1
    scenario: Scenario | None = None

    def qoe(self, latencies) -> float:
        """QoE of a latency collection against this slice's SLA threshold."""
        return qoe_from_latencies(latencies, self.sla.latency_threshold_ms)


class SliceManager:
    """Admits slices on the real network and measures them against their SLAs."""

    def __init__(self, network: RealNetwork) -> None:
        self.network = network
        self._slices: dict[str, NetworkSlice] = {}
        self._background_users = 0

    # --------------------------------------------------------------- lifecycle
    def admit(self, slice_: NetworkSlice) -> None:
        """Admit a new slice; raises if a slice with the same name exists."""
        if slice_.name in self._slices:
            raise ValueError(f"slice {slice_.name!r} already admitted")
        self._slices[slice_.name] = slice_

    def remove(self, name: str) -> NetworkSlice:
        """Remove a slice by name and return it."""
        if name not in self._slices:
            raise KeyError(f"no slice named {name!r}")
        return self._slices.pop(name)

    def get(self, name: str) -> NetworkSlice:
        """Look up an admitted slice by name."""
        if name not in self._slices:
            raise KeyError(f"no slice named {name!r}")
        return self._slices[name]

    @property
    def slices(self) -> tuple[NetworkSlice, ...]:
        """All currently admitted slices."""
        return tuple(self._slices.values())

    # ------------------------------------------------------- background users
    def attach_background_users(self, count: int) -> None:
        """Attach ``count`` best-effort users outside any slice (Fig. 11)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._background_users = count

    @property
    def background_users(self) -> int:
        """Number of currently attached background users."""
        return self._background_users

    # ------------------------------------------------------------ measurement
    def configure(self, name: str, config: SliceConfig) -> None:
        """Update the stored configuration of an admitted slice."""
        self.get(name).config = config

    def measure_slice(self, name: str, duration: float | None = None, seed: int | None = None):
        """Measure one slice under its stored configuration and traffic.

        Returns ``(result, qoe, sla_met)`` where ``result`` is the full
        :class:`~repro.sim.network.SimulationResult`.
        """
        slice_ = self.get(name)
        scenario = self._slice_scenario(slice_)
        network = self.network.with_scenario(scenario)
        result = network.measure(slice_.config, duration=duration, seed=seed)
        qoe = result.qoe(slice_.sla.latency_threshold_ms)
        return result, qoe, slice_.sla.is_satisfied_by(qoe)

    def measure_all(
        self,
        budget: ResourceBudget | None = None,
        duration: float | None = None,
        seed: int | None = None,
        engine=None,
    ) -> MultiSliceResult:
        """Measure every admitted slice concurrently with resource contention.

        Each slice contributes one :class:`~repro.sim.multislice.SliceRun`
        under its own traffic (plus the currently attached background
        users); the requested configurations are scaled onto ``budget`` and
        all measurements dispatch as one
        :class:`~repro.engine.engine.MeasurementEngine` batch — see
        :meth:`repro.prototype.testbed.RealNetwork.measure_slices`.  Slices
        are measured in admission order; per-slice seeds derive from ``seed``
        when given so rounds are reproducible.
        """
        if not self._slices:
            raise ValueError("no slices admitted; admit() at least one before measure_all()")
        runs = [
            SliceRun(
                name=slice_.name,
                config=slice_.config,
                scenario=self._slice_scenario(slice_),
                sla=slice_.sla,
                seed=None if seed is None else seed + index,
            )
            for index, slice_ in enumerate(self._slices.values())
        ]
        return self.network.measure_slices(runs, budget=budget, duration=duration, engine=engine)

    def _slice_scenario(self, slice_: NetworkSlice) -> Scenario:
        """The measurement scenario: the slice's own (or the network's) workload, at its traffic, with current background users."""
        base = slice_.scenario if slice_.scenario is not None else self.network.scenario
        return base.replace(traffic=slice_.traffic, extra_users=self._background_users)
