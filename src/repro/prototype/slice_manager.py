"""Slice lifecycle management: SLAs, admission and background users.

A slice tenant signs a service-level agreement specifying the latency
threshold ``Y`` and the availability ``E`` (the minimum probability that the
threshold is met, Eq. 6).  The slice manager admits/removes slices on the
real network, attaches background users for the isolation experiment of
Fig. 11, and measures the QoE of an admitted slice against its SLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.qoe import qoe_from_latencies
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig

__all__ = ["SLA", "NetworkSlice", "SliceManager"]


@dataclass(frozen=True)
class SLA:
    """Service-level agreement of one slice.

    Attributes
    ----------
    latency_threshold_ms:
        Performance threshold ``Y``: a frame meets the SLA if its end-to-end
        latency is at or below this value (the paper uses 300 ms by default).
    availability:
        Required probability ``E`` that the threshold is met (0.9 by default).
    """

    latency_threshold_ms: float = 300.0
    availability: float = 0.9

    def __post_init__(self) -> None:
        if self.latency_threshold_ms <= 0:
            raise ValueError("latency_threshold_ms must be positive")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")

    def is_satisfied_by(self, qoe: float) -> bool:
        """Whether a measured QoE value meets the agreed availability."""
        return qoe >= self.availability


@dataclass
class NetworkSlice:
    """An admitted end-to-end slice: its SLA and current configuration."""

    name: str
    sla: SLA
    config: SliceConfig = field(default_factory=SliceConfig)
    traffic: int = 1

    def qoe(self, latencies) -> float:
        """QoE of a latency collection against this slice's SLA threshold."""
        return qoe_from_latencies(latencies, self.sla.latency_threshold_ms)


class SliceManager:
    """Admits slices on the real network and measures them against their SLAs."""

    def __init__(self, network: RealNetwork) -> None:
        self.network = network
        self._slices: dict[str, NetworkSlice] = {}
        self._background_users = 0

    # --------------------------------------------------------------- lifecycle
    def admit(self, slice_: NetworkSlice) -> None:
        """Admit a new slice; raises if a slice with the same name exists."""
        if slice_.name in self._slices:
            raise ValueError(f"slice {slice_.name!r} already admitted")
        self._slices[slice_.name] = slice_

    def remove(self, name: str) -> NetworkSlice:
        """Remove a slice by name and return it."""
        if name not in self._slices:
            raise KeyError(f"no slice named {name!r}")
        return self._slices.pop(name)

    def get(self, name: str) -> NetworkSlice:
        """Look up an admitted slice by name."""
        if name not in self._slices:
            raise KeyError(f"no slice named {name!r}")
        return self._slices[name]

    @property
    def slices(self) -> tuple[NetworkSlice, ...]:
        """All currently admitted slices."""
        return tuple(self._slices.values())

    # ------------------------------------------------------- background users
    def attach_background_users(self, count: int) -> None:
        """Attach ``count`` best-effort users outside any slice (Fig. 11)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._background_users = count

    @property
    def background_users(self) -> int:
        """Number of currently attached background users."""
        return self._background_users

    # ------------------------------------------------------------ measurement
    def configure(self, name: str, config: SliceConfig) -> None:
        """Update the stored configuration of an admitted slice."""
        self.get(name).config = config

    def measure_slice(self, name: str, duration: float | None = None, seed: int | None = None):
        """Measure one slice under its stored configuration and traffic.

        Returns ``(result, qoe, sla_met)`` where ``result`` is the full
        :class:`~repro.sim.network.SimulationResult`.
        """
        slice_ = self.get(name)
        scenario = self.network.scenario.replace(
            traffic=slice_.traffic, extra_users=self._background_users
        )
        network = self.network.with_scenario(scenario)
        result = network.measure(slice_.config, duration=duration, seed=seed)
        qoe = result.qoe(slice_.sla.latency_threshold_ms)
        return result, qoe, slice_.sla.is_satisfied_by(qoe)
