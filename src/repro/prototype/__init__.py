"""Real-network prototype substitute and slice-management plane.

The paper's evaluation runs on an OpenAirInterface/USRP LTE testbed with an
OpenDayLight transport switch, OpenAir-CN core and Docker edge servers.  That
hardware is not available here, so :class:`~repro.prototype.testbed.RealNetwork`
plays its role: the same discrete-event engine as the offline simulator, but
driven by *hidden* ground-truth parameters and un-modelled effects that create
a genuine sim-to-real discrepancy for Atlas to reduce (stage 1) and learn
online (stage 3).

The package also provides the management plane of the prototype: per-domain
managers that validate and apply the cross-domain configuration
(:mod:`~repro.prototype.domain_managers`), the slice/SLA bookkeeping
(:mod:`~repro.prototype.slice_manager`) and the telemetry used to build the
online collection ``D_r`` (:mod:`~repro.prototype.telemetry`).
"""

from repro.prototype.domain_managers import (
    CoreDomainManager,
    EdgeDomainManager,
    EndToEndOrchestrator,
    RadioDomainManager,
    TransportDomainManager,
)
from repro.prototype.slice_manager import SLA, NetworkSlice, SliceManager
from repro.prototype.telemetry import OnlineCollection, PerformanceLog
from repro.prototype.testbed import RealNetwork, default_ground_truth, default_imperfections

__all__ = [
    "RealNetwork",
    "default_ground_truth",
    "default_imperfections",
    "RadioDomainManager",
    "TransportDomainManager",
    "CoreDomainManager",
    "EdgeDomainManager",
    "EndToEndOrchestrator",
    "SLA",
    "NetworkSlice",
    "SliceManager",
    "OnlineCollection",
    "PerformanceLog",
]
