"""Per-domain configuration managers of the end-to-end prototype.

The paper develops four domain managers (Sec. 7.1): a radio manager built on
FlexRAN (per-slice PRB allocation and MCS offsets), a transport manager using
OpenFlow meters, a core manager mapping users to per-slice SPGW-U containers
and an edge manager driving ``docker update --cpus``.  Here each manager
validates its slice of the 6-dimensional configuration, quantises it to what
the underlying knob actually supports (integer PRBs, discrete meter rates,
Docker CPU quotas) and records the applied values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.config import (
    CONFIG_BOUNDS,
    MIN_DOWNLINK_PRBS,
    MIN_UPLINK_PRBS,
    SliceConfig,
)

__all__ = [
    "AppliedConfiguration",
    "RadioDomainManager",
    "TransportDomainManager",
    "CoreDomainManager",
    "EdgeDomainManager",
    "EndToEndOrchestrator",
]


@dataclass(frozen=True)
class AppliedConfiguration:
    """The cross-domain configuration actually enforced by the managers."""

    requested: SliceConfig
    applied: SliceConfig
    notes: tuple[str, ...] = ()


class RadioDomainManager:
    """FlexRAN-style PRB allocation and MCS-offset control."""

    total_prbs = 50

    def apply(self, config: SliceConfig) -> tuple[dict[str, float], list[str]]:
        """Quantise and clamp the radio part of ``config``; return applied values and notes."""
        notes: list[str] = []
        ul = int(round(np.clip(config.bandwidth_ul, 0, self.total_prbs)))
        dl = int(round(np.clip(config.bandwidth_dl, 0, self.total_prbs)))
        if ul < MIN_UPLINK_PRBS:
            notes.append(f"uplink PRBs raised to the connectivity minimum ({MIN_UPLINK_PRBS})")
            ul = MIN_UPLINK_PRBS
        if dl < MIN_DOWNLINK_PRBS:
            notes.append(f"downlink PRBs raised to the connectivity minimum ({MIN_DOWNLINK_PRBS})")
            dl = MIN_DOWNLINK_PRBS
        mcs_ul = int(round(np.clip(config.mcs_offset_ul, *CONFIG_BOUNDS["mcs_offset_ul"])))
        mcs_dl = int(round(np.clip(config.mcs_offset_dl, *CONFIG_BOUNDS["mcs_offset_dl"])))
        return (
            {
                "bandwidth_ul": float(ul),
                "bandwidth_dl": float(dl),
                "mcs_offset_ul": float(mcs_ul),
                "mcs_offset_dl": float(mcs_dl),
            },
            notes,
        )


class TransportDomainManager:
    """OpenFlow-meter bandwidth control on the SDN switch."""

    #: Granularity (Mbps) of the switch's meter bands.
    meter_granularity_mbps = 0.1

    def apply(self, config: SliceConfig) -> tuple[dict[str, float], list[str]]:
        """Quantise the backhaul bandwidth to the meter granularity."""
        lo, hi = CONFIG_BOUNDS["backhaul_bw"]
        rate = float(np.clip(config.backhaul_bw, lo, hi))
        quantised = round(rate / self.meter_granularity_mbps) * self.meter_granularity_mbps
        notes: list[str] = []
        if abs(quantised - rate) > 1e-9:
            notes.append(f"backhaul bandwidth quantised to {quantised:.1f} Mbps")
        return {"backhaul_bw": quantised}, notes


class CoreDomainManager:
    """Maps slice users to their dedicated SPGW-U container.

    The data-plane mapping has no tunable quantity in the configuration
    vector; applying it simply records that the slice's SPGW-U is in place.
    """

    def apply(self, config: SliceConfig) -> tuple[dict[str, float], list[str]]:
        """The core domain carries no tunable knob; it validates and acknowledges."""
        return {}, []


class EdgeDomainManager:
    """Docker ``--cpus`` control of the slice's edge server."""

    #: Docker accepts CPU quotas in units of 1% of a core.
    cpu_granularity = 0.01
    minimum_cpu_ratio = 0.05

    def apply(self, config: SliceConfig) -> tuple[dict[str, float], list[str]]:
        """Quantise and floor the CPU ratio the container will receive."""
        notes: list[str] = []
        ratio = float(np.clip(config.cpu_ratio, 0.0, 1.0))
        if ratio < self.minimum_cpu_ratio:
            notes.append(f"cpu ratio raised to the container minimum ({self.minimum_cpu_ratio})")
            ratio = self.minimum_cpu_ratio
        quantised = round(ratio / self.cpu_granularity) * self.cpu_granularity
        return {"cpu_ratio": float(quantised)}, notes


@dataclass
class EndToEndOrchestrator:
    """Applies one configuration action across all four domains atomically."""

    radio: RadioDomainManager = field(default_factory=RadioDomainManager)
    transport: TransportDomainManager = field(default_factory=TransportDomainManager)
    core: CoreDomainManager = field(default_factory=CoreDomainManager)
    edge: EdgeDomainManager = field(default_factory=EdgeDomainManager)
    history: list[AppliedConfiguration] = field(default_factory=list)

    def apply(self, config: SliceConfig) -> AppliedConfiguration:
        """Validate/quantise ``config`` in every domain and record the result."""
        applied_values: dict[str, float] = {}
        notes: list[str] = []
        for manager in (self.radio, self.transport, self.core, self.edge):
            values, manager_notes = manager.apply(config)
            applied_values.update(values)
            notes.extend(manager_notes)
        applied = config.replace(**applied_values)
        record = AppliedConfiguration(requested=config, applied=applied, notes=tuple(notes))
        self.history.append(record)
        return record
