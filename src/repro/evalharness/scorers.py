"""Independent scorers turning replay measurements into gated metrics.

Each scorer is a small pure function over the runner's collected
measurements, built on the :mod:`repro.metrics` modules the benchmarks
already trust — so the eval harness measures exactly what the paper's
artifacts measure, just catalog-wide:

* :func:`score_latency_fidelity` — tail latency (p95) of the deployed
  configuration on the real network, the replay analogue of the Fig. 2/9
  CDF fidelity checks;
* :func:`score_sla_violation_rate` — fraction of replay measurements whose
  QoE missed the SLA availability (Eq. 6 applied per measurement);
* :func:`score_regrets` — hindsight average usage/QoE regrets over the
  replay's usage ladder (Eqs. 10–11 / Table 5 style);
* :func:`score_sim_to_real_kl` — symmetric KL divergence between pooled
  simulator and real-network latency collections (Eq. 1 / Fig. 4 style).

Degenerate inputs are defined, never warnings: empty latency collections
score ``nan`` (which no envelope contains, so the gate flags them), empty
QoE/usage series score ``0.0`` — a replay that recorded nothing violated
nothing, and the fidelity/KL scorers are the ones that catch silent runs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.kl import symmetric_kl_divergence
from repro.metrics.regret import RegretTracker
from repro.metrics.stats import summarize_latencies

__all__ = [
    "score_latency_fidelity",
    "score_sla_violation_rate",
    "score_regrets",
    "score_sim_to_real_kl",
]


def score_latency_fidelity(real_latencies) -> float:
    """p95 latency (ms) of the pooled real-network deployed-config samples.

    Returns ``nan`` when no frame was delivered — no finite envelope
    contains ``nan``, so a silently-empty replay fails the gate rather than
    sneaking through with a vacuous pass.
    """
    return float(summarize_latencies(real_latencies).p95)


def score_sla_violation_rate(qoes: Sequence[float], availability: float) -> float:
    """Fraction of replay measurements whose QoE missed ``availability``.

    An empty series scores ``0.0`` (a documented degenerate value: nothing
    measured, nothing violated — emptiness itself is caught by the fidelity
    scorer).
    """
    arr = np.asarray(list(qoes), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr < availability))


def score_regrets(
    usages: Sequence[float], qoes: Sequence[float], availability: float | None
) -> tuple[float, float]:
    """Hindsight ``(avg_usage_regret, avg_qoe_regret)`` over the replay series.

    The optimum is the best *feasible* replay point (lowest usage meeting
    ``availability``; highest QoE when nothing is feasible), exactly the
    hindsight rule :class:`repro.metrics.regret.RegretTracker` applies to
    the online stage.  Empty series score ``(0.0, 0.0)``.
    """
    usages = list(usages)
    qoes = list(qoes)
    if len(usages) != len(qoes):
        raise ValueError(f"got {len(usages)} usages but {len(qoes)} qoes")
    if not usages:
        return 0.0, 0.0
    tracker = RegretTracker(qoe_requirement=availability)
    for usage, qoe in zip(usages, qoes):
        tracker.record(usage, qoe)
    tracker.set_optimum_from_best()
    return tracker.average_usage_regret(), tracker.average_qoe_regret()


def score_sim_to_real_kl(sim_latencies, real_latencies, bins: int = 20) -> float:
    """Symmetric KL divergence between pooled sim and real latency samples.

    Returns ``nan`` when either collection is empty (the divergence is
    undefined, and ``nan`` fails every envelope), instead of propagating
    the estimator's ``ValueError`` into the runner.
    """
    sim_arr = np.asarray(sim_latencies, dtype=float).ravel()
    real_arr = np.asarray(real_latencies, dtype=float).ravel()
    if sim_arr[np.isfinite(sim_arr)].size == 0 or real_arr[np.isfinite(real_arr)].size == 0:
        return float("nan")
    return float(symmetric_kl_divergence(real_arr, sim_arr, bins=bins))
