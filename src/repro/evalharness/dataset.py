"""The curated replay dataset: eval cases, envelopes, and the registry file.

The evaluation harness runs a checked-in registry of **replay cases** —
one or more per scenario-catalog entry — each pinning a scenario, the seeds
to replay, the replay shape (measurement count, duration, the usage ladder
of configuration variants) and the **expected metric envelopes** the gate
enforces.  The registry lives in ``cases.yaml`` next to this module; its
format is a restricted YAML subset parsed by :func:`parse_cases_yaml` so
the harness works without a YAML dependency (the container images this
repo targets ship NumPy/SciPy only).

Restricted YAML subset
    * two-space indentation, mappings as ``key: value``;
    * lists of mappings as ``- key: value`` items (continuation lines
      indented two further spaces);
    * inline scalar lists as ``[a, b, c]``;
    * scalars: integers, floats, booleans (``true``/``false``), bare or
      quoted strings;
    * full-line ``#`` comments and blank lines are ignored.

Top-level keys are ``defaults`` (field values shared by every case) and
``cases`` (the list of case mappings).  Every case must name a registered
catalog scenario, carry at least one seed, and bound at least one metric;
see ``docs/evaluation.md`` for the schema and envelope-derivation rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable

__all__ = [
    "DEFAULT_CASES_PATH",
    "Envelope",
    "EvalCase",
    "EvalDatasetError",
    "load_cases",
    "parse_cases_yaml",
]

#: The checked-in registry of replay cases, shipped with the package.
DEFAULT_CASES_PATH = Path(__file__).resolve().parent / "cases.yaml"

#: Metric names scorers may produce and envelopes may bound (see scorers.py).
METRIC_NAMES: tuple[str, ...] = (
    "latency_p95_ms",
    "sla_violation_rate",
    "avg_usage_regret",
    "avg_qoe_regret",
    "sim_real_symmetric_kl",
)


class EvalDatasetError(ValueError):
    """Raised when the case registry is malformed or inconsistent."""


@dataclass(frozen=True)
class Envelope:
    """Inclusive ``[lo, hi]`` bound one scored metric must stay within."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        """Validate that the bound is a well-ordered finite interval."""
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise EvalDatasetError(f"envelope bounds must be finite, got [{self.lo}, {self.hi}]")
        if self.lo > self.hi:
            raise EvalDatasetError(f"envelope lo {self.lo} exceeds hi {self.hi}")

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the envelope (NaN never does)."""
        return math.isfinite(value) and self.lo <= value <= self.hi

    def as_dict(self) -> dict[str, float]:
        """The bound as a plain dictionary (for the report)."""
        return {"lo": self.lo, "hi": self.hi}


@dataclass(frozen=True)
class EvalCase:
    """One replay case: scenario × seeds × replay shape × expected envelopes.

    Attributes
    ----------
    group:
        Report/run-layout grouping (``static``, ``dynamic``,
        ``multislice`` ... free-form).
    scenario:
        Name of a registered scenario-catalog entry.
    seeds:
        Base seeds to replay; every seed produces one run directory and one
        per-seed metric vector, and the case-level metric is the mean.
    measurements:
        Repeated measurements per configuration variant (trace-driven
        scenarios replay ``traffic_at(step)`` for ``step`` in this range).
    duration_s:
        Simulated seconds per measurement.
    usage_ladder:
        Scale factors applied to the deployed configuration's contended
        dimensions; the resulting variants give the regret scorers a
        usage/QoE series to rank.  Must include ``1.0`` (the deployed
        configuration anchors the fidelity and KL scorers).
    envelopes:
        Metric name → :class:`Envelope`; the gate fails the case when a
        scored value leaves its envelope.
    """

    group: str
    scenario: str
    seeds: tuple[int, ...] = (0, 1)
    measurements: int = 3
    duration_s: float = 6.0
    usage_ladder: tuple[float, ...] = (0.85, 1.0, 1.25)
    envelopes: dict[str, Envelope] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate the replay shape and the envelope names."""
        if not self.group or not self.scenario:
            raise EvalDatasetError("case group and scenario must be non-empty")
        if not self.seeds:
            raise EvalDatasetError(f"case {self.case_id!r} must replay at least one seed")
        if self.measurements < 1:
            raise EvalDatasetError(f"case {self.case_id!r} needs measurements >= 1")
        if self.duration_s <= 0:
            raise EvalDatasetError(f"case {self.case_id!r} needs a positive duration_s")
        if not self.usage_ladder or 1.0 not in self.usage_ladder:
            raise EvalDatasetError(
                f"case {self.case_id!r} usage_ladder must include the deployed factor 1.0"
            )
        if not self.envelopes:
            raise EvalDatasetError(f"case {self.case_id!r} must bound at least one metric")
        for name in self.envelopes:
            if name not in METRIC_NAMES:
                raise EvalDatasetError(
                    f"case {self.case_id!r} bounds unknown metric {name!r}; "
                    f"known metrics: {', '.join(METRIC_NAMES)}"
                )

    @property
    def case_id(self) -> str:
        """Stable identifier used in the run layout and the report."""
        return f"{self.group}/{self.scenario}"

    def replace(self, **changes) -> "EvalCase":
        """Return a copy with some fields replaced (tests derive variants)."""
        return replace(self, **changes)


# ------------------------------------------------------------ mini-YAML parse
def _parse_scalar(token: str):
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part) for part in inner.split(",")]
    if len(token) >= 2 and token[0] in "'\"" and token[-1] == token[0]:
        return token[1:-1]
    if token in ("true", "True"):
        return True
    if token in ("false", "False"):
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _significant_lines(text: str) -> list[tuple[int, str]]:
    lines: list[tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        leading = raw[: len(raw) - len(raw.lstrip())]
        indent = len(raw) - len(raw.lstrip(" "))
        if "\t" in leading or indent % 2:
            raise EvalDatasetError(
                f"cases.yaml line {number}: indentation must be an even number of spaces"
            )
        lines.append((indent, stripped))
    return lines


def _parse_block(lines: list[tuple[int, str]], start: int, indent: int):
    """Parse one mapping or list starting at ``start`` with exactly ``indent``."""
    if start >= len(lines) or lines[start][0] != indent:
        raise EvalDatasetError(f"cases.yaml: expected a block indented {indent} spaces")
    if lines[start][1].startswith("- "):
        return _parse_list(lines, start, indent)
    return _parse_mapping(lines, start, indent)


def _parse_mapping(lines: list[tuple[int, str]], start: int, indent: int):
    mapping: dict = {}
    index = start
    while index < len(lines) and lines[index][0] == indent:
        content = lines[index][1]
        if content.startswith("- "):
            break
        if ":" not in content:
            raise EvalDatasetError(f"cases.yaml: expected 'key: value', got {content!r}")
        key, _, value = content.partition(":")
        key = key.strip()
        if key in mapping:
            raise EvalDatasetError(f"cases.yaml: duplicate key {key!r}")
        value = value.strip()
        if value:
            mapping[key] = _parse_scalar(value)
            index += 1
        else:
            nested, index = _parse_block(lines, index + 1, indent + 2)
            mapping[key] = nested
    return mapping, index


def _parse_list(lines: list[tuple[int, str]], start: int, indent: int):
    items: list = []
    index = start
    while index < len(lines) and lines[index][0] == indent and lines[index][1].startswith("- "):
        head = lines[index][1][2:].strip()
        if ":" not in head:
            items.append(_parse_scalar(head))
            index += 1
            continue
        # A mapping item: re-feed the head line as if indented two deeper,
        # then absorb the continuation lines at that depth.
        item_lines = [(indent + 2, head)]
        index += 1
        while index < len(lines) and lines[index][0] >= indent + 2:
            item_lines.append(lines[index])
            index += 1
        item, consumed = _parse_mapping(item_lines, 0, indent + 2)
        if consumed != len(item_lines):
            raise EvalDatasetError("cases.yaml: malformed list item (inconsistent indentation)")
        items.append(item)
    return items, index


def parse_cases_yaml(text: str) -> dict:
    """Parse the restricted YAML subset of the case registry into a dict."""
    lines = _significant_lines(text)
    if not lines:
        return {}
    document, consumed = _parse_mapping(lines, 0, 0)
    if consumed != len(lines):
        indent, content = lines[consumed]
        raise EvalDatasetError(
            f"cases.yaml: unexpected content {content!r} at indentation {indent}"
        )
    return document


# ------------------------------------------------------------------- loading
_CASE_FIELDS = {
    "group",
    "scenario",
    "seeds",
    "measurements",
    "duration_s",
    "usage_ladder",
    "envelopes",
}


def _build_case(raw: dict, defaults: dict) -> EvalCase:
    merged = {**defaults, **raw}
    unknown = set(merged) - _CASE_FIELDS
    if unknown:
        raise EvalDatasetError(
            f"case {merged.get('group')}/{merged.get('scenario')}: "
            f"unknown fields {sorted(unknown)}"
        )
    for required in ("group", "scenario", "envelopes"):
        if required not in merged:
            raise EvalDatasetError(f"case is missing required field {required!r}: {raw}")
    envelopes_raw = merged["envelopes"]
    if not isinstance(envelopes_raw, dict):
        raise EvalDatasetError(f"case envelopes must be a mapping, got {envelopes_raw!r}")
    envelopes = {}
    for name, bound in envelopes_raw.items():
        if not (isinstance(bound, list) and len(bound) == 2):
            raise EvalDatasetError(
                f"envelope {name!r} must be a two-element [lo, hi] list, got {bound!r}"
            )
        envelopes[name] = Envelope(lo=float(bound[0]), hi=float(bound[1]))
    return EvalCase(
        group=str(merged["group"]),
        scenario=str(merged["scenario"]),
        seeds=tuple(int(seed) for seed in merged.get("seeds", EvalCase.seeds)),
        measurements=int(merged.get("measurements", EvalCase.measurements)),
        duration_s=float(merged.get("duration_s", EvalCase.duration_s)),
        usage_ladder=tuple(
            float(factor) for factor in merged.get("usage_ladder", EvalCase.usage_ladder)
        ),
        envelopes=envelopes,
    )


def load_cases(
    path: str | Path | None = None,
    group: str | None = None,
    scenario: str | None = None,
) -> tuple[EvalCase, ...]:
    """Load (and optionally filter) the replay-case registry.

    Parameters
    ----------
    path:
        Registry file; defaults to the checked-in :data:`DEFAULT_CASES_PATH`.
    group, scenario:
        Optional exact-match filters.  Filtering that matches nothing raises
        :class:`EvalDatasetError` naming what *is* registered, so a typo in
        ``--group``/``--scenario`` fails loudly instead of silently gating
        nothing.
    """
    registry_path = Path(path) if path is not None else DEFAULT_CASES_PATH
    document = parse_cases_yaml(registry_path.read_text())
    defaults = document.get("defaults", {})
    raw_cases = document.get("cases", [])
    if not isinstance(raw_cases, list) or not raw_cases:
        raise EvalDatasetError(f"{registry_path}: registry must define a non-empty 'cases' list")
    cases = [_build_case(raw, defaults) for raw in raw_cases]
    seen: set[str] = set()
    for case in cases:
        if case.case_id in seen:
            raise EvalDatasetError(f"duplicate case id {case.case_id!r} in {registry_path}")
        seen.add(case.case_id)
    if group is not None:
        cases = [case for case in cases if case.group == group]
        if not cases:
            raise EvalDatasetError(
                f"no cases in group {group!r}; registered groups: "
                f"{', '.join(sorted({c.group for c in _all_cases(registry_path)}))}"
            )
    if scenario is not None:
        cases = [case for case in cases if case.scenario == scenario]
        if not cases:
            raise EvalDatasetError(
                f"no cases for scenario {scenario!r}; covered scenarios: "
                f"{', '.join(sorted({c.scenario for c in _all_cases(registry_path)}))}"
            )
    return tuple(cases)


def _all_cases(path: Path) -> Iterable[EvalCase]:
    document = parse_cases_yaml(path.read_text())
    defaults = document.get("defaults", {})
    return [_build_case(raw, defaults) for raw in document.get("cases", [])]
