"""The ``atlas-eval/1`` evaluation report: build, canonicalise, render.

``EVAL_report.json`` is the machine-readable product of an eval run, the
catalog-wide analogue of the engine benchmark's ``BENCH_engine.json``.  Two
determinism contracts hang off its serialisation, so this module is careful
about bytes:

* **Rerun identity** — the same cases, seeds and executor produce a
  byte-identical report file.  Nothing time- or host-dependent is recorded
  (no timestamps, no hostnames, no absolute paths), keys are sorted, and
  non-finite floats are sanitised to ``null``.  The one sanctioned
  exception is ``provenance.costs`` — the service-mode cost ledger
  (wall time, cache-tier hit split), present only when the caller passes
  one and deliberately *outside* the canonical section.
* **Cross-executor identity** — the ``results`` section (every metric of
  every case and seed) is byte-identical under the ``serial``,
  ``vectorized``, ``sharded`` and ``auto`` executor kinds, because the
  runner pins all measurements to one numerics family.  The *executor* that
  produced each run is still recorded — in ``provenance`` and per seed run —
  so those fields live outside the canonical section.
  :func:`canonical_results_bytes` extracts exactly the bytes the
  cross-executor tests and the determinism gate compare.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.evalharness.runner import CaseResult, _sanitize

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "canonical_results_bytes",
    "render_report",
    "write_report",
]

#: Schema identifier of ``EVAL_report.json``.
REPORT_SCHEMA = "atlas-eval/1"


def build_report(
    case_results: Sequence[CaseResult],
    executor: str | None = None,
    gate: dict | None = None,
    latency_bias_ms: float = 0.0,
    costs: dict | None = None,
) -> dict:
    """Assemble the ``atlas-eval/1`` report from scored case results.

    ``gate`` is the gate outcome payload (:meth:`GateResult.as_dict`);
    ``None`` means the gate was not run (report-only mode).  ``executor``
    is the *requested* kind; each seed run additionally records the kind
    that actually executed it (``auto`` resolves per batch).  ``costs``
    is an ``atlas-costs/1`` ledger payload recorded under
    ``provenance.costs`` (service mode); it carries wall-clock fields and
    is the only part of the report allowed to differ between reruns.
    """
    results = []
    for case_result in case_results:
        case = case_result.case
        metrics = case_result.metrics
        verdicts = case_result.envelope_verdicts()
        results.append(
            {
                "case": case.case_id,
                "group": case.group,
                "scenario": case.scenario,
                "seeds": [
                    {"seed": run.seed, "metrics": dict(run.metrics)}
                    for run in case_result.seed_results
                ],
                "metrics": metrics,
                "envelopes": {
                    name: {
                        "lo": envelope.lo,
                        "hi": envelope.hi,
                        "value": metrics.get(name, float("nan")),
                        "pass": verdicts[name],
                    }
                    for name, envelope in sorted(case.envelopes.items())
                },
                "passed": case_result.passed,
                "replay": {
                    "seeds": list(case.seeds),
                    "measurements": case.measurements,
                    "duration_s": case.duration_s,
                    "usage_ladder": list(case.usage_ladder),
                },
            }
        )
    passed_cases = sum(1 for entry in results if entry["passed"])
    report = {
        "schema": REPORT_SCHEMA,
        "provenance": {
            "executor": {
                "requested": executor if executor is not None else "auto",
                "runs": sorted(
                    {
                        run.executor["resolved"]
                        for case_result in case_results
                        for run in case_result.seed_results
                    }
                ),
            },
            "latency_bias_ms": latency_bias_ms,
            "costs": costs,
        },
        "summary": {
            "cases": len(results),
            "runs": sum(len(entry["seeds"]) for entry in results),
            "cases_passed": passed_cases,
            "cases_failed": len(results) - passed_cases,
            "gate_passed": None if gate is None else gate["passed"],
        },
        "results": results,
        "gate": gate,
    }
    return _sanitize(report)


def canonical_results_bytes(report: dict) -> bytes:
    """The executor-independent bytes of a report: its ``results`` section.

    These bytes are identical across executor kinds and across reruns; the
    surrounding provenance/gate sections may legitimately differ (they name
    the executor and the gate's own rerun outcomes).
    """
    return json.dumps(report["results"], sort_keys=True, separators=(",", ":")).encode()


def write_report(report: dict, path: str | Path) -> Path:
    """Write the report deterministically (sorted keys, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict) -> str:
    """Human-readable summary of a report (the CLI's non-``--json`` output)."""
    lines = [f"atlas eval report ({report['schema']})"]
    summary = report["summary"]
    lines.append(
        f"  cases: {summary['cases']}  runs: {summary['runs']}  "
        f"passed: {summary['cases_passed']}  failed: {summary['cases_failed']}"
    )
    for entry in report["results"]:
        status = "PASS" if entry["passed"] else "FAIL"
        lines.append(f"  [{status}] {entry['case']}")
        for name, envelope in entry["envelopes"].items():
            mark = "ok" if envelope["pass"] else "BREACH"
            value = envelope["value"]
            shown = "nan" if value is None else f"{value:.6g}"
            lines.append(
                f"      {name}: {shown} in [{envelope['lo']:.6g}, {envelope['hi']:.6g}] {mark}"
            )
    gate = report.get("gate")
    if gate is None:
        lines.append("  gate: not run")
    elif gate["passed"]:
        lines.append(f"  gate: PASS ({', '.join(gate['checks'])})")
    else:
        lines.append("  gate: FAIL")
        for failure in gate["failures"]:
            lines.append(f"    - [{failure['kind']}] {failure['message']}")
    return "\n".join(lines)
