"""Deterministic replay runner producing the structured eval run layout.

One :class:`EvalRunner` executes replay cases from the curated dataset
(:mod:`repro.evalharness.dataset`) and materialises, per case and seed::

    <out>/<group>/<scenario>/seed=<S>/result.json    # per-seed metrics
    <out>/<group>/<scenario>/seed=<S>/events.jsonl   # one line per measurement

Determinism is the load-bearing property — the regression gate compares
runs byte for byte — and rests on three decisions:

* every environment is wrapped in
  :class:`~repro.engine.replay.VectorReplayEnvironment`, pinning all
  measurements to the vectorized numerics family so the results are
  *identical* under the ``serial``, ``vectorized``, ``sharded`` and
  ``auto`` executor kinds (the per-lane seed-stream contract of
  :mod:`repro.sim.batch`);
* every measurement carries an explicit request seed derived from its
  ``(variant, step[, slice])`` coordinates by a fixed scheme, so results
  never depend on batch composition, executor scheduling or cache state
  (engines run with ``cache=False`` by default; a runner opened with a
  persistent ``store`` instead shares one private store-backed cache
  across its engines — safe *because* of the explicit seeds and the
  replay pin, which make a cached entry byte-identical to recomputation);
* environments are constructed fresh per ``(case, seed)``, so stateful
  hooks (the real network's domain-manager history) always start from the
  same state.

All measurements of one environment go out as a **single**
:class:`~repro.engine.engine.MeasurementEngine` batch, so the replay
parallelises/vectorizes exactly like production traffic; multi-slice cases
batch every contended round through
:func:`repro.sim.multislice.run_contended_batch`.

Fault injection
    ``latency_bias_ms`` adds a constant offset to every *real-network*
    latency sample before scoring.  It exists solely so the gate's
    mutation smoke tests can prove the gate detects a biased system — it
    must stay ``0.0`` in any real evaluation, and a nonzero value is
    recorded in every result payload.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.engine.engine import MeasurementEngine
from repro.engine.protocol import MeasurementRequest
from repro.engine.replay import VectorReplayEnvironment
from repro.evalharness.dataset import EvalCase
from repro.evalharness.scorers import (
    score_latency_fidelity,
    score_regrets,
    score_sim_to_real_kl,
    score_sla_violation_rate,
)
from repro.metrics.qoe import qoe_from_latencies
from repro.metrics.stats import summarize_latencies
from repro.scenarios import ScenarioSpec, get_scenario
from repro.sim.config import CONFIG_BOUNDS, SliceConfig
from repro.sim.faults import FaultedEnvironment, FaultSchedule, telemetry_lost
from repro.sim.multislice import CONTENDED_DIMENSIONS, SliceRun, run_contended_batch

__all__ = [
    "CaseResult",
    "EvalRunner",
    "SeedRunResult",
    "canonical_metrics_bytes",
    "scaled_config",
]

#: Schema identifier of every per-seed ``result.json``.
RUN_SCHEMA = "atlas-eval-run/1"

#: Fixed request-seed scheme: seeds must be explicit (never ``None``) so a
#: measurement's result is a pure function of its coordinates, not of batch
#: composition or engine auto-seed state.
_SEED_STRIDE_VARIANT = 100_003
_SEED_STRIDE_SLICE = 131


def _request_seed(variant: int, step: int, slice_index: int = 0) -> int:
    return _SEED_STRIDE_VARIANT * (variant + 1) + step + _SEED_STRIDE_SLICE * slice_index


def scaled_config(config: SliceConfig, factor: float) -> SliceConfig:
    """Scale a configuration's contended dimensions by ``factor`` (clamped).

    MCS offsets are per-slice modulation choices, not pooled resources, and
    pass through untouched — mirroring
    :data:`repro.sim.multislice.CONTENDED_DIMENSIONS`.
    """
    changes = {}
    for name in CONTENDED_DIMENSIONS:
        lo, hi = CONFIG_BOUNDS[name]
        changes[name] = float(np.clip(getattr(config, name) * factor, lo, hi))
    return config.replace(**changes)


def _sanitize(value):
    """Replace non-finite floats with ``None`` recursively (strict JSON)."""
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def canonical_metrics_bytes(metrics: dict[str, float]) -> bytes:
    """Canonical byte serialisation of one metric vector.

    The determinism gate and the cross-executor tests compare these bytes;
    non-finite values map to ``null`` so the serialisation is strict JSON.
    """
    return json.dumps(_sanitize(dict(metrics)), sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class SeedRunResult:
    """Metrics and event log of one ``(case, seed)`` replay."""

    case_id: str
    group: str
    scenario: str
    seed: int
    executor: dict[str, str]
    metrics: dict[str, float]
    events: tuple[dict, ...]
    latency_bias_ms: float = 0.0

    def result_payload(self) -> dict:
        """The ``result.json`` payload of this run (sanitised, sorted keys)."""
        return _sanitize(
            {
                "schema": RUN_SCHEMA,
                "case": self.case_id,
                "group": self.group,
                "scenario": self.scenario,
                "seed": self.seed,
                "executor": self.executor,
                "latency_bias_ms": self.latency_bias_ms,
                "metrics": dict(self.metrics),
            }
        )


@dataclass
class CaseResult:
    """One case's replay outcome: per-seed runs plus the aggregate metrics."""

    case: EvalCase
    seed_results: list[SeedRunResult] = field(default_factory=list)

    @property
    def metrics(self) -> dict[str, float]:
        """Case-level metric vector: the mean across seeds, metric by metric."""
        names = list(self.seed_results[0].metrics) if self.seed_results else []
        return {
            name: float(np.mean([run.metrics[name] for run in self.seed_results]))
            for name in names
        }

    def envelope_verdicts(self) -> dict[str, bool]:
        """Per-envelope pass/fail of the aggregate metrics."""
        metrics = self.metrics
        return {
            name: envelope.contains(metrics.get(name, float("nan")))
            for name, envelope in self.case.envelopes.items()
        }

    @property
    def passed(self) -> bool:
        """Whether every envelope contains its aggregate metric."""
        return all(self.envelope_verdicts().values())


class EvalRunner:
    """Execute replay cases deterministically and write the run layout.

    Parameters
    ----------
    executor:
        Engine executor kind (``auto``/``serial``/``vectorized``/
        ``sharded``/...); ``None`` defers to ``ATLAS_ENGINE_EXECUTOR`` and
        the ``auto`` default.  Thanks to the numerics pin the choice cannot
        change any metric value — it only changes how batches are
        scheduled — and it is recorded in every ``result.json``.
    out_dir:
        Root of the run layout; ``None`` keeps results in memory only.
    max_workers:
        Worker bound for the parallel executor kinds.
    latency_bias_ms:
        Fault-injection offset added to real-network latencies before
        scoring (gate self-tests only — see the module docstring).
    store:
        Optional persistent :class:`~repro.service.store.ResultStore`.
        When given, every engine shares one private
        :class:`~repro.engine.cache.MeasurementCache` backed by the store,
        so a repeated eval case is served from disk instead of recomputed
        (the service-mode warm path).  The cache is exposed as ``.cache``
        for cost accounting; metrics are unchanged by construction.
    tracer:
        Optional :class:`~repro.service.tracer.Tracer`; each ``(case,
        seed)`` replay is recorded as an ``eval.seed`` span.
    """

    def __init__(
        self,
        executor: str | None = None,
        out_dir: str | Path | None = None,
        max_workers: int | None = None,
        latency_bias_ms: float = 0.0,
        store=None,
        tracer=None,
    ) -> None:
        self.executor = executor
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.max_workers = max_workers
        self.latency_bias_ms = float(latency_bias_ms)
        self.store = store
        if store is not None:
            from repro.engine.cache import MeasurementCache

            self.cache: "MeasurementCache | None" = MeasurementCache(store=store)
        else:
            self.cache = None
        if tracer is None:
            from repro.service.tracer import NullTracer

            tracer = NullTracer()
        self.tracer = tracer

    # ----------------------------------------------------------------- engine
    def _engine(self, environment) -> MeasurementEngine:
        return MeasurementEngine(
            VectorReplayEnvironment(environment),
            executor=self.executor,
            max_workers=self.max_workers,
            cache=self.cache if self.cache is not None else False,
        )

    def _executor_record(self, engine: MeasurementEngine) -> dict[str, str]:
        record = {"kind": engine.executor_kind}
        resolved = getattr(engine.executor, "last_choice", None)
        record["resolved"] = resolved if resolved is not None else engine.executor_kind
        return record

    def _bias(self, latencies: np.ndarray) -> np.ndarray:
        if self.latency_bias_ms == 0.0:
            return latencies
        return np.asarray(latencies, dtype=float) + self.latency_bias_ms

    def _run_faulted_steps(
        self,
        engine: MeasurementEngine,
        requests: list[MeasurementRequest],
        case: EvalCase,
        schedule: FaultSchedule,
    ) -> list:
        """Replay ``requests`` one measurement step at a time under ``schedule``.

        Requests arrive variant-major (``vi * case.measurements + step``);
        results come back in the same flat order so the event loop stays
        oblivious to the per-step batching.  The replay pin stays outermost
        so every executor kind sees the vectorized numerics family.
        """
        base = engine.environment.inner
        n_variants = len(requests) // case.measurements
        results: list = [None] * len(requests)
        for step in range(case.measurements):
            engine.environment = VectorReplayEnvironment(
                FaultedEnvironment(base, schedule, step)
            )
            batch = [requests[vi * case.measurements + step] for vi in range(n_variants)]
            step_results = engine.run_batch(batch)
            for vi, result in enumerate(step_results):
                results[vi * case.measurements + step] = result
        return results

    # ------------------------------------------------------------------- runs
    def run_seed(self, case: EvalCase, seed: int) -> SeedRunResult:
        """Replay one case under one base seed (fresh environments, no cache)."""
        spec = get_scenario(case.scenario)
        with self.tracer.span("eval.seed", case=case.case_id, seed=seed):
            if spec.is_multislice:
                metrics, events, executor = self._run_multislice_seed(case, spec, seed)
            else:
                metrics, events, executor = self._run_single_seed(case, spec, seed)
        return SeedRunResult(
            case_id=case.case_id,
            group=case.group,
            scenario=case.scenario,
            seed=seed,
            executor=executor,
            metrics=metrics,
            events=tuple(events),
            latency_bias_ms=self.latency_bias_ms,
        )

    def _run_single_seed(
        self, case: EvalCase, spec: ScenarioSpec, seed: int
    ) -> tuple[dict[str, float], list[dict], dict[str, str]]:
        workload = spec.primary
        threshold = workload.sla.latency_threshold_ms
        availability = workload.sla.availability
        levels = [workload.traffic_at(step) for step in range(case.measurements)]
        variants = [scaled_config(workload.deployed_config, f) for f in case.usage_ladder]
        requests = [
            MeasurementRequest(
                config=variants[vi],
                traffic=levels[step],
                duration=case.duration_s,
                seed=_request_seed(vi, step),
            )
            for vi in range(len(variants))
            for step in range(case.measurements)
        ]

        sim_engine = self._engine(workload.make_simulator(seed=seed))
        real_engine = self._engine(workload.make_real_network(seed=seed + 1))
        if spec.faults is None:
            sim_results = sim_engine.run_batch(list(requests))
            real_results = real_engine.run_batch(list(requests))
        else:
            # Hostile replay: faults are step-indexed, so each step goes out
            # as its own batch under a step-pinned FaultedEnvironment.  The
            # simulator side sees the world faults (drift, storms) but not
            # the measurement-plane dropouts — telemetry loss happens on the
            # path back from the real network.
            sim_results = self._run_faulted_steps(
                sim_engine, requests, case, spec.faults.without_dropouts()
            )
            real_results = self._run_faulted_steps(
                real_engine, requests, case, spec.faults
            )
        executor = self._executor_record(real_engine)

        events: list[dict] = []
        deployed = case.usage_ladder.index(1.0)
        usages: list[float] = []
        qoes: list[float] = []
        violations: list[float] = []
        sim_pool: list[np.ndarray] = []
        real_pool: list[np.ndarray] = []
        for env_name, results in (("sim", sim_results), ("real", real_results)):
            index = 0
            for vi, factor in enumerate(case.usage_ladder):
                for step in range(case.measurements):
                    result = results[index]
                    latencies = (
                        self._bias(result.latencies_ms)
                        if env_name == "real"
                        else result.latencies_ms
                    )
                    qoe = qoe_from_latencies(latencies, threshold)
                    summary = summarize_latencies(latencies)
                    if env_name == "real":
                        usages.append(variants[vi].resource_usage())
                        qoes.append(qoe)
                        violations.append(qoe)
                        if vi == deployed:
                            real_pool.append(latencies)
                    elif vi == deployed:
                        sim_pool.append(latencies)
                    event = {
                        "kind": "measurement",
                        "env": env_name,
                        "variant": vi,
                        "usage_factor": factor,
                        "step": step,
                        "traffic": levels[step],
                        "request_seed": _request_seed(vi, step),
                        "usage": variants[vi].resource_usage(),
                        "qoe": qoe,
                        "delivered": summary.count,
                        "mean_ms": summary.mean,
                        "p95_ms": summary.p95,
                    }
                    if spec.faults is not None:
                        # Hostile replays record what the fault plane did to
                        # this step: the traffic actually offered and whether
                        # the telemetry ever reached the controller.
                        event["effective_traffic"] = result.traffic
                        event["dropped"] = telemetry_lost(result)
                    events.append(event)
                    index += 1

        metrics = self._score(
            real_pool, sim_pool, usages, qoes, violations, availability
        )
        return metrics, events, executor

    def _run_multislice_seed(
        self, case: EvalCase, spec: ScenarioSpec, seed: int
    ) -> tuple[dict[str, float], list[dict], dict[str, str]]:
        # Multi-slice replay measures contended rounds: every (variant, step)
        # scales all requested slice configurations by the ladder factor and
        # resolves them against the spec's shared budget.  Traffic levels are
        # each slice's own scenario traffic (the catalog has no dynamic
        # multi-slice entries; traces would need per-round scenario overrides).
        rounds: list[list[SliceRun]] = []
        for vi, factor in enumerate(case.usage_ladder):
            for step in range(case.measurements):
                rounds.append(
                    [
                        SliceRun(
                            name=workload.name,
                            config=scaled_config(workload.deployed_config, factor),
                            scenario=workload.scenario,
                            sla=workload.sla,
                            seed=_request_seed(vi, step, slice_index),
                        )
                        for slice_index, workload in enumerate(spec.slices)
                    ]
                )

        sim_engine = self._engine(spec.primary.make_simulator(seed=seed))
        real_engine = self._engine(spec.primary.make_real_network(seed=seed + 1))
        sim_rounds = run_contended_batch(
            sim_engine.environment,
            rounds,
            budget=spec.budget,
            duration=case.duration_s,
            engine=sim_engine,
        )
        real_rounds = run_contended_batch(
            real_engine.environment,
            rounds,
            budget=spec.budget,
            duration=case.duration_s,
            engine=real_engine,
        )
        executor = self._executor_record(real_engine)

        events: list[dict] = []
        deployed = case.usage_ladder.index(1.0)
        usages: list[float] = []
        qoes: list[float] = []
        violation_pairs: list[tuple[float, float]] = []
        sim_pool: list[np.ndarray] = []
        real_pool: list[np.ndarray] = []
        for env_name, env_rounds in (("sim", sim_rounds), ("real", real_rounds)):
            round_index = 0
            for vi, factor in enumerate(case.usage_ladder):
                for step in range(case.measurements):
                    contended = env_rounds[round_index]
                    for slice_index, run in enumerate(contended.runs):
                        result = contended.results[slice_index]
                        latencies = (
                            self._bias(result.latencies_ms)
                            if env_name == "real"
                            else result.latencies_ms
                        )
                        qoe = qoe_from_latencies(latencies, run.sla.latency_threshold_ms)
                        summary = summarize_latencies(latencies)
                        allocated_usage = contended.allocated[slice_index].resource_usage()
                        if env_name == "real":
                            usages.append(allocated_usage)
                            qoes.append(qoe)
                            violation_pairs.append((qoe, run.sla.availability))
                            if vi == deployed and slice_index == 0:
                                real_pool.append(latencies)
                        elif vi == deployed and slice_index == 0:
                            sim_pool.append(latencies)
                        events.append(
                            {
                                "kind": "measurement",
                                "env": env_name,
                                "variant": vi,
                                "usage_factor": factor,
                                "step": step,
                                "slice": run.name,
                                "request_seed": run.seed,
                                "usage": allocated_usage,
                                "qoe": qoe,
                                "delivered": summary.count,
                                "mean_ms": summary.mean,
                                "p95_ms": summary.p95,
                            }
                        )
                    round_index += 1

        # Per-slice SLAs differ, so the violation rate is computed pairwise
        # rather than against one shared availability; the regret optimum
        # ranks all slices' points together (availability=None — every
        # recorded point is feasible).
        violation_rate = (
            float(np.mean([float(qoe < availability) for qoe, availability in violation_pairs]))
            if violation_pairs
            else 0.0
        )
        avg_usage_regret, avg_qoe_regret = score_regrets(usages, qoes, availability=None)
        metrics = {
            "latency_p95_ms": score_latency_fidelity(
                np.concatenate(real_pool) if real_pool else np.zeros(0)
            ),
            "sla_violation_rate": violation_rate,
            "avg_usage_regret": avg_usage_regret,
            "avg_qoe_regret": avg_qoe_regret,
            "sim_real_symmetric_kl": score_sim_to_real_kl(
                np.concatenate(sim_pool) if sim_pool else np.zeros(0),
                np.concatenate(real_pool) if real_pool else np.zeros(0),
            ),
        }
        return metrics, events, executor

    def _score(
        self,
        real_pool: list[np.ndarray],
        sim_pool: list[np.ndarray],
        usages: list[float],
        qoes: list[float],
        violations: list[float],
        availability: float,
    ) -> dict[str, float]:
        real_latencies = np.concatenate(real_pool) if real_pool else np.zeros(0)
        sim_latencies = np.concatenate(sim_pool) if sim_pool else np.zeros(0)
        avg_usage_regret, avg_qoe_regret = score_regrets(usages, qoes, availability)
        return {
            "latency_p95_ms": score_latency_fidelity(real_latencies),
            "sla_violation_rate": score_sla_violation_rate(violations, availability),
            "avg_usage_regret": avg_usage_regret,
            "avg_qoe_regret": avg_qoe_regret,
            "sim_real_symmetric_kl": score_sim_to_real_kl(sim_latencies, real_latencies),
        }

    # ------------------------------------------------------------------ layout
    def run_case(self, case: EvalCase) -> CaseResult:
        """Replay every seed of one case, writing its run directories."""
        result = CaseResult(case=case)
        for seed in case.seeds:
            seed_result = self.run_seed(case, seed)
            result.seed_results.append(seed_result)
            if self.out_dir is not None:
                self._write_seed_run(seed_result)
        return result

    def run_cases(self, cases) -> list[CaseResult]:
        """Replay a sequence of cases in order."""
        return [self.run_case(case) for case in cases]

    def _write_seed_run(self, seed_result: SeedRunResult) -> None:
        run_dir = (
            self.out_dir
            / seed_result.group
            / seed_result.scenario
            / f"seed={seed_result.seed}"
        )
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "result.json").write_text(
            json.dumps(seed_result.result_payload(), indent=2, sort_keys=True) + "\n"
        )
        with open(run_dir / "events.jsonl", "w") as handle:
            for event in seed_result.events:
                handle.write(json.dumps(_sanitize(event), sort_keys=True) + "\n")
