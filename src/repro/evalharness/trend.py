"""Cross-run trend tracking for eval reports: append, reload, flag drift.

``python -m repro eval --history <dir>`` appends one summary line per run
to ``<dir>/trend.jsonl`` (schema ``atlas-eval-trend/1``), so a directory of
eval runs accumulates a metric history without keeping full reports
around.  Each record carries the run index (the line count at append time —
deterministic, no timestamps), the report summary and the per-case
aggregate metric vector.

Drift detection compares each case metric against the *previous* run's
value: a change is flagged when it exceeds both an absolute floor (noise
from finite replay) and a relative band::

    |current - previous| > max(ABS_FLOOR, REL_BAND * |previous|)

Flagged drifts are advisory — the hard regression verdict stays with the
eval gate's envelopes — but they catch slow walks *inside* the envelope
that a per-run gate can never see.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "ABS_FLOOR",
    "REL_BAND",
    "TREND_SCHEMA",
    "append_trend",
    "detect_drift",
    "load_trend",
    "render_drift",
]

#: Schema identifier of every ``trend.jsonl`` record.
TREND_SCHEMA = "atlas-eval-trend/1"

#: Minimum absolute change that can count as drift (replay noise floor).
ABS_FLOOR = 0.05

#: Relative change band: drift must exceed this fraction of the old value.
REL_BAND = 0.25


def _trend_file(history_dir: str | Path) -> Path:
    return Path(history_dir) / "trend.jsonl"


def _record_from_report(report: dict, run: int) -> dict:
    return {
        "schema": TREND_SCHEMA,
        "run": run,
        "summary": dict(report["summary"]),
        "metrics": {
            entry["case"]: dict(entry["metrics"]) for entry in report["results"]
        },
    }


def load_trend(history_dir: str | Path) -> list[dict]:
    """Read every trend record, oldest first (torn trailing lines skipped)."""
    path = _trend_file(history_dir)
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn trailing line from an interrupted append
        if record.get("schema") == TREND_SCHEMA:
            records.append(record)
    return records


def detect_drift(previous: dict, current: dict) -> list[dict]:
    """Metric drifts between two consecutive trend records.

    Returns one entry per ``(case, metric)`` whose change exceeds the
    absolute floor *and* the relative band; cases or metrics present in
    only one record are ignored (coverage changes are not drift).
    """
    drifts = []
    for case_id, current_metrics in sorted(current.get("metrics", {}).items()):
        previous_metrics = previous.get("metrics", {}).get(case_id)
        if previous_metrics is None:
            continue
        for name, value in sorted(current_metrics.items()):
            old = previous_metrics.get(name)
            if old is None or value is None:
                continue
            delta = abs(float(value) - float(old))
            if delta > max(ABS_FLOOR, REL_BAND * abs(float(old))):
                drifts.append(
                    {
                        "case": case_id,
                        "metric": name,
                        "previous": float(old),
                        "current": float(value),
                        "delta": round(delta, 9),
                    }
                )
    return drifts


def append_trend(report: dict, history_dir: str | Path) -> dict:
    """Append one run's summary to the trend file and flag drift.

    Returns ``{"record": <appended record>, "drift": [<drift entries>]}``;
    drift is computed against the last record already in the file (empty
    list for the first run).  The history directory is created on demand.
    """
    history_dir = Path(history_dir)
    history_dir.mkdir(parents=True, exist_ok=True)
    existing = load_trend(history_dir)
    record = _record_from_report(report, run=len(existing))
    drift = detect_drift(existing[-1], record) if existing else []
    with open(_trend_file(history_dir), "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return {"record": record, "drift": drift}


def render_drift(drifts: list[dict]) -> str:
    """Human-readable drift lines (empty string when nothing drifted)."""
    if not drifts:
        return ""
    lines = [f"metric drift vs previous run ({len(drifts)} flagged):"]
    for entry in drifts:
        lines.append(
            f"  {entry['case']}.{entry['metric']}: "
            f"{entry['previous']:.6g} -> {entry['current']:.6g} "
            f"(|delta| {entry['delta']:.6g})"
        )
    return "\n".join(lines)
