"""The regression gate: envelope, determinism and coverage checks.

The gate turns an eval run into a binary CI verdict.  Three checks, each
producing actionable :class:`GateFailure` records rather than bare
booleans:

``envelope``
    Every case's aggregate metrics must sit inside the expected envelopes
    checked into ``cases.yaml``.  A breach names the case, the metric, the
    measured value and the expected bounds — enough to decide whether the
    change is a regression or the envelope needs recalibrating.

``determinism``
    The first seed of every case is replayed a second time through a fresh
    runner and must reproduce byte-identical canonical metrics
    (:func:`repro.evalharness.runner.canonical_metrics_bytes`).  Because
    the runner pins every measurement to the vectorized numerics family,
    this holds across *all* executor kinds — any mismatch means real
    numerics drift (seed-stream coupling, batch-composition leakage, a
    nondeterministic reduction), exactly the class of bug the sharded
    executor work made cheapest to introduce.

``coverage``
    Every scenario registered in :mod:`repro.scenarios.catalog` must have
    at least one eval case with envelopes.  Adding a scenario without eval
    coverage fails CI with a message naming the scenario and the file to
    extend.  (Skipped automatically when the run was filtered to a subset
    of cases.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.evalharness.dataset import EvalCase
from repro.evalharness.runner import CaseResult, EvalRunner, canonical_metrics_bytes
from repro.scenarios import scenario_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "GateFailure",
    "GateResult",
    "check_coverage",
    "check_determinism",
    "check_envelopes",
    "run_gate",
]


@dataclass(frozen=True)
class GateFailure:
    """One actionable gate failure: which check, which case, what happened."""

    kind: str
    case: str
    message: str
    metric: str | None = None

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "case": self.case,
            "metric": self.metric,
            "message": self.message,
        }


@dataclass
class GateResult:
    """Outcome of a gate run: which checks ran and every failure found."""

    checks: list[str] = field(default_factory=list)
    failures: list[GateFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "passed": self.passed,
            "checks": list(self.checks),
            "failures": [failure.as_dict() for failure in self.failures],
        }


def check_envelopes(case_results: Sequence[CaseResult]) -> list[GateFailure]:
    """Flag every aggregate metric that escapes its expected envelope."""
    failures: list[GateFailure] = []
    for case_result in case_results:
        metrics = case_result.metrics
        for name, envelope in sorted(case_result.case.envelopes.items()):
            value = metrics.get(name, float("nan"))
            if not envelope.contains(value):
                failures.append(
                    GateFailure(
                        kind="envelope",
                        case=case_result.case.case_id,
                        metric=name,
                        message=(
                            f"{case_result.case.case_id}: {name}={value!r} outside "
                            f"expected envelope [{envelope.lo}, {envelope.hi}]"
                        ),
                    )
                )
    return failures


def check_determinism(
    runner: EvalRunner, case_results: Sequence[CaseResult]
) -> list[GateFailure]:
    """Replay the first seed of every case and demand byte-identical metrics.

    A fresh :class:`EvalRunner` (same executor choice, no output directory)
    reruns each case's first seed; the canonical metric bytes of the rerun
    must match the original run exactly.
    """
    rerunner = EvalRunner(
        executor=runner.executor,
        max_workers=runner.max_workers,
        latency_bias_ms=runner.latency_bias_ms,
    )
    failures: list[GateFailure] = []
    for case_result in case_results:
        if not case_result.seed_results:
            continue
        first = case_result.seed_results[0]
        replayed = rerunner.run_seed(case_result.case, first.seed)
        original_bytes = canonical_metrics_bytes(first.metrics)
        replayed_bytes = canonical_metrics_bytes(replayed.metrics)
        if original_bytes != replayed_bytes:
            failures.append(
                GateFailure(
                    kind="determinism",
                    case=case_result.case.case_id,
                    message=(
                        f"{case_result.case.case_id} seed={first.seed}: replay produced "
                        f"different metrics ({replayed_bytes.decode()} != "
                        f"{original_bytes.decode()}); the replay pipeline is no longer "
                        "deterministic"
                    ),
                )
            )
    return failures


def check_coverage(cases: Iterable[EvalCase]) -> list[GateFailure]:
    """Demand at least one eval case (with envelopes) per catalog scenario."""
    covered = {case.scenario for case in cases}
    failures: list[GateFailure] = []
    for name in scenario_names():
        if name not in covered:
            failures.append(
                GateFailure(
                    kind="coverage",
                    case=name,
                    message=(
                        f"catalog scenario {name!r} has no eval case; add one with "
                        "expected envelopes to src/repro/evalharness/cases.yaml "
                        "so the regression gate covers it"
                    ),
                )
            )
    return failures


def run_gate(
    runner: EvalRunner,
    case_results: Sequence[CaseResult],
    cases: Sequence[EvalCase] | None = None,
    determinism: bool = True,
    coverage: bool = True,
) -> GateResult:
    """Run every applicable check and collect the verdict.

    ``cases`` is the *full* loaded dataset for the coverage check; pass
    ``coverage=False`` when the run was filtered to a subset (coverage over
    a filtered dataset would always fail spuriously).  ``determinism=False``
    skips the rerun check (used by fast unit tests; the CLI always reruns).
    """
    result = GateResult()
    result.checks.append("envelope")
    result.failures.extend(check_envelopes(case_results))
    if determinism:
        result.checks.append("determinism")
        result.failures.extend(check_determinism(runner, case_results))
    if coverage and cases is not None:
        result.checks.append("coverage")
        result.failures.extend(check_coverage(cases))
    return result
