"""One-call orchestration: load cases, replay, score, gate, report.

:func:`evaluate` is the single entry point behind ``python -m repro eval``
and the integration tests: it loads the curated dataset (optionally
filtered), replays every case deterministically through an
:class:`~repro.evalharness.runner.EvalRunner`, runs the regression gate,
and assembles the ``atlas-eval/1`` report.

Filter semantics mirror the CLI: ``group``/``scenario`` narrow the replayed
cases but automatically *disable the coverage check* (a filtered run cannot
cover the catalog, and failing it for that would be noise); an unfiltered
run checks coverage against the full catalog.  ``seeds`` overrides every
case's seed list — handy for quick local runs — and is recorded in the
report's per-case replay block like any other case field.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.evalharness.dataset import EvalCase, load_cases
from repro.evalharness.gate import GateResult, run_gate
from repro.evalharness.report import build_report
from repro.evalharness.runner import CaseResult, EvalRunner

__all__ = ["evaluate"]


def evaluate(
    cases: Sequence[EvalCase] | None = None,
    cases_path: str | Path | None = None,
    group: str | None = None,
    scenario: str | None = None,
    seeds: Sequence[int] | None = None,
    executor: str | None = None,
    out_dir: str | Path | None = None,
    max_workers: int | None = None,
    latency_bias_ms: float = 0.0,
    determinism: bool = True,
    coverage: bool | None = None,
    store=None,
    tracer=None,
) -> tuple[dict, GateResult, list[CaseResult]]:
    """Run the full evaluation pipeline and return (report, gate, results).

    ``cases`` short-circuits dataset loading (tests hand in synthetic
    cases); otherwise the registry at ``cases_path`` (default: the
    checked-in ``cases.yaml``) is loaded with the given filters.
    ``coverage=None`` resolves to "check unless filtered or explicit
    cases were supplied".

    ``store`` attaches a persistent result store to the replay (see
    :class:`EvalRunner`), so repeated evaluations are served from disk;
    ``tracer`` streams per-seed spans.  Either being set also embeds a
    cost ledger (:class:`~repro.service.costs.CostLedger`) in the
    report's ``provenance.costs`` section — the only report section
    allowed to vary between reruns.
    """
    if cases is None:
        cases = load_cases(path=cases_path, group=group, scenario=scenario)
        if coverage is None:
            coverage = group is None and scenario is None
    elif coverage is None:
        coverage = False
    cases = list(cases)
    if seeds is not None:
        seeds = tuple(int(seed) for seed in seeds)
        cases = [case.replace(seeds=seeds) for case in cases]

    runner = EvalRunner(
        executor=executor,
        out_dir=out_dir,
        max_workers=max_workers,
        latency_bias_ms=latency_bias_ms,
        store=store,
        tracer=tracer,
    )
    ledger = None
    if store is not None or tracer is not None:
        from repro.service.costs import CostLedger

        ledger = CostLedger(cache=runner.cache, store=store)
    case_results = runner.run_cases(cases)
    # Close the ledger before the gate: the determinism check replays cases
    # through a fresh store-less runner, and its recomputation is a property
    # of the *check*, not a cost of serving this evaluation.
    costs = ledger.finish() if ledger is not None else None
    gate = run_gate(
        runner,
        case_results,
        cases=cases,
        determinism=determinism,
        coverage=coverage,
    )
    report = build_report(
        case_results,
        executor=executor,
        gate=gate.as_dict(),
        latency_bias_ms=latency_bias_ms,
        costs=costs,
    )
    return report, gate, case_results
