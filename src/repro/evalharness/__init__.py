"""Catalog-wide evaluation harness with a machine-readable regression gate.

The harness replays a curated dataset of scenario × seed cases through the
measurement engine, scores each run with the same :mod:`repro.metrics` the
paper's artifacts use, and gates the outcome against expected metric
envelopes checked into ``cases.yaml``:

* :mod:`repro.evalharness.dataset` — eval cases, envelopes, the registry
  file and its (dependency-free) parser;
* :mod:`repro.evalharness.runner` — the deterministic replay runner and
  the ``<out>/<group>/<scenario>/seed=<S>/`` run layout;
* :mod:`repro.evalharness.scorers` — latency fidelity, SLA-violation
  rate, hindsight regrets, sim-to-real symmetric KL;
* :mod:`repro.evalharness.report` — the ``atlas-eval/1`` report
  (``EVAL_report.json``);
* :mod:`repro.evalharness.gate` — envelope / determinism / coverage
  checks with actionable failures;
* :mod:`repro.evalharness.harness` — :func:`~repro.evalharness.harness.evaluate`,
  the one-call pipeline behind ``python -m repro eval``;
* :mod:`repro.evalharness.trend` — cross-run trend tracking
  (``python -m repro eval --history``) with metric-drift flagging.

See ``docs/evaluation.md`` for the dataset format, run layout and gate
criteria.
"""

from repro.evalharness.dataset import (
    DEFAULT_CASES_PATH,
    METRIC_NAMES,
    Envelope,
    EvalCase,
    EvalDatasetError,
    load_cases,
    parse_cases_yaml,
)
from repro.evalharness.gate import (
    GateFailure,
    GateResult,
    check_coverage,
    check_determinism,
    check_envelopes,
    run_gate,
)
from repro.evalharness.harness import evaluate
from repro.evalharness.report import (
    REPORT_SCHEMA,
    build_report,
    canonical_results_bytes,
    render_report,
    write_report,
)
from repro.evalharness.runner import (
    CaseResult,
    EvalRunner,
    SeedRunResult,
    canonical_metrics_bytes,
    scaled_config,
)
from repro.evalharness.trend import (
    TREND_SCHEMA,
    append_trend,
    detect_drift,
    load_trend,
    render_drift,
)

__all__ = [
    "DEFAULT_CASES_PATH",
    "METRIC_NAMES",
    "REPORT_SCHEMA",
    "CaseResult",
    "Envelope",
    "EvalCase",
    "EvalDatasetError",
    "EvalRunner",
    "GateFailure",
    "GateResult",
    "SeedRunResult",
    "TREND_SCHEMA",
    "append_trend",
    "build_report",
    "canonical_metrics_bytes",
    "canonical_results_bytes",
    "check_coverage",
    "check_determinism",
    "check_envelopes",
    "detect_drift",
    "evaluate",
    "load_cases",
    "load_trend",
    "parse_cases_yaml",
    "render_drift",
    "render_report",
    "run_gate",
    "scaled_config",
    "write_report",
]
