"""Shared result containers for the baseline learners.

All baselines record the same per-iteration quantities as Atlas' online
stage so that Figs. 20–21, Table 5 and the dynamic-traffic experiments can
compare them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.regret import RegretTracker
from repro.sim.config import SliceConfig

__all__ = ["BaselineIterationRecord", "BaselineResult"]


@dataclass(frozen=True)
class BaselineIterationRecord:
    """One environment query made by a baseline learner."""

    iteration: int
    config: tuple[float, ...]
    resource_usage: float
    qoe: float
    sla_met: bool

    def to_slice_config(self) -> SliceConfig:
        """Rebuild the configuration action of this record."""
        return SliceConfig.from_array(np.asarray(self.config))


@dataclass
class BaselineResult:
    """History and regret of one baseline run."""

    method: str
    history: list[BaselineIterationRecord] = field(default_factory=list)
    regret: RegretTracker = field(default_factory=RegretTracker)

    def usages(self) -> np.ndarray:
        """Resource usage of every iteration, in order."""
        return np.array([r.resource_usage for r in self.history], dtype=float)

    def qoes(self) -> np.ndarray:
        """QoE of every iteration, in order."""
        return np.array([r.qoe for r in self.history], dtype=float)

    def best_feasible(self) -> BaselineIterationRecord | None:
        """Lowest-usage record that met the SLA, or ``None``."""
        feasible = [r for r in self.history if r.sla_met]
        if not feasible:
            return None
        return min(feasible, key=lambda r: r.resource_usage)

    def average_usage_regret(self) -> float:
        """Average per-iteration resource-usage regret (Table 5)."""
        return self.regret.average_usage_regret()

    def average_qoe_regret(self) -> float:
        """Average per-iteration QoE regret (Table 5)."""
        return self.regret.average_qoe_regret()

    def sla_violation_rate(self) -> float:
        """Fraction of iterations that violated the SLA."""
        if not self.history:
            return 0.0
        return float(np.mean([not r.sla_met for r in self.history]))
