"""Shared result containers and bookkeeping for the baseline learners.

All baselines record the same per-iteration quantities as Atlas' online
stage so that Figs. 20–21, Table 5 and the dynamic-traffic experiments can
compare them uniformly.  :class:`GPBaselineBookkeeping` additionally shares
the measure-and-fold machinery of the GP-surrogate learners (GP-BO and
VirtualEdge) so their per-iteration semantics cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.regret import RegretTracker
from repro.sim.config import SliceConfig

__all__ = ["BaselineIterationRecord", "BaselineResult", "GPBaselineBookkeeping"]


@dataclass(frozen=True)
class BaselineIterationRecord:
    """One environment query made by a baseline learner."""

    iteration: int
    config: tuple[float, ...]
    resource_usage: float
    qoe: float
    sla_met: bool

    def to_slice_config(self) -> SliceConfig:
        """Rebuild the configuration action of this record."""
        return SliceConfig.from_array(np.asarray(self.config))


@dataclass
class BaselineResult:
    """History and regret of one baseline run."""

    method: str
    history: list[BaselineIterationRecord] = field(default_factory=list)
    regret: RegretTracker = field(default_factory=RegretTracker)

    def usages(self) -> np.ndarray:
        """Resource usage of every iteration, in order."""
        return np.array([r.resource_usage for r in self.history], dtype=float)

    def qoes(self) -> np.ndarray:
        """QoE of every iteration, in order."""
        return np.array([r.qoe for r in self.history], dtype=float)

    def best_feasible(self) -> BaselineIterationRecord | None:
        """Lowest-usage record that met the SLA, or ``None``."""
        feasible = [r for r in self.history if r.sla_met]
        if not feasible:
            return None
        return min(feasible, key=lambda r: r.resource_usage)

    def average_usage_regret(self) -> float:
        """Average per-iteration resource-usage regret (Table 5)."""
        return self.regret.average_usage_regret()

    def average_qoe_regret(self) -> float:
        """Average per-iteration QoE regret (Table 5)."""
        return self.regret.average_qoe_regret()

    def sla_violation_rate(self) -> float:
        """Fraction of iterations that violated the SLA."""
        if not self.history:
            return 0.0
        return float(np.mean([not r.sla_met for r in self.history]))


class GPBaselineBookkeeping:
    """Shared measure-and-fold machinery of the GP-surrogate baselines.

    Mixed into :class:`~repro.baselines.gp_bo.GPConfigurationOptimizer` and
    :class:`~repro.baselines.virtualedge.VirtualEdge`, which both maintain a
    GP over observed QoEs, an adaptive Lagrangian multiplier and the common
    iteration history.  The host class provides ``engine``, ``traffic``,
    ``space``, ``sla``, ``multiplier``, ``_model``, ``_inputs``, ``_qoes``
    and a ``config`` with ``measurement_duration_s``.
    """

    def _measure_warmup(self, actions: "list[SliceConfig]") -> list:
        """Measure the result-independent warm-up ``actions`` as one engine batch.

        Actions are measured with ``seed=iteration`` (1-based), exactly like
        the sequential per-iteration path, so batching changes throughput
        but not a single result.
        """
        from repro.engine import MeasurementRequest

        return self.engine.run_batch(
            [
                MeasurementRequest(
                    config=action,
                    traffic=self.traffic,
                    duration=self.config.measurement_duration_s,
                    seed=iteration,
                )
                for iteration, action in enumerate(actions, start=1)
            ]
        )

    def _record(
        self, result: BaselineResult, iteration: int, action: SliceConfig, qoe: float
    ) -> None:
        """Fold one measured ``(action, qoe)`` into model, multiplier and history."""
        usage = action.resource_usage()
        self._inputs.append(self.space.normalize(action.to_array())[0])
        self._qoes.append(qoe)
        if len(self._qoes) >= 3:
            self._model.fit(np.array(self._inputs), np.array(self._qoes))
        self.multiplier.update(qoe, self.sla.availability)
        result.regret.record(usage, qoe)
        result.history.append(
            BaselineIterationRecord(
                iteration=iteration,
                config=tuple(action.to_array()),
                resource_usage=usage,
                qoe=qoe,
                sla_met=self.sla.is_satisfied_by(qoe),
            )
        )
