"""VirtualEdge baseline [Liu, Han — ICDCS'19].

VirtualEdge orchestrates cross-domain resources with an online Gaussian
process of the unknown slice QoE and a *predictive gradient descent* step:
at each iteration the GP is refitted on the accumulated online observations,
the gradient of the penalised objective is estimated numerically around the
current configuration, and the configuration moves one step along it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineResult, GPBaselineBookkeeping
from repro.core.penalty import AdaptiveMultiplier
from repro.core.spaces import ConfigurationSpace
from repro.engine import MeasurementEngine
from repro.metrics.regret import RegretTracker
from repro.models.gp import GaussianProcessRegressor
from repro.prototype.slice_manager import SLA
from repro.sim.config import SliceConfig

__all__ = ["VirtualEdgeConfig", "VirtualEdge"]


@dataclass(frozen=True)
class VirtualEdgeConfig:
    """Hyper-parameters of the VirtualEdge baseline."""

    iterations: int = 40
    #: Gradient step size in normalised configuration units.
    step_size: float = 0.08
    #: Finite-difference probe size in normalised configuration units.
    probe: float = 0.05
    #: Iterations of random exploration before gradients are trusted.
    initial_random: int = 6
    multiplier_step: float = 0.1
    measurement_duration_s: float = 30.0
    seed: int = 0
    initial_config: SliceConfig | None = None

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.step_size <= 0 or self.probe <= 0:
            raise ValueError("step_size and probe must be positive")


class VirtualEdge(GPBaselineBookkeeping):
    """GP-based predictive gradient descent on the slice configuration."""

    def __init__(
        self,
        environment,
        sla: SLA,
        traffic: int = 1,
        config: VirtualEdgeConfig | None = None,
        space: ConfigurationSpace | None = None,
        engine: MeasurementEngine | None = None,
    ) -> None:
        self.environment = environment
        self.sla = sla
        self.traffic = int(traffic)
        self.config = config if config is not None else VirtualEdgeConfig()
        self.space = space if space is not None else ConfigurationSpace()
        self.engine = engine if engine is not None else MeasurementEngine(environment)
        self._rng = np.random.default_rng(self.config.seed)
        self.multiplier = AdaptiveMultiplier(step_size=self.config.multiplier_step, initial=1.0)
        self._model = GaussianProcessRegressor(seed=self.config.seed)
        self._inputs: list[np.ndarray] = []
        self._qoes: list[float] = []

    # -------------------------------------------------------------- internals
    def _evaluate(self, action: SliceConfig, seed: int) -> tuple[float, float]:
        result = self.engine.run(
            action,
            traffic=self.traffic,
            duration=self.config.measurement_duration_s,
            seed=seed,
        )
        return action.resource_usage(), result.qoe(self.sla.latency_threshold_ms)

    def _objective(self, unit_points: np.ndarray) -> np.ndarray:
        """Penalised objective (Lagrangian) predicted by the GP at unit-cube points."""
        usage = self.space.resource_usage(self.space.denormalize(unit_points))
        qoe = np.clip(self._model.predict(unit_points), 0.0, 1.0)
        return self.multiplier.lagrangian(usage, qoe, self.sla.availability)

    def _gradient_step(self, current_unit: np.ndarray) -> np.ndarray:
        """One predictive gradient-descent step in the unit cube."""
        gradient = np.zeros_like(current_unit)
        for dimension in range(len(current_unit)):
            forward = current_unit.copy()
            backward = current_unit.copy()
            forward[dimension] = min(forward[dimension] + self.config.probe, 1.0)
            backward[dimension] = max(backward[dimension] - self.config.probe, 0.0)
            span = forward[dimension] - backward[dimension]
            if span <= 0:
                continue
            values = self._objective(np.vstack([forward, backward]))
            gradient[dimension] = (values[0] - values[1]) / span
        norm = np.linalg.norm(gradient)
        if norm > 0:
            gradient = gradient / norm
        return np.clip(current_unit - self.config.step_size * gradient, 0.0, 1.0)

    # --------------------------------------------------------------------- run
    def run(self) -> BaselineResult:
        """Execute the online orchestration and return its history and regrets.

        The random-exploration prefix (iterations ``1..initial_random``,
        whose probe points depend only on the RNG) is submitted as one
        engine batch — fanning out across executor workers or one vectorized
        pass — and its model/multiplier bookkeeping replayed in iteration
        order, which is result-identical to the sequential loop.  The
        predictive gradient-descent iterations that follow remain
        sequential: each step conditions on the GP fitted to all earlier
        measurements.
        """
        result = BaselineResult(
            method="VirtualEdge", regret=RegretTracker(qoe_requirement=self.sla.availability)
        )
        if self.config.initial_config is not None:
            current_unit = self.space.normalize(self.config.initial_config.to_array())[0]
        else:
            current_unit = np.full(self.space.dim, 0.5)

        warm_iterations = min(max(self.config.initial_random, 1), self.config.iterations)
        warm_actions: list[SliceConfig] = []
        for iteration in range(1, warm_iterations + 1):
            if 1 < iteration <= self.config.initial_random:
                current_unit = self._rng.uniform(0.0, 1.0, size=self.space.dim)
            warm_actions.append(self.space.to_config(self.space.denormalize(current_unit)[0]))
        measurements = self._measure_warmup(warm_actions)
        for iteration, (action, measurement) in enumerate(zip(warm_actions, measurements), start=1):
            self._record(result, iteration, action, measurement.qoe(self.sla.latency_threshold_ms))

        for iteration in range(warm_iterations + 1, self.config.iterations + 1):
            if iteration > self.config.initial_random and len(self._qoes) >= 3:
                current_unit = self._gradient_step(current_unit)
            action = self.space.to_config(self.space.denormalize(current_unit)[0])
            _, qoe = self._evaluate(action, seed=iteration)
            self._record(result, iteration, action, qoe)
        result.regret.set_optimum_from_best()
        return result
