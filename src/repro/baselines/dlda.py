"""DLDA baseline [Shi, Sha, Peng — NSDI'21], adapted to service configuration.

DLDA bridges the sim-to-real gap with transfer learning: a *teacher* DNN is
trained on an offline dataset collected by grid-searching the configuration
space in the simulator, then cloned into a *student* DNN that continues
training on the (few) online samples from the real network.  Following the
paper's adaptation (Sec. 8), the configuration applied at each step is chosen
by sampling 10k candidates from the configuration space and picking the one
with minimum resource usage whose predicted QoE meets the requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineIterationRecord, BaselineResult
from repro.core.spaces import ConfigurationSpace
from repro.engine import MeasurementEngine, MeasurementRequest
from repro.metrics.regret import RegretTracker
from repro.models.mlp import MLPRegressor
from repro.prototype.slice_manager import SLA
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator

__all__ = ["DLDAConfig", "DLDA"]


@dataclass(frozen=True)
class DLDAConfig:
    """Hyper-parameters of the DLDA baseline."""

    #: Grid resolution per configuration dimension for the offline dataset
    #: (the paper uses 4 values per dimension → 4096 actions).
    grid_points_per_dim: int = 3
    #: Candidates sampled when choosing a configuration (10k in the paper).
    selection_pool: int = 5000
    #: Online iterations when run against the real network.
    online_iterations: int = 40
    #: Teacher training epochs.
    teacher_epochs: int = 200
    #: Student fine-tuning epochs per online iteration.
    student_epochs: int = 40
    #: Duration (s) of each measurement.
    measurement_duration_s: float = 30.0
    #: Hidden layers of the teacher/student DNNs.
    hidden_layers: tuple[int, ...] = (64, 64)
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.grid_points_per_dim < 2:
            raise ValueError("grid_points_per_dim must be >= 2")
        if self.selection_pool < 10:
            raise ValueError("selection_pool must be >= 10")


class DLDA:
    """Teacher–student DNN transfer learning for slice configuration."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        sla: SLA,
        traffic: int = 1,
        config: DLDAConfig | None = None,
        space: ConfigurationSpace | None = None,
        engine: MeasurementEngine | None = None,
    ) -> None:
        self.simulator = simulator
        self.sla = sla
        self.traffic = int(traffic)
        self.config = config if config is not None else DLDAConfig()
        self.space = space if space is not None else ConfigurationSpace()
        self.engine = engine if engine is not None else MeasurementEngine(simulator)
        self._rng = np.random.default_rng(self.config.seed)
        self.teacher: MLPRegressor | None = None
        self.student: MLPRegressor | None = None
        self.offline_dataset: tuple[np.ndarray, np.ndarray] | None = None

    # ---------------------------------------------------------------- offline
    def collect_offline_dataset(self) -> tuple[np.ndarray, np.ndarray]:
        """Grid-search the configuration space in the simulator (Sec. 8.2).

        The whole grid is submitted as one engine batch: with a parallel
        executor the grid sweeps run concurrently, and repeated sweeps (the
        Fig. 18/19 availability and threshold experiments re-collect the same
        grid) are served from the engine's cache.
        """
        grid = self.space.grid(self.config.grid_points_per_dim)
        requests = [
            MeasurementRequest(
                config=self.space.to_config(row),
                traffic=self.traffic,
                duration=self.config.measurement_duration_s,
                seed=index,
            )
            for index, row in enumerate(grid)
        ]
        results = self.engine.run_batch(requests)
        qoes = np.array([result.qoe(self.sla.latency_threshold_ms) for result in results])
        inputs = self.space.normalize(grid)
        self.offline_dataset = (inputs, qoes)
        return self.offline_dataset

    def train_offline(self) -> MLPRegressor:
        """Train the teacher DNN on the offline grid dataset."""
        if self.offline_dataset is None:
            self.collect_offline_dataset()
        inputs, qoes = self.offline_dataset
        self.teacher = MLPRegressor(
            input_dim=self.space.dim,
            hidden_layers=self.config.hidden_layers,
            seed=self.config.seed,
        )
        self.teacher.fit(inputs, qoes, epochs=self.config.teacher_epochs)
        return self.teacher

    # -------------------------------------------------------------- selection
    def _predict_qoe(self, model: MLPRegressor, pool_unit: np.ndarray) -> np.ndarray:
        return np.clip(model.predict(pool_unit), 0.0, 1.0)

    def select_config(self, model: MLPRegressor | None = None) -> SliceConfig:
        """Cheapest sampled configuration predicted to meet the QoE requirement."""
        if model is None:
            model = self.student if self.student is not None else self.teacher
        if model is None:
            raise RuntimeError("train_offline() must run before selecting a configuration")
        pool = self.space.sample(self.config.selection_pool, self._rng)
        pool_unit = self.space.normalize(pool)
        usage = self.space.resource_usage(pool)
        predicted = self._predict_qoe(model, pool_unit)
        feasible = predicted >= self.sla.availability
        if feasible.any():
            candidates = np.flatnonzero(feasible)
            index = int(candidates[np.argmin(usage[candidates])])
        else:
            index = int(np.argmax(predicted))
        return self.space.to_config(pool[index])

    def best_offline_config(self) -> SliceConfig:
        """Best configuration according to the teacher alone (offline comparison)."""
        return self.select_config(model=self.teacher)

    # ----------------------------------------------------------------- online
    def run_online(self, real_network, iterations: int | None = None) -> BaselineResult:
        """Fine-tune the student online and record the achieved usage/QoE.

        Following the original DLDA, the student is trained on the *combined*
        offline (simulator grid) and online (real network) datasets so the
        transferred offline knowledge keeps regularising the few online
        samples — which also means the simulator's optimism about cheap
        configurations fades only slowly.
        """
        if self.teacher is None:
            self.train_offline()
        iterations = iterations if iterations is not None else self.config.online_iterations
        real_engine = MeasurementEngine(real_network)
        self.student = self.teacher.clone()
        offline_inputs, offline_qoes = self.offline_dataset
        online_inputs: list[np.ndarray] = []
        online_qoes: list[float] = []
        result = BaselineResult(
            method="DLDA", regret=RegretTracker(qoe_requirement=self.sla.availability)
        )
        for iteration in range(1, iterations + 1):
            action = self.select_config(model=self.student)
            measurement = real_engine.run(
                action,
                traffic=self.traffic,
                duration=self.config.measurement_duration_s,
                seed=iteration,
            )
            qoe = measurement.qoe(self.sla.latency_threshold_ms)
            usage = action.resource_usage()
            online_inputs.append(self.space.normalize(action.to_array())[0])
            online_qoes.append(qoe)
            # Student fine-tuning on the combined offline + online samples,
            # keeping the teacher's scalers so the transferred weights stay
            # meaningful.  Online samples are replicated so they are not
            # completely drowned out by the offline grid.
            replication = max(1, len(offline_inputs) // (10 * len(online_inputs)))
            combined_inputs = np.vstack([offline_inputs, np.repeat(online_inputs, replication, axis=0)])
            combined_qoes = np.concatenate([offline_qoes, np.repeat(online_qoes, replication)])
            self.student.fit(
                combined_inputs,
                combined_qoes,
                epochs=self.config.student_epochs,
                reset_scalers=False,
            )
            result.regret.record(usage, qoe)
            result.history.append(
                BaselineIterationRecord(
                    iteration=iteration,
                    config=tuple(action.to_array()),
                    resource_usage=usage,
                    qoe=qoe,
                    sla_met=self.sla.is_satisfied_by(qoe),
                )
            )
        result.regret.set_optimum_from_best()
        return result
