"""Bayesian optimisation with a Gaussian-process surrogate (the "Baseline").

Pointed at the real network with the EI acquisition this is the paper's
"Baseline" online learner (Sec. 8); pointed at the (augmented) simulator it
provides the GP-EI, GP-PI and GP-UCB offline comparators of Figs. 17–18 and
the GP-based stage-1 alternative.  The constrained objective is handled the
same way as in Atlas — an adaptive Lagrangian multiplier — so that only the
surrogate and acquisition differ between methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineResult, GPBaselineBookkeeping
from repro.core.acquisition import (
    expected_improvement,
    gp_ucb_beta,
    probability_of_improvement,
)
from repro.core.penalty import AdaptiveMultiplier
from repro.core.spaces import ConfigurationSpace
from repro.engine import MeasurementEngine
from repro.metrics.regret import RegretTracker
from repro.models.gp import GaussianProcessRegressor
from repro.prototype.slice_manager import SLA
from repro.sim.config import SliceConfig

__all__ = ["GPOptimizerConfig", "GPConfigurationOptimizer"]


@dataclass(frozen=True)
class GPOptimizerConfig:
    """Hyper-parameters of the GP Bayesian-optimisation baseline."""

    iterations: int = 40
    initial_random: int = 8
    candidate_pool: int = 1500
    acquisition: str = "ei"
    multiplier_step: float = 0.1
    measurement_duration_s: float = 30.0
    seed: int = 0
    #: Optional configuration to apply on the very first iteration (e.g. the
    #: best offline action, when comparing warm-started methods).
    initial_config: SliceConfig | None = None

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.acquisition not in ("ei", "pi", "ucb"):
            raise ValueError(f"unknown acquisition {self.acquisition!r}")


class GPConfigurationOptimizer(GPBaselineBookkeeping):
    """GP + classic-acquisition Bayesian optimisation of the slice configuration.

    Parameters
    ----------
    environment:
        Anything exposing ``run(config, traffic=..., duration=..., seed=...)``
        returning a :class:`~repro.sim.network.SimulationResult` — either the
        simulator (offline comparators) or the real network (the online
        Baseline).
    sla, traffic:
        The slice SLA and traffic level of the experiment.
    """

    def __init__(
        self,
        environment,
        sla: SLA,
        traffic: int = 1,
        config: GPOptimizerConfig | None = None,
        space: ConfigurationSpace | None = None,
        engine: MeasurementEngine | None = None,
    ) -> None:
        self.environment = environment
        self.sla = sla
        self.traffic = int(traffic)
        self.config = config if config is not None else GPOptimizerConfig()
        self.space = space if space is not None else ConfigurationSpace()
        self.engine = engine if engine is not None else MeasurementEngine(environment)
        self._rng = np.random.default_rng(self.config.seed)
        self.multiplier = AdaptiveMultiplier(step_size=self.config.multiplier_step, initial=1.0)
        self._model = GaussianProcessRegressor(seed=self.config.seed)
        self._inputs: list[np.ndarray] = []
        self._qoes: list[float] = []

    # -------------------------------------------------------------- evaluation
    def _evaluate(self, action: SliceConfig, seed: int) -> tuple[float, float]:
        result = self.engine.run(
            action,
            traffic=self.traffic,
            duration=self.config.measurement_duration_s,
            seed=seed,
        )
        return action.resource_usage(), result.qoe(self.sla.latency_threshold_ms)

    # --------------------------------------------------------------- selection
    def _select_action(self, iteration: int) -> SliceConfig:
        if self.config.initial_config is not None and iteration == 1:
            return self.config.initial_config
        if len(self._qoes) < self.config.initial_random:
            return self.space.to_config(self.space.sample(1, self._rng)[0])

        pool = self.space.sample(self.config.candidate_pool, self._rng)
        pool_unit = self.space.normalize(pool)
        usage = self.space.resource_usage(pool)
        qoe_mean, qoe_std = self._model.predict(pool_unit, return_std=True)
        qoe_mean = np.clip(qoe_mean, 0.0, 1.0)
        requirement = self.sla.availability

        lagrangian_mean = self.multiplier.lagrangian(usage, qoe_mean, requirement)
        sigma = np.maximum(self.multiplier.value * qoe_std, 1e-9)
        incumbent = float(np.min(lagrangian_mean))
        if self.config.acquisition == "ei":
            scores = expected_improvement(-lagrangian_mean, sigma, best=-incumbent)
            index = int(np.argmax(scores))
        elif self.config.acquisition == "pi":
            scores = probability_of_improvement(-lagrangian_mean, sigma, best=-incumbent)
            index = int(np.argmax(scores))
        else:
            beta = gp_ucb_beta(iteration, self.space.dim)
            optimistic = qoe_mean + np.sqrt(beta) * qoe_std
            scores = self.multiplier.lagrangian(usage, optimistic, requirement)
            index = int(np.argmin(scores))
        return self.space.to_config(pool[index])

    # --------------------------------------------------------------------- run
    def run(self) -> BaselineResult:
        """Execute the optimisation and return its history and regrets.

        The warm-up prefix (the ``initial_random`` iterations, whose actions
        depend only on the RNG — never on earlier measurements) is submitted
        as *one* engine batch, so the random exploration fans out across
        executor workers (or one vectorized pass) while staying
        result-identical to the sequential loop: actions are selected in the
        same RNG order, measured with the same per-iteration seeds, and the
        model/multiplier bookkeeping is replayed in iteration order.  The
        model-guided iterations that follow are inherently sequential (each
        selection conditions on all earlier measurements).
        """
        acquisition_name = {"ei": "GP-EI", "pi": "GP-PI", "ucb": "GP-UCB"}[self.config.acquisition]
        result = BaselineResult(
            method=acquisition_name,
            regret=RegretTracker(qoe_requirement=self.sla.availability),
        )
        warm_iterations = min(self.config.initial_random, self.config.iterations)
        warm_actions = [self._select_action(iteration) for iteration in range(1, warm_iterations + 1)]
        measurements = self._measure_warmup(warm_actions)
        for iteration, (action, measurement) in enumerate(zip(warm_actions, measurements), start=1):
            self._record(result, iteration, action, measurement.qoe(self.sla.latency_threshold_ms))
        for iteration in range(warm_iterations + 1, self.config.iterations + 1):
            action = self._select_action(iteration)
            _, qoe = self._evaluate(action, seed=iteration)
            self._record(result, iteration, action, qoe)
        result.regret.set_optimum_from_best()
        return result
