"""Baselines the paper compares Atlas against.

* :class:`~repro.baselines.gp_bo.GPConfigurationOptimizer` — Bayesian
  optimisation with a GP surrogate and a classic acquisition function (EI by
  default).  Used as the paper's "Baseline" when pointed at the real network
  and as the GP-EI / GP-PI / GP-UCB offline comparators of Figs. 17–18 when
  pointed at the simulator.
* :class:`~repro.baselines.dlda.DLDA` — the NSDI'21 transfer-learning
  approach: a teacher DNN trained on an offline grid dataset, cloned into a
  student that is fine-tuned with online samples; configurations are chosen
  by sampling 10k candidates and picking the cheapest one predicted to meet
  the QoE requirement.
* :class:`~repro.baselines.virtualedge.VirtualEdge` — the ICDCS'19 approach:
  an online GP of the slice QoE plus predictive gradient descent on the
  current configuration.
"""

from repro.baselines.base import BaselineIterationRecord, BaselineResult
from repro.baselines.dlda import DLDA, DLDAConfig
from repro.baselines.gp_bo import GPConfigurationOptimizer, GPOptimizerConfig
from repro.baselines.virtualedge import VirtualEdge, VirtualEdgeConfig

__all__ = [
    "BaselineIterationRecord",
    "BaselineResult",
    "GPConfigurationOptimizer",
    "GPOptimizerConfig",
    "DLDA",
    "DLDAConfig",
    "VirtualEdge",
    "VirtualEdgeConfig",
]
