"""Search spaces for the Bayesian-optimisation stages.

Two boxes are searched by Atlas:

* the 6-dimensional *configuration space* of Table 2 (stage 2 and stage 3),
  whose actions are :class:`~repro.sim.config.SliceConfig` instances, and
* the 7-dimensional *simulation-parameter space* of Table 3 (stage 1), which
  additionally carries the parameter-distance constraint ``|x - x_hat|_2 <= H``
  of Eq. 2 so the augmented simulator stays explainable.

All surrogate models operate on the normalised ``[0, 1]`` representation of
these boxes, which keeps length scales comparable across dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import CONFIG_NAMES, SliceConfig
from repro.sim.parameters import PARAMETER_NAMES, SimulationParameters

__all__ = ["BoxSpace", "ConfigurationSpace", "SimulationParameterSpace"]


class BoxSpace:
    """Axis-aligned box with uniform sampling and normalisation helpers."""

    def __init__(self, lows, highs, names: tuple[str, ...] | None = None) -> None:
        self.lows = np.asarray(lows, dtype=float).ravel()
        self.highs = np.asarray(highs, dtype=float).ravel()
        if self.lows.shape != self.highs.shape:
            raise ValueError("lows and highs must have the same shape")
        if np.any(self.highs <= self.lows):
            raise ValueError("every upper bound must exceed its lower bound")
        self.names = names if names is not None else tuple(f"x{i}" for i in range(len(self.lows)))

    @property
    def dim(self) -> int:
        """Dimensionality of the box."""
        return len(self.lows)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` uniform points, shape ``(count, dim)``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return rng.uniform(self.lows, self.highs, size=(count, self.dim))

    def clip(self, points) -> np.ndarray:
        """Clip points to the box."""
        return np.clip(np.atleast_2d(np.asarray(points, dtype=float)), self.lows, self.highs)

    def normalize(self, points) -> np.ndarray:
        """Map points to the unit cube."""
        arr = np.atleast_2d(np.asarray(points, dtype=float))
        return (arr - self.lows) / (self.highs - self.lows)

    def denormalize(self, unit_points) -> np.ndarray:
        """Map unit-cube points back to the box."""
        arr = np.atleast_2d(np.asarray(unit_points, dtype=float))
        return self.lows + np.clip(arr, 0.0, 1.0) * (self.highs - self.lows)

    def contains(self, point, tolerance: float = 1e-9) -> bool:
        """Whether ``point`` lies inside the box (within a tolerance)."""
        arr = np.asarray(point, dtype=float).ravel()
        return bool(np.all(arr >= self.lows - tolerance) and np.all(arr <= self.highs + tolerance))


class ConfigurationSpace(BoxSpace):
    """The 6-dimensional slice configuration space of Table 2."""

    def __init__(self) -> None:
        lows, highs = SliceConfig.bounds_arrays()
        super().__init__(lows, highs, names=CONFIG_NAMES)

    def sample_configs(self, count: int, rng: np.random.Generator) -> list[SliceConfig]:
        """Draw ``count`` random configuration actions."""
        return [SliceConfig.from_array(row) for row in self.sample(count, rng)]

    def to_config(self, point) -> SliceConfig:
        """Convert a raw vector to a :class:`SliceConfig` (clipped to range)."""
        return SliceConfig.from_array(np.asarray(point, dtype=float))

    def to_configs(self, points) -> list[SliceConfig]:
        """Convert a batch of raw vectors to configurations."""
        return [self.to_config(row) for row in np.atleast_2d(points)]

    def resource_usage(self, points) -> np.ndarray:
        """Vectorised resource usage ``F = |a / A|_1 / dim`` of raw configuration vectors."""
        arr = np.atleast_2d(np.asarray(points, dtype=float))
        fractions = (arr - self.lows) / (self.highs - self.lows)
        return np.clip(fractions, 0.0, 1.0).mean(axis=1)

    def grid(self, points_per_dim: int) -> np.ndarray:
        """Full factorial grid used by the DLDA offline dataset (Sec. 8.2)."""
        if points_per_dim < 2:
            raise ValueError("points_per_dim must be >= 2")
        axes = [np.linspace(lo, hi, points_per_dim) for lo, hi in zip(self.lows, self.highs)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=1)


class SimulationParameterSpace(BoxSpace):
    """The 7-dimensional simulation-parameter space of Table 3 with Eq. 2's constraint.

    Parameters
    ----------
    original:
        The original simulation parameters ``x_hat`` (zero parameter distance).
    distance_threshold:
        The threshold ``H`` on the *normalised* l2 parameter distance; points
        farther than this from the original parameters are infeasible.
    """

    def __init__(
        self,
        original: SimulationParameters | None = None,
        distance_threshold: float = 0.3,
    ) -> None:
        lows, highs = SimulationParameters.bounds_arrays()
        super().__init__(lows, highs, names=PARAMETER_NAMES)
        if distance_threshold <= 0:
            raise ValueError("distance_threshold must be positive")
        self.original = original if original is not None else SimulationParameters.defaults()
        self.distance_threshold = float(distance_threshold)

    #: Scale divisor applied to the normalised l2 norm so that "explainable"
    #: parameter adjustments measure roughly 0.1 (the magnitude Table 4 of the
    #: paper reports when weighted with ``alpha = 7``).
    DISTANCE_SCALE = 10.0

    def parameter_distance(self, points) -> np.ndarray:
        """Parameter distance ``|x - x_hat|_2`` of raw parameter vectors to ``x_hat``.

        Each dimension is normalised by its feasible range (so dB, ms and
        Mbps contribute comparably) and the l2 norm is divided by
        :attr:`DISTANCE_SCALE`.
        """
        arr = np.atleast_2d(np.asarray(points, dtype=float))
        original_unit = self.normalize(self.original.to_array())[0]
        return np.linalg.norm(self.normalize(arr) - original_unit, axis=1) / self.DISTANCE_SCALE

    def is_feasible(self, point) -> bool:
        """Whether ``point`` satisfies both the box and the distance constraint."""
        return self.contains(point) and float(self.parameter_distance(point)[0]) <= self.distance_threshold

    def sample_feasible(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points satisfying the distance constraint of Eq. 2.

        Sampling is done around the original parameters with decreasing radius
        rejection, which is both fast and biased toward explainable parameters
        — mirroring the paper's preference for small parameter distances.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        original_unit = self.normalize(self.original.to_array())[0]
        accepted: list[np.ndarray] = []
        # Uniform box proposals first, then shrink toward the original point if
        # the acceptance rate of the constraint is low.
        attempts = 0
        scale = 1.0
        while len(accepted) < count:
            proposals_unit = rng.uniform(0.0, 1.0, size=(count * 2, self.dim))
            proposals_unit = original_unit + (proposals_unit - original_unit) * scale
            distances = np.linalg.norm(proposals_unit - original_unit, axis=1) / self.DISTANCE_SCALE
            for row, distance in zip(proposals_unit, distances):
                if distance <= self.distance_threshold and len(accepted) < count:
                    accepted.append(np.clip(row, 0.0, 1.0))
            attempts += 1
            if attempts % 3 == 0:
                scale *= 0.8
        return self.denormalize(np.array(accepted))

    def to_parameters(self, point) -> SimulationParameters:
        """Convert a raw vector to :class:`SimulationParameters` (clipped to range)."""
        return SimulationParameters.from_array(np.asarray(point, dtype=float))
