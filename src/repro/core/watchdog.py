"""Watchdog, safe-mode fallback and recovery ledger for the online stage.

Stage 3 (Alg. 3) assumes a cooperative environment: every measurement
arrives, traffic holds near the level the offline policy trained at, and a
bad configuration costs one step of regret.  A live network keeps none of
those promises — and a learner that keeps exploring through a flash crowd,
or keeps fitting its residual model on zero-QoE telemetry dropouts, diverges
and *stays* diverged after the fault clears.

:class:`OnlineWatchdog` wraps an
:class:`~repro.core.online_learning.OnlineConfigurationLearner` and drives
its step loop through a two-state machine:

``LEARNING``
    The learner explores normally.  Three divergence monitors run on every
    step: a rolling SLA-violation-rate window, a residual-model surprise
    counter (consecutive steps whose observed sim-to-real residual exceeds
    what the model should absorb), and a stale-telemetry counter
    (consecutive dropped measurements).  Any monitor tripping enters safe
    mode — after rolling back the residual observations the fault window
    poisoned.

``SAFE_MODE``
    The watchdog stops the learner entirely and measures the **last
    known-good configuration** each step.  With an operator-supplied
    ``fallback_config`` (typically the over-provisioned deployed config)
    that vetted configuration is always the fallback; otherwise the
    watchdog uses the SLA-meeting action with the most QoE headroom
    observed so far (the usage-minimising learner walks toward marginal
    configs, so the *highest-headroom* survivor is the one that rides out
    a storm), starting from the offline best.  Recovery is
    hysteresis-gated: the slice must hold the SLA for
    ``recovery_probes`` consecutive telemetry-valid steps, after at least
    ``min_safe_steps`` steps — one good probe never re-arms a learner mid
    storm.  A ``reentry_budget`` bounds how many times learning may resume;
    once exhausted the watchdog stays in safe mode for the rest of the
    episode, still emitting the known-good configuration every step, so the
    controller never wedges.

Every safe-mode measurement lands in a :class:`RecoveryLedger`.  On
recovery the ledger's telemetry-valid entries are folded back into the
learner's sim-to-real discrepancy model
(:meth:`~repro.core.online_learning.OnlineConfigurationLearner.observe_residual`
at the traffic each measurement actually experienced), so the fault window
is not dead time — the learner returns knowing what the storm did to the
gap.

Fault injection itself lives in :mod:`repro.sim.faults`; the watchdog takes
an optional :class:`~repro.sim.faults.FaultSchedule` and installs a
step-pinned :class:`~repro.sim.faults.FaultedEnvironment` into the
learner's real-network engine before each step — the chaos harness the
fault-injection test suite and ``python -m repro run --faults`` drive.
:func:`run_unprotected` runs the same faulted episode without any
protection: the control arm the robustness gate compares against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.online_learning import OnlineConfigurationLearner, OnlineLearningResult
from repro.engine.replay import VectorReplayEnvironment
from repro.sim.config import SliceConfig
from repro.sim.faults import FaultedEnvironment, FaultSchedule, telemetry_lost

__all__ = [
    "WatchdogConfig",
    "LedgerEntry",
    "RecoveryLedger",
    "GuardedIterationRecord",
    "GuardedOnlineResult",
    "OnlineWatchdog",
    "run_unprotected",
]


@dataclass(frozen=True)
class WatchdogConfig:
    """Knobs of the divergence monitors, safe-mode gate and recovery ledger."""

    #: Rolling window (steps) of the SLA-violation-rate monitor.
    violation_window: int = 5
    #: Enter safe mode when the windowed violation rate reaches this.
    violation_threshold: float = 0.6
    #: Absolute sim-to-real residual beyond which a step counts as a surprise.
    surprise_threshold: float = 0.35
    #: Consecutive surprises that trip the residual monitor.
    surprise_limit: int = 3
    #: Consecutive telemetry losses that trip the stale monitor.
    stale_limit: int = 2
    #: Consecutive healthy safe-mode probes required to re-arm learning.
    recovery_probes: int = 2
    #: Minimum steps spent in safe mode before recovery is considered.
    min_safe_steps: int = 2
    #: Maximum safe-mode entries per episode; beyond it safe mode is final.
    reentry_budget: int = 3
    #: Most recent telemetry-valid ledger entries folded back on recovery.
    ledger_fold_limit: int = 6
    #: Maximum residual observations rolled back on safe-mode entry.
    rollback_limit: int = 4

    def __post_init__(self) -> None:
        """Validate monitor windows, thresholds and budgets."""
        if self.violation_window < 1:
            raise ValueError("violation_window must be >= 1")
        if not 0.0 < self.violation_threshold <= 1.0:
            raise ValueError("violation_threshold must be in (0, 1]")
        if self.surprise_threshold <= 0:
            raise ValueError("surprise_threshold must be positive")
        if self.surprise_limit < 1 or self.stale_limit < 1:
            raise ValueError("surprise_limit and stale_limit must be >= 1")
        if self.recovery_probes < 1:
            raise ValueError("recovery_probes must be >= 1")
        if self.min_safe_steps < 1:
            raise ValueError("min_safe_steps must be >= 1")
        if self.reentry_budget < 0:
            raise ValueError("reentry_budget must be >= 0")
        if self.ledger_fold_limit < 0 or self.rollback_limit < 0:
            raise ValueError("ledger_fold_limit and rollback_limit must be >= 0")


@dataclass(frozen=True)
class LedgerEntry:
    """One safe-mode measurement: what the known-good config delivered."""

    step: int
    config: tuple[float, ...]
    traffic: int
    qoe: float
    telemetry_ok: bool
    trigger: str


@dataclass
class RecoveryLedger:
    """Accumulated fault-window telemetry, folded back into the learner on exit."""

    entries: list[LedgerEntry] = field(default_factory=list)
    folded: int = 0

    def record(self, entry: LedgerEntry) -> None:
        """Append one safe-mode measurement."""
        self.entries.append(entry)

    def pending(self) -> list[LedgerEntry]:
        """Entries recorded since the last fold."""
        return self.entries[self.folded :]

    def mark_folded(self) -> None:
        """Every current entry has been folded into the discrepancy model."""
        self.folded = len(self.entries)


@dataclass(frozen=True)
class GuardedIterationRecord:
    """One watchdog-supervised step: who acted, what happened, what tripped."""

    step: int
    mode: str  # "learning" | "safe"
    config: tuple[float, ...]
    resource_usage: float
    qoe: float
    sla_met: bool
    telemetry_ok: bool
    multiplier: float
    #: Monitor that fired this step ("sla-violations" / "residual-surprise" /
    #: "stale-telemetry"), "recovered" on a safe-mode exit, else ``None``.
    trigger: str | None = None


@dataclass
class GuardedOnlineResult:
    """Outcome of a watchdog-supervised episode."""

    history: list[GuardedIterationRecord]
    learning: OnlineLearningResult
    safe_mode_entries: int
    recoveries: int
    final_mode: str
    triggers: list[str]
    ledger: RecoveryLedger
    last_known_good: tuple[float, ...]

    def sla_violation_rate(self) -> float:
        """Violation rate over telemetry-valid steps (blind steps are unscored)."""
        valid = [r for r in self.history if r.telemetry_ok]
        if not valid:
            return 0.0
        return float(np.mean([not r.sla_met for r in valid]))

    def dropped_steps(self) -> int:
        """Number of steps whose telemetry never arrived."""
        return sum(1 for r in self.history if not r.telemetry_ok)

    def safe_steps(self) -> int:
        """Number of steps spent in safe mode."""
        return sum(1 for r in self.history if r.mode == "safe")

    def summary(self) -> dict:
        """JSON-friendly episode summary (the CLI's ``--faults`` payload)."""
        return {
            "steps": len(self.history),
            "safe_mode_entries": self.safe_mode_entries,
            "recoveries": self.recoveries,
            "final_mode": self.final_mode,
            "triggers": list(self.triggers),
            "safe_steps": self.safe_steps(),
            "dropped_steps": self.dropped_steps(),
            "sla_violation_rate": self.sla_violation_rate(),
            "ledger_entries": len(self.ledger.entries),
            "ledger_folded": self.ledger.folded,
            "last_known_good": list(self.last_known_good),
        }


def _split_replay_pin(environment) -> tuple[object, bool]:
    """Unwrap a :class:`VectorReplayEnvironment` so faults nest inside the pin.

    The pin must stay outermost — it has no ``with_imperfections`` hook, so a
    storm-degrading :class:`FaultedEnvironment` has to wrap the bare
    environment and be re-pinned on the way out.
    """
    if isinstance(environment, VectorReplayEnvironment):
        return environment.inner, True
    return environment, False


def _install_faults(learner: OnlineConfigurationLearner, base, pinned: bool,
                    schedule: FaultSchedule | None, step_index: int) -> None:
    """Point the learner's real engine at ``step_index`` of the fault schedule."""
    if schedule is None:
        return
    environment = FaultedEnvironment(base, schedule, step_index)
    if pinned:
        environment = VectorReplayEnvironment(environment)
    learner.real_engine.environment = environment


class OnlineWatchdog:
    """Supervise an online learner: detect divergence, fall back, recover.

    Parameters
    ----------
    learner:
        The stage-3 learner to supervise.  The watchdog owns its step loop;
        do not call ``learner.run()`` separately.
    config:
        Monitor/gate knobs (:class:`WatchdogConfig`).
    fault_schedule:
        Optional faults to inject into the learner's real-network
        measurements (the chaos harness).  ``None`` supervises whatever the
        environment already does.  If the learner's real engine is pinned
        under a :class:`~repro.engine.replay.VectorReplayEnvironment`, the
        faults nest inside the pin so cross-executor byte-identity holds.
    fallback_config:
        Operator-vetted safe-mode configuration — typically the slice's
        (over-provisioned) deployed configuration.  When given, safe mode
        always falls back to it; learned SLA-meeting actions never replace
        it.  When ``None``, the watchdog falls back to the highest-headroom
        SLA-meeting action observed so far (the offline best before any
        exists).
    """

    def __init__(
        self,
        learner: OnlineConfigurationLearner,
        config: WatchdogConfig | None = None,
        fault_schedule: FaultSchedule | None = None,
        fallback_config: SliceConfig | None = None,
    ) -> None:
        self.learner = learner
        self.config = config if config is not None else WatchdogConfig()
        self.fault_schedule = fault_schedule
        self.fallback_config = fallback_config
        self.ledger = RecoveryLedger()
        base, pinned = _split_replay_pin(learner.real_engine.environment)
        self._base_real_env = base
        self._pinned = pinned

    # ---------------------------------------------------------------- episode
    def run(self, iterations: int | None = None) -> GuardedOnlineResult:
        """Drive the supervised episode and return the guarded outcome."""
        learner, cfg = self.learner, self.config
        total = int(iterations) if iterations is not None else learner.config.iterations
        # A vetted fallback is final; otherwise track the highest-headroom
        # SLA-meeting action seen so far.  The learner walks toward marginal
        # (usage-minimal) configurations, so "most recent SLA-met" would hand
        # safe mode exactly the config a storm breaks.
        vetted = self.fallback_config is not None
        known_good = (
            self.fallback_config if vetted else learner.offline_policy.best_config
        )
        known_good_qoe = float("-inf")
        window: deque[bool] = deque(maxlen=cfg.violation_window)
        history: list[GuardedIterationRecord] = []
        triggers: list[str] = []
        mode = "learning"
        stale = surprises = suspects = 0
        healthy = safe_steps = entries = recoveries = 0

        for step in range(1, total + 1):
            _install_faults(learner, self._base_real_env, self._pinned,
                            self.fault_schedule, step - 1)
            if mode == "learning":
                record = learner.step(step)
                telemetry_ok = not telemetry_lost(learner.last_measurement)
                trigger = None
                if telemetry_ok:
                    stale = 0
                    window.append(record.sla_met)
                    surprises = (
                        surprises + 1
                        if abs(record.residual) > cfg.surprise_threshold
                        else 0
                    )
                    if record.sla_met:
                        if not vetted and record.qoe > known_good_qoe:
                            known_good = SliceConfig.from_array(np.asarray(record.config))
                            known_good_qoe = record.qoe
                        suspects = 0
                    else:
                        suspects += 1
                else:
                    stale += 1
                    suspects += 1
                if stale >= cfg.stale_limit:
                    trigger = "stale-telemetry"
                elif (
                    len(window) == cfg.violation_window
                    and float(np.mean([not met for met in window])) >= cfg.violation_threshold
                ):
                    trigger = "sla-violations"
                elif surprises >= cfg.surprise_limit:
                    trigger = "residual-surprise"
                history.append(
                    GuardedIterationRecord(
                        step=step,
                        mode="learning",
                        config=record.config,
                        resource_usage=record.resource_usage,
                        qoe=record.qoe,
                        sla_met=record.sla_met,
                        telemetry_ok=telemetry_ok,
                        multiplier=record.multiplier,
                        trigger=trigger,
                    )
                )
                if trigger is not None:
                    triggers.append(trigger)
                    entries += 1
                    learner.drop_residual_observations(
                        min(cfg.rollback_limit, max(suspects, 1))
                    )
                    mode = "safe"
                    healthy = safe_steps = 0
                    window.clear()
                    stale = surprises = suspects = 0
            else:
                safe_steps += 1
                result = learner.real_engine.run(
                    known_good,
                    traffic=learner.traffic,
                    duration=learner.config.measurement_duration_s,
                    seed=step,
                )
                telemetry_ok = not telemetry_lost(result)
                qoe = result.qoe(learner.sla.latency_threshold_ms) if telemetry_ok else float("nan")
                met = telemetry_ok and learner.sla.is_satisfied_by(qoe)
                if telemetry_ok:
                    learner.multiplier.update(qoe, learner.sla.availability)
                    healthy = healthy + 1 if met else 0
                else:
                    # Recovery cannot be verified blind.
                    healthy = 0
                self.ledger.record(
                    LedgerEntry(
                        step=step,
                        config=tuple(known_good.to_array()),
                        traffic=result.traffic,
                        qoe=qoe,
                        telemetry_ok=telemetry_ok,
                        trigger=triggers[-1] if triggers else "",
                    )
                )
                recovered = (
                    safe_steps >= cfg.min_safe_steps
                    and healthy >= cfg.recovery_probes
                    and entries <= cfg.reentry_budget
                )
                history.append(
                    GuardedIterationRecord(
                        step=step,
                        mode="safe",
                        config=tuple(known_good.to_array()),
                        resource_usage=known_good.resource_usage(),
                        qoe=qoe,
                        sla_met=met,
                        telemetry_ok=telemetry_ok,
                        multiplier=learner.multiplier.value,
                        trigger="recovered" if recovered else None,
                    )
                )
                if recovered:
                    recoveries += 1
                    self._fold_ledger()
                    mode = "learning"

        learning = learner.finalize()
        return GuardedOnlineResult(
            history=history,
            learning=learning,
            safe_mode_entries=entries,
            recoveries=recoveries,
            final_mode=mode,
            triggers=triggers,
            ledger=self.ledger,
            last_known_good=tuple(known_good.to_array()),
        )

    # ----------------------------------------------------------------- ledger
    def _fold_ledger(self) -> None:
        """Fold telemetry-valid safe-mode measurements into the residual model."""
        valid = [entry for entry in self.ledger.pending() if entry.telemetry_ok]
        for entry in valid[-self.config.ledger_fold_limit :]:
            self.learner.observe_residual(
                SliceConfig.from_array(np.asarray(entry.config)),
                entry.qoe,
                traffic=entry.traffic,
            )
        self.ledger.mark_folded()


def run_unprotected(
    learner: OnlineConfigurationLearner,
    fault_schedule: FaultSchedule,
    iterations: int | None = None,
) -> OnlineLearningResult:
    """Run the faulted episode with no watchdog: the robustness control arm.

    The same per-step fault injection as :class:`OnlineWatchdog`, the same
    seeds, but the learner explores (and poisons its models) straight
    through every fault window.
    """
    base, pinned = _split_replay_pin(learner.real_engine.environment)
    total = int(iterations) if iterations is not None else learner.config.iterations
    for step in range(1, total + 1):
        _install_faults(learner, base, pinned, fault_schedule, step - 1)
        learner.step(step)
    return learner.finalize()
