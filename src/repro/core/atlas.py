"""End-to-end Atlas orchestration: simulator learning → offline training → online learning.

:class:`Atlas` wires the three stages together exactly as the paper's
workflow does (Appendix D): build the online collection ``D_r`` from the
real network, search the simulation parameters (stage 1), train the offline
policy in the augmented simulator (stage 2), then learn online in the real
network (stage 3).  Individual stages can be disabled to reproduce the
component ablation of Fig. 24.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.offline_training import (
    OfflineConfigurationTrainer,
    OfflineTrainingConfig,
    OfflineTrainingResult,
)
from repro.core.online_learning import (
    OnlineConfigurationLearner,
    OnlineLearningConfig,
    OnlineLearningResult,
)
from repro.core.policy import OfflinePolicy
from repro.core.simulator_learning import (
    ParameterSearchConfig,
    ParameterSearchResult,
    SimulatorParameterSearch,
)
from repro.core.spaces import SimulationParameterSpace
from repro.engine import MeasurementEngine, MeasurementRequest
from repro.models.bnn import BayesianNeuralNetwork
from repro.prototype.slice_manager import SLA
from repro.prototype.telemetry import OnlineCollection
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator

__all__ = ["AtlasConfig", "AtlasResult", "Atlas"]


@dataclass(frozen=True)
class AtlasConfig:
    """Configuration of the full three-stage pipeline."""

    sla: SLA = field(default_factory=SLA)
    traffic: int = 1
    #: Configuration deployed while collecting ``D_r`` (a mid-range default).
    deployed_config: SliceConfig = field(default_factory=SliceConfig)
    #: Number of real-network measurements used to build ``D_r``.
    online_collection_runs: int = 3
    #: Duration (s) of each ``D_r`` measurement.
    online_collection_duration_s: float = 30.0
    stage1: ParameterSearchConfig = field(default_factory=ParameterSearchConfig)
    stage2: OfflineTrainingConfig = field(default_factory=OfflineTrainingConfig)
    stage3: OnlineLearningConfig = field(default_factory=OnlineLearningConfig)
    #: Stage toggles for the Fig. 24 ablation.
    enable_stage1: bool = True
    enable_stage2: bool = True
    enable_stage3: bool = True
    seed: int = 0


@dataclass
class AtlasResult:
    """Aggregated results of whichever stages were run."""

    stage1: ParameterSearchResult | None = None
    stage2: OfflineTrainingResult | None = None
    stage3: OnlineLearningResult | None = None

    @property
    def augmented_parameters(self):
        """Best simulation parameters found by stage 1 (or ``None``)."""
        return self.stage1.best_parameters if self.stage1 is not None else None

    @property
    def offline_policy(self) -> OfflinePolicy | None:
        """Offline policy produced by stage 2 (or ``None``)."""
        return self.stage2.policy if self.stage2 is not None else None


class Atlas:
    """The integrated offline–online network slicing system."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        real_network: RealNetwork,
        config: AtlasConfig | None = None,
    ) -> None:
        self.simulator = simulator
        self.real_network = real_network
        self.config = config if config is not None else AtlasConfig()
        self.online_collection = OnlineCollection()
        self.augmented_simulator: NetworkSimulator = simulator
        self.real_engine = MeasurementEngine(real_network)
        self._offline_policy: OfflinePolicy | None = None

    # --------------------------------------------------------- online dataset
    def collect_online_dataset(self) -> OnlineCollection:
        """Build ``D_r`` by logging the currently deployed configuration's latency."""
        requests = [
            MeasurementRequest(
                config=self.config.deployed_config,
                traffic=self.config.traffic,
                duration=self.config.online_collection_duration_s,
                seed=1000 + run,
            )
            for run in range(self.config.online_collection_runs)
        ]
        for latencies in self.real_engine.collect_latencies_batch(requests):
            self.online_collection.extend(latencies)
        return self.online_collection

    # ----------------------------------------------------------------- stage 1
    def build_simulator(self) -> ParameterSearchResult | None:
        """Run stage 1 and install the augmented simulator for later stages."""
        if not self.config.enable_stage1:
            self.augmented_simulator = self.simulator
            return None
        if not self.online_collection:
            self.collect_online_dataset()
        search = SimulatorParameterSearch(
            simulator=self.simulator,
            real_collection=self.online_collection.samples(),
            deployed_config=self.config.deployed_config,
            space=SimulationParameterSpace(original=self.simulator.params),
            config=self.config.stage1,
            traffic=self.config.traffic,
        )
        result = search.run()
        self.augmented_simulator = self.simulator.with_params(result.best_parameters)
        return result

    # ----------------------------------------------------------------- stage 2
    def train_offline(self) -> OfflineTrainingResult | None:
        """Run stage 2 in the augmented simulator."""
        if not self.config.enable_stage2:
            self._offline_policy = self._uninformed_policy()
            return None
        trainer = OfflineConfigurationTrainer(
            simulator=self.augmented_simulator,
            sla=self.config.sla,
            traffic=self.config.traffic,
            config=self.config.stage2,
        )
        result = trainer.run()
        self._offline_policy = result.policy
        return result

    def _uninformed_policy(self) -> OfflinePolicy:
        """A placeholder offline policy used when stage 2 is ablated away.

        The BNN is fitted on a handful of random points with pessimistic QoE
        so it carries essentially no information; the starting configuration
        is the mid-range deployed configuration.
        """
        state = (float(self.config.traffic), float(self.simulator.scenario.distance_m), 0.0)
        model = BayesianNeuralNetwork(input_dim=len(state) + 1 + 6, hidden_layers=(16,), seed=self.config.seed)
        rng = np.random.default_rng(self.config.seed)
        random_actions = rng.uniform(0.0, 1.0, size=(8, 6))
        from repro.core.policy import build_features  # local import avoids a cycle at module load

        features = build_features(state, self.config.sla, random_actions)
        model.fit(features, np.full(len(features), 0.5), epochs=30)
        return OfflinePolicy(
            qoe_model=model,
            sla=self.config.sla,
            state=state,
            best_config=self.config.deployed_config,
            best_qoe=0.5,
            best_usage=self.config.deployed_config.resource_usage(),
            multiplier=0.0,
        )

    # ----------------------------------------------------------------- stage 3
    def learn_online(self) -> OnlineLearningResult | None:
        """Run stage 3 against the real network."""
        if self._offline_policy is None:
            raise RuntimeError("train_offline() must run before learn_online()")
        if not self.config.enable_stage3:
            return None
        learner = OnlineConfigurationLearner(
            offline_policy=self._offline_policy,
            simulator=self.augmented_simulator,
            real_network=self.real_network,
            sla=self.config.sla,
            traffic=self.config.traffic,
            config=self.config.stage3,
            real_engine=self.real_engine,
        )
        return learner.run()

    # ------------------------------------------------------------------- whole
    def run_all(self) -> AtlasResult:
        """Run every enabled stage in order and return the aggregated result."""
        stage1 = self.build_simulator()
        stage2 = self.train_offline()
        stage3 = self.learn_online()
        return AtlasResult(stage1=stage1, stage2=stage2, stage3=stage3)
