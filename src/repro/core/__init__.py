"""Atlas' primary contribution: the three learn-to-configure stages.

* :mod:`repro.core.spaces` — the searchable configuration and
  simulation-parameter spaces (Tables 2 and 3).
* :mod:`repro.core.acquisition` — acquisition functions: EI, PI, UCB,
  GP-UCB and the clipped randomized GP-UCB (cRGP-UCB) of stage 3.
* :mod:`repro.core.penalty` — the adaptive Lagrangian penalisation of the
  SLA constraint (Eqs. 8–9 and 14–15).
* :mod:`repro.core.simulator_learning` — stage 1, the learning-based
  simulator (Alg. 1).
* :mod:`repro.core.offline_training` — stage 2, offline policy training in
  the augmented simulator (Alg. 2).
* :mod:`repro.core.online_learning` — stage 3, safe online learning on the
  real network (Alg. 3).
* :mod:`repro.core.atlas` — the end-to-end orchestration of the three stages.
"""

from repro.core.acquisition import (
    crgp_ucb_beta,
    expected_improvement,
    gp_ucb_beta,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.atlas import Atlas, AtlasConfig, AtlasResult
from repro.core.offline_training import (
    OfflineConfigurationTrainer,
    OfflineTrainingConfig,
    OfflineTrainingResult,
)
from repro.core.online_learning import (
    OnlineConfigurationLearner,
    OnlineLearningConfig,
    OnlineLearningResult,
)
from repro.core.penalty import AdaptiveMultiplier
from repro.core.policy import OfflinePolicy, OnlinePolicy, build_features
from repro.core.watchdog import (
    GuardedOnlineResult,
    OnlineWatchdog,
    RecoveryLedger,
    WatchdogConfig,
    run_unprotected,
)
from repro.core.simulator_learning import (
    ParameterSearchConfig,
    ParameterSearchResult,
    SimulatorParameterSearch,
)
from repro.core.spaces import ConfigurationSpace, SimulationParameterSpace

__all__ = [
    "Atlas",
    "AtlasConfig",
    "AtlasResult",
    "ConfigurationSpace",
    "SimulationParameterSpace",
    "AdaptiveMultiplier",
    "OfflinePolicy",
    "OnlinePolicy",
    "build_features",
    "SimulatorParameterSearch",
    "ParameterSearchConfig",
    "ParameterSearchResult",
    "OfflineConfigurationTrainer",
    "OfflineTrainingConfig",
    "OfflineTrainingResult",
    "OnlineConfigurationLearner",
    "OnlineLearningConfig",
    "OnlineLearningResult",
    "OnlineWatchdog",
    "WatchdogConfig",
    "GuardedOnlineResult",
    "RecoveryLedger",
    "run_unprotected",
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "gp_ucb_beta",
    "crgp_ucb_beta",
]
