"""Stage 2 — offline policy training in the augmented simulator (Alg. 2).

Learn the configuration policy that minimises resource usage subject to the
slice's QoE requirement (problem P1, Eqs. 5–7) by interacting only with the
augmented simulator.  The constrained problem is relaxed with the adaptive
Lagrangian penalisation of Sec. 5.2, the unknown QoE function is approximated
by a BNN over (state, threshold, action), and candidates are selected with
parallel Thompson sampling: each query slot draws one posterior function and
picks the candidate minimising the Lagrangian under that draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.penalty import AdaptiveMultiplier
from repro.core.policy import OfflinePolicy, build_features
from repro.core.spaces import ConfigurationSpace
from repro.engine import MeasurementEngine, MeasurementRequest
from repro.models.bnn import BayesianNeuralNetwork
from repro.prototype.slice_manager import SLA
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator

__all__ = [
    "OfflineTrainingConfig",
    "OfflineIterationRecord",
    "OfflineTrainingResult",
    "OfflineConfigurationTrainer",
]


@dataclass(frozen=True)
class OfflineTrainingConfig:
    """Hyper-parameters of the stage-2 offline training."""

    #: Total optimisation iterations (the paper uses 1000).
    iterations: int = 80
    #: Iterations of pure random exploration (the paper uses 100).
    initial_random: int = 15
    #: Parallel simulator queries per iteration (multiprocessing in the paper).
    parallel_queries: int = 4
    #: Candidate actions scored per query slot (the paper samples 10k+).
    candidate_pool: int = 1500
    #: Dual step size ``epsilon`` of the multiplier update (0.1 in the paper).
    multiplier_step: float = 0.1
    #: Duration (s) of each simulator measurement (60 s in the paper).
    measurement_duration_s: float = 30.0
    #: Epochs of BNN re-training per iteration.
    surrogate_epochs: int = 50
    #: Hidden layers of the QoE BNN.
    bnn_hidden_layers: tuple[int, ...] = (48, 48)
    #: Random seed.
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.parallel_queries < 1:
            raise ValueError("parallel_queries must be >= 1")
        if self.candidate_pool < self.parallel_queries:
            raise ValueError("candidate_pool must be at least parallel_queries")


@dataclass(frozen=True)
class OfflineIterationRecord:
    """One simulator query: the action, its usage and the measured QoE."""

    iteration: int
    config: tuple[float, ...]
    resource_usage: float
    qoe: float
    lagrangian: float
    multiplier: float


@dataclass
class OfflineTrainingResult:
    """Outcome of stage 2: the offline policy plus the training history."""

    policy: OfflinePolicy
    history: list[OfflineIterationRecord] = field(default_factory=list)

    def usage_per_iteration(self) -> np.ndarray:
        """Mean resource usage of the queries of each iteration (Fig. 16)."""
        return self._per_iteration("resource_usage")

    def qoe_per_iteration(self) -> np.ndarray:
        """Mean QoE of the queries of each iteration (Fig. 16)."""
        return self._per_iteration("qoe")

    def _per_iteration(self, attribute: str) -> np.ndarray:
        if not self.history:
            return np.zeros(0)
        iterations = sorted({r.iteration for r in self.history})
        return np.array(
            [
                np.mean([getattr(r, attribute) for r in self.history if r.iteration == iteration])
                for iteration in iterations
            ]
        )


class OfflineConfigurationTrainer:
    """Learns the offline configuration policy in the augmented simulator (Alg. 2)."""

    def __init__(
        self,
        simulator: NetworkSimulator,
        sla: SLA,
        traffic: int = 1,
        config: OfflineTrainingConfig | None = None,
        space: ConfigurationSpace | None = None,
        engine: MeasurementEngine | None = None,
    ) -> None:
        self.simulator = simulator
        self.sla = sla
        self.traffic = int(traffic)
        self.config = config if config is not None else OfflineTrainingConfig()
        self.space = space if space is not None else ConfigurationSpace()
        self.engine = (
            engine
            if engine is not None
            else MeasurementEngine(simulator, max_workers=self.config.parallel_queries)
        )
        self._rng = np.random.default_rng(self.config.seed)
        self.state = (float(self.traffic), float(simulator.scenario.distance_m), 0.0)
        self.multiplier = AdaptiveMultiplier(step_size=self.config.multiplier_step)
        self._qoe_model = BayesianNeuralNetwork(
            input_dim=len(self.state) + 1 + self.space.dim,
            hidden_layers=self.config.bnn_hidden_layers,
            seed=self.config.seed,
        )
        self._features: list[np.ndarray] = []
        self._qoes: list[float] = []
        self._records: list[OfflineIterationRecord] = []
        self._evaluation_counter = 0

    # -------------------------------------------------------------- evaluation
    def evaluate(self, action: SliceConfig, seed: int | None = None) -> tuple[float, float]:
        """Query the augmented simulator: return ``(resource_usage, qoe)`` of ``action``."""
        self._evaluation_counter += 1
        run_seed = seed if seed is not None else self._evaluation_counter
        return self._evaluate_batch([action], [run_seed])[0]

    def _evaluate_batch(
        self, actions: list[SliceConfig], seeds: list[int]
    ) -> list[tuple[float, float]]:
        """Measure one iteration's parallel queries as a single engine batch."""
        requests = [
            MeasurementRequest(
                config=action,
                traffic=self.traffic,
                duration=self.config.measurement_duration_s,
                seed=seed,
            )
            for action, seed in zip(actions, seeds)
        ]
        results = self.engine.run_batch(requests)
        return [
            (action.resource_usage(), result.qoe(self.sla.latency_threshold_ms))
            for action, result in zip(actions, results)
        ]

    # --------------------------------------------------------------- selection
    def _select_actions(self) -> list[SliceConfig]:
        pool = self.space.sample(self.config.candidate_pool, self._rng)
        pool_unit = self.space.normalize(pool)
        usage = self.space.resource_usage(pool)
        n_select = self.config.parallel_queries

        if len(self._qoes) < max(self.config.initial_random, 3):
            chosen = self._rng.choice(len(pool), size=n_select, replace=False)
            return [self.space.to_config(pool[i]) for i in chosen]

        features = build_features(self.state, self.sla, pool_unit)
        selected: list[int] = []
        for _ in range(n_select):
            qoe_draw = np.clip(self._qoe_model.sample_predict(features), 0.0, 1.0)
            lagrangian = self.multiplier.lagrangian(usage, qoe_draw, self.sla.availability)
            order = np.argsort(lagrangian)
            for index in order:
                if index not in selected:
                    selected.append(int(index))
                    break
        return [self.space.to_config(pool[i]) for i in selected]

    def _refit_surrogate(self) -> None:
        inputs = np.array(self._features)
        targets = np.array(self._qoes)
        self._qoe_model.fit(inputs, targets, epochs=self.config.surrogate_epochs)

    # --------------------------------------------------------------------- run
    def run(self) -> OfflineTrainingResult:
        """Execute the offline training and return the learned policy."""
        for iteration in range(1, self.config.iterations + 1):
            actions = self._select_actions()
            seeds = []
            for _ in actions:
                self._evaluation_counter += 1
                seeds.append(self._evaluation_counter)
            iteration_qoes = []
            for action, (usage, qoe) in zip(actions, self._evaluate_batch(actions, seeds)):
                iteration_qoes.append(qoe)
                lagrangian = float(
                    self.multiplier.lagrangian(usage, qoe, self.sla.availability)
                )
                self._records.append(
                    OfflineIterationRecord(
                        iteration=iteration,
                        config=tuple(action.to_array()),
                        resource_usage=usage,
                        qoe=qoe,
                        lagrangian=lagrangian,
                        multiplier=self.multiplier.value,
                    )
                )
                normalized = self.space.normalize(action.to_array())[0]
                self._features.append(build_features(self.state, self.sla, normalized)[0])
                self._qoes.append(qoe)
            # Dual update with the average QoE of this iteration's parallel queries.
            self.multiplier.update(float(np.mean(iteration_qoes)), self.sla.availability)
            if len(self._qoes) >= 3:
                self._refit_surrogate()

        return OfflineTrainingResult(policy=self._build_policy(), history=list(self._records))

    # ------------------------------------------------------------------ policy
    def _build_policy(self) -> OfflinePolicy:
        feasible = [r for r in self._records if r.qoe >= self.sla.availability]
        if feasible:
            best = min(feasible, key=lambda r: r.resource_usage)
        else:
            best = max(self._records, key=lambda r: r.qoe)
        return OfflinePolicy(
            qoe_model=self._qoe_model,
            sla=self.sla,
            state=self.state,
            best_config=SliceConfig.from_array(np.asarray(best.config)),
            best_qoe=best.qoe,
            best_usage=best.resource_usage,
            multiplier=self.multiplier.value,
        )
