"""Stage 3 — safe online learning in the real network (Alg. 3).

Every configuration chosen in this stage is applied to the real network, so
the learner must be safe (maintain the SLA during exploration) and sample
efficient (converge within ~100 online transitions).  Atlas achieves this
with three designs (Sec. 6.2):

* the online Gaussian process learns only the sim-to-real QoE *difference*
  ``G(psi) = Q(phi) - Q_s(phi)`` (Eq. 12), which is much simpler than the
  full QoE function the offline BNN already captured;
* the clipped randomized GP-UCB acquisition (cRGP-UCB) keeps exploration
  conservative while retaining a Bayesian regret bound;
* the augmented simulator is exploited between online queries to update the
  Lagrangian multiplier ``N`` times per online step (offline acceleration,
  Eq. 15), compensating for the single online query per interval.

The ablations of Figs. 22–24 are driven by the ``acquisition``,
``residual_model`` and ``offline_acceleration`` options.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.acquisition import (
    crgp_ucb_beta,
    expected_improvement,
    gp_ucb_beta,
    probability_of_improvement,
)
from repro.core.penalty import AdaptiveMultiplier
from repro.core.policy import OfflinePolicy, OnlinePolicy
from repro.core.spaces import ConfigurationSpace
from repro.engine import MeasurementEngine
from repro.metrics.regret import RegretTracker
from repro.models.bnn import BayesianNeuralNetwork
from repro.models.gp import GaussianProcessRegressor
from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator

__all__ = [
    "OnlineLearningConfig",
    "OnlineIterationRecord",
    "OnlineLearningResult",
    "OnlineConfigurationLearner",
]


@dataclass(frozen=True)
class OnlineLearningConfig:
    """Hyper-parameters of the stage-3 online learning."""

    #: Number of online iterations (100 in the paper).
    iterations: int = 40
    #: Offline multiplier updates per online step (``N = 20`` in the paper).
    offline_queries_per_step: int = 10
    #: Candidate actions scored per selection.
    candidate_pool: int = 1500
    #: Acquisition function: ``"crgp_ucb"`` (ours), ``"gp_ucb"``, ``"ei"``,
    #: ``"pi"`` or ``"thompson"`` (Fig. 22 ablation).
    acquisition: str = "crgp_ucb"
    #: Residual (sim-to-real difference) model: ``"gp"`` (ours), ``"bnn"``,
    #: ``"bnn_contd"`` or ``"none"`` (Fig. 23 ablation).
    residual_model: str = "gp"
    #: Whether the augmented simulator accelerates the multiplier update.
    offline_acceleration: bool = True
    #: Scaling parameter ``rho`` of cRGP-UCB (0.1 in the paper).
    rho: float = 0.1
    #: Clipping bound ``B`` of the exploration coefficient (10 in the paper).
    beta_clip: float = 10.0
    #: Dual step size ``epsilon`` (0.1 in the paper).
    multiplier_step: float = 0.1
    #: Duration (s) of each real-network measurement (60 s in the paper).
    measurement_duration_s: float = 30.0
    #: Duration (s) of each accelerated simulator query.
    simulator_duration_s: float = 20.0
    #: Random seed.
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate field values after dataclass initialisation."""
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.offline_queries_per_step < 0:
            raise ValueError("offline_queries_per_step must be >= 0")
        if self.acquisition not in ("crgp_ucb", "gp_ucb", "ei", "pi", "thompson"):
            raise ValueError(f"unknown acquisition {self.acquisition!r}")
        if self.residual_model not in ("gp", "bnn", "bnn_contd", "none"):
            raise ValueError(f"unknown residual model {self.residual_model!r}")


@dataclass(frozen=True)
class OnlineIterationRecord:
    """One online iteration: the applied action and what the real network delivered."""

    iteration: int
    config: tuple[float, ...]
    resource_usage: float
    qoe: float
    predicted_qoe: float
    residual: float
    multiplier: float
    beta: float
    sla_met: bool


@dataclass
class OnlineLearningResult:
    """Outcome of stage 3: the online policy, per-iteration history and regrets."""

    policy: OnlinePolicy
    history: list[OnlineIterationRecord] = field(default_factory=list)
    regret: RegretTracker = field(default_factory=RegretTracker)

    def usages(self) -> np.ndarray:
        """Resource usage of every online iteration (Fig. 20)."""
        return np.array([r.resource_usage for r in self.history], dtype=float)

    def qoes(self) -> np.ndarray:
        """Slice QoE of every online iteration (Fig. 21)."""
        return np.array([r.qoe for r in self.history], dtype=float)

    def average_usage_regret(self) -> float:
        """Average per-iteration resource-usage regret (Table 5)."""
        return self.regret.average_usage_regret()

    def average_qoe_regret(self) -> float:
        """Average per-iteration QoE regret (Table 5)."""
        return self.regret.average_qoe_regret()

    def sla_violation_rate(self) -> float:
        """Fraction of online iterations that violated the slice SLA."""
        if not self.history:
            return 0.0
        return float(np.mean([not r.sla_met for r in self.history]))


class _ResidualBNN:
    """BNN drop-in for the residual model (the "BNN" ablation of Fig. 23)."""

    def __init__(self, input_dim: int, seed: int) -> None:
        self._model = BayesianNeuralNetwork(input_dim=input_dim, hidden_layers=(32, 32), seed=seed)
        self._inputs: list[np.ndarray] = []
        self._targets: list[float] = []

    def fit(self, inputs, targets) -> None:
        """Fit the residual model on sim-to-real QoE differences."""
        self._inputs = [np.asarray(row, dtype=float) for row in np.atleast_2d(inputs)]
        self._targets = [float(v) for v in np.asarray(targets, dtype=float).ravel()]
        if len(self._targets) >= 2:
            self._model.fit(np.array(self._inputs), np.array(self._targets), epochs=40)

    def predict(self, inputs, return_std: bool = False):
        """Predict the residual mean and standard deviation."""
        arr = np.atleast_2d(np.asarray(inputs, dtype=float))
        if not self._model.is_fitted:
            mean = np.zeros(len(arr))
            return (mean, np.ones(len(arr))) if return_std else mean
        mean, std = self._model.predict(arr, n_samples=12)
        return (mean, std) if return_std else mean


class _ZeroResidual:
    """No residual model: the online estimate is the offline estimate alone."""

    def fit(self, inputs, targets) -> None:
        """No-op: the ablated residual model learns nothing."""
        return None

    def predict(self, inputs, return_std: bool = False):
        """Predict a zero residual (with zero uncertainty)."""
        arr = np.atleast_2d(np.asarray(inputs, dtype=float))
        mean = np.zeros(len(arr))
        return (mean, np.zeros(len(arr))) if return_std else mean


class OnlineConfigurationLearner:
    """Safe, sample-efficient online configuration learning (Alg. 3)."""

    def __init__(
        self,
        offline_policy: OfflinePolicy,
        simulator: NetworkSimulator,
        real_network: RealNetwork,
        sla: SLA | None = None,
        traffic: int = 1,
        config: OnlineLearningConfig | None = None,
        space: ConfigurationSpace | None = None,
        engine: MeasurementEngine | None = None,
        real_engine: MeasurementEngine | None = None,
    ) -> None:
        self.offline_policy = offline_policy
        self.simulator = simulator
        self.real_network = real_network
        self.sla = sla if sla is not None else offline_policy.sla
        self.traffic = int(traffic)
        self.config = config if config is not None else OnlineLearningConfig()
        self.space = space if space is not None else ConfigurationSpace()
        # Offline acceleration queries the augmented simulator; online
        # measurements go to the real network.  Both flow through engines so
        # execution and caching policies are uniform across the stages.
        self.engine = engine if engine is not None else MeasurementEngine(simulator)
        self.real_engine = real_engine if real_engine is not None else MeasurementEngine(real_network)
        self._rng = np.random.default_rng(self.config.seed)
        # The online stage starts from the offline stage's final multiplier; a
        # floor of 1.0 keeps the SLA term relevant even when the offline run
        # was short and its dual variable under-converged.
        self.multiplier = AdaptiveMultiplier(
            step_size=self.config.multiplier_step,
            initial=max(offline_policy.multiplier, 1.0),
        )
        self._residual = self._build_residual_model()
        self._residual_inputs: list[np.ndarray] = []
        self._residual_targets: list[float] = []
        self._records: list[OnlineIterationRecord] = []
        self._evaluation_counter = 0
        # The "BNN-Cont'd" ablation keeps training the offline BNN on real QoE.
        self._contd_inputs: list[np.ndarray] = []
        self._contd_targets: list[float] = []
        self._tracker = RegretTracker(qoe_requirement=self.sla.availability)
        #: Raw result of the most recent real-network measurement; watchdogs
        #: inspect it for stale telemetry the QoE scalar cannot express.
        self.last_measurement = None

    # ------------------------------------------------------------------ models
    def _build_residual_model(self):
        if self.config.residual_model == "gp":
            return GaussianProcessRegressor(seed=self.config.seed)
        if self.config.residual_model == "bnn":
            return _ResidualBNN(input_dim=self.space.dim, seed=self.config.seed)
        return _ZeroResidual()

    def _offline_qoe(self, pool_unit: np.ndarray) -> np.ndarray:
        return self.offline_policy.predict_qoe(pool_unit)

    def _combined_qoe(self, pool_unit: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Online QoE estimate (Eq. 12) and its uncertainty over a candidate pool."""
        offline_mean = self._offline_qoe(pool_unit)
        residual_mean, residual_std = self._residual.predict(pool_unit, return_std=True)
        combined = np.clip(offline_mean + residual_mean, 0.0, 1.0)
        return combined, np.asarray(residual_std, dtype=float)

    # --------------------------------------------------------------- selection
    def _exploration_beta(self, iteration: int) -> float:
        if self.config.acquisition == "crgp_ucb":
            return crgp_ucb_beta(iteration, self.config.rho, self.config.beta_clip, self._rng)
        if self.config.acquisition == "gp_ucb":
            return gp_ucb_beta(iteration, self.space.dim)
        return 0.0

    def _select_action(self, iteration: int) -> tuple[SliceConfig, float, float]:
        """Choose the next online action; returns (action, predicted QoE, beta)."""
        pool = self.space.sample(self.config.candidate_pool, self._rng)
        # Always include the incumbent best offline action so the learner can
        # fall back to a known-good configuration.
        pool = np.vstack([pool, self.offline_policy.best_config.to_array()])
        pool_unit = self.space.normalize(pool)
        usage = self.space.resource_usage(pool)
        qoe_mean, qoe_std = self._combined_qoe(pool_unit)
        requirement = self.sla.availability
        beta = self._exploration_beta(iteration)

        if self.config.acquisition in ("crgp_ucb", "gp_ucb"):
            # The optimistic QoE is deliberately not clipped to 1: clipping
            # would strip the exploration bonus from confident, high-QoE
            # candidates and bias the argmin toward cheap, uncertain ones.
            optimistic_qoe = qoe_mean + np.sqrt(beta) * qoe_std
            scores = self.multiplier.lagrangian(usage, optimistic_qoe, requirement)
            index = int(np.argmin(scores))
        elif self.config.acquisition == "thompson":
            draw = np.clip(qoe_mean + qoe_std * self._rng.standard_normal(len(qoe_mean)), 0.0, 1.0)
            scores = self.multiplier.lagrangian(usage, draw, requirement)
            index = int(np.argmin(scores))
        else:
            # EI / PI on the negated Lagrangian (maximisation form).
            lagrangian_mean = self.multiplier.lagrangian(usage, qoe_mean, requirement)
            sigma = np.maximum(self.multiplier.value * qoe_std, 1e-9)
            incumbent = float(np.min(lagrangian_mean))
            if self.config.acquisition == "ei":
                scores = expected_improvement(-lagrangian_mean, sigma, best=-incumbent)
            else:
                scores = probability_of_improvement(-lagrangian_mean, sigma, best=-incumbent)
            index = int(np.argmax(scores))

        action = self.space.to_config(pool[index])
        return action, float(qoe_mean[index]), beta

    # --------------------------------------------------- offline acceleration
    def _accelerate_multiplier(self) -> None:
        """Update the multiplier ``N`` times using the augmented simulator (Eq. 15)."""
        if not self.config.offline_acceleration:
            return
        for _ in range(self.config.offline_queries_per_step):
            pool = self.space.sample(min(self.config.candidate_pool, 500), self._rng)
            pool_unit = self.space.normalize(pool)
            usage = self.space.resource_usage(pool)
            qoe_mean, _ = self._combined_qoe(pool_unit)
            scores = self.multiplier.lagrangian(usage, qoe_mean, self.sla.availability)
            index = int(np.argmin(scores))
            action = self.space.to_config(pool[index])
            self._evaluation_counter += 1
            simulator_result = self.engine.run(
                action,
                traffic=self.traffic,
                duration=self.config.simulator_duration_s,
                seed=10_000 + self._evaluation_counter,
            )
            simulated_qoe = simulator_result.qoe(self.sla.latency_threshold_ms)
            residual = float(
                np.asarray(self._residual.predict(self.space.normalize(action.to_array()))).ravel()[0]
            )
            self.multiplier.update(
                float(np.clip(simulated_qoe + residual, 0.0, 1.0)), self.sla.availability
            )

    # ----------------------------------------------------------------- fitting
    def observe_residual(
        self, action: SliceConfig, real_qoe: float, traffic: int | None = None
    ) -> float:
        """Observe the sim-to-real difference at ``action`` and refit the residual model.

        ``traffic`` overrides the learner's base level so callers (the
        watchdog's recovery ledger) can fold fault-window telemetry back in
        at the traffic the measurement actually experienced.
        """
        normalized = self.space.normalize(action.to_array())[0]
        if self.config.residual_model == "bnn_contd":
            # Continue training the offline BNN on the real QoE directly.
            self._contd_inputs.append(self.offline_policy.features(normalized)[0])
            self._contd_targets.append(real_qoe)
            self.offline_policy.qoe_model.fit(
                np.array(self._contd_inputs),
                np.array(self._contd_targets),
                epochs=30,
                reset_scalers=False,
            )
            return 0.0
        self._evaluation_counter += 1
        simulator_result = self.engine.run(
            action,
            traffic=self.traffic if traffic is None else int(traffic),
            duration=self.config.simulator_duration_s,
            seed=20_000 + self._evaluation_counter,
        )
        simulated_qoe = simulator_result.qoe(self.sla.latency_threshold_ms)
        residual = real_qoe - simulated_qoe
        self._residual_inputs.append(normalized)
        self._residual_targets.append(residual)
        self._residual.fit(np.array(self._residual_inputs), np.array(self._residual_targets))
        return residual

    # Backwards-compatible internal alias.
    _update_residual = observe_residual

    def drop_residual_observations(self, count: int) -> int:
        """Discard the most recent residual observations and refit.

        The watchdog's fault-window rollback: observations taken while the
        network was lying (storm traffic, dropped telemetry scored as zero
        QoE) would poison the discrepancy model, so safe-mode entry unwinds
        them.  Returns how many observations were actually dropped.
        """
        count = min(int(count), len(self._residual_targets))
        if count <= 0:
            return 0
        del self._residual_inputs[-count:]
        del self._residual_targets[-count:]
        if self._residual_inputs:
            self._residual.fit(np.array(self._residual_inputs), np.array(self._residual_targets))
        else:
            self._residual = self._build_residual_model()
        return count

    # --------------------------------------------------------------------- run
    def step(self, iteration: int) -> OnlineIterationRecord:
        """Execute one online iteration (Alg. 3 body) and return its record.

        ``run()`` is just this in a loop; watchdogs drive it step by step so
        they can interpose safe-mode fallback between iterations.  The raw
        measurement lands in :attr:`last_measurement`.
        """
        self._accelerate_multiplier()

        if iteration == 1:
            # The very first online action is the best offline configuration.
            action = self.offline_policy.best_config
            predicted_qoe = self.offline_policy.best_qoe
            beta = 0.0
        else:
            action, predicted_qoe, beta = self._select_action(iteration)

        result = self.real_engine.run(
            action,
            traffic=self.traffic,
            duration=self.config.measurement_duration_s,
            seed=iteration,
        )
        self.last_measurement = result
        real_qoe = result.qoe(self.sla.latency_threshold_ms)
        usage = action.resource_usage()
        residual = self.observe_residual(action, real_qoe)
        self.multiplier.update(real_qoe, self.sla.availability)

        self._tracker.record(usage, real_qoe)
        record = OnlineIterationRecord(
            iteration=iteration,
            config=tuple(action.to_array()),
            resource_usage=usage,
            qoe=real_qoe,
            predicted_qoe=predicted_qoe,
            residual=residual,
            multiplier=self.multiplier.value,
            beta=beta,
            sla_met=self.sla.is_satisfied_by(real_qoe),
        )
        self._records.append(record)
        return record

    def finalize(self) -> OnlineLearningResult:
        """Close the episode: fix the regret optimum and build the online policy."""
        self._tracker.set_optimum_from_best()
        policy = self._build_policy()
        return OnlineLearningResult(
            policy=policy, history=list(self._records), regret=self._tracker
        )

    def run(self) -> OnlineLearningResult:
        """Execute the online learning and return the learned online policy."""
        for iteration in range(1, self.config.iterations + 1):
            self.step(iteration)
        return self.finalize()

    # ------------------------------------------------------------------ policy
    def _build_policy(self) -> OnlinePolicy:
        residual_gp = (
            self._residual
            if isinstance(self._residual, GaussianProcessRegressor)
            else GaussianProcessRegressor(seed=self.config.seed)
        )
        feasible = [r for r in self._records if r.sla_met]
        if feasible:
            best = min(feasible, key=lambda r: r.resource_usage)
        elif self._records:
            best = max(self._records, key=lambda r: r.qoe)
        else:
            best = None
        policy = OnlinePolicy(offline=self.offline_policy, residual_model=residual_gp)
        if best is not None:
            policy.best_config = SliceConfig.from_array(np.asarray(best.config))
            policy.best_qoe = best.qoe
            policy.best_usage = best.resource_usage
        return policy
