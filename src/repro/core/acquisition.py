"""Acquisition functions for the Bayesian-optimisation stages.

Stage 2 balances exploration and exploitation with (parallel) Thompson
sampling over a BNN surrogate; stage 3 uses the clipped randomized GP-UCB
(cRGP-UCB) acquisition the paper proposes for conservative exploration
(Sec. 6.2), and the evaluation compares it against the classic EI, PI and
GP-UCB acquisitions (Fig. 22).  All functions are written for *maximisation*
of the quantity being modelled; callers that minimise (e.g. the Lagrangian)
negate their objective first.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "gp_ucb_beta",
    "crgp_ucb_kappa",
    "crgp_ucb_beta",
]


def _validate(mean, std) -> tuple[np.ndarray, np.ndarray]:
    mu = np.asarray(mean, dtype=float).ravel()
    sigma = np.asarray(std, dtype=float).ravel()
    if mu.shape != sigma.shape:
        raise ValueError("mean and std must have the same shape")
    if np.any(sigma < 0):
        raise ValueError("std must be non-negative")
    return mu, np.maximum(sigma, 1e-12)


def expected_improvement(mean, std, best: float, xi: float = 0.01) -> np.ndarray:
    """Expected improvement over the incumbent ``best`` (maximisation)."""
    mu, sigma = _validate(mean, std)
    improvement = mu - best - xi
    z = improvement / sigma
    return improvement * stats.norm.cdf(z) + sigma * stats.norm.pdf(z)


def probability_of_improvement(mean, std, best: float, xi: float = 0.01) -> np.ndarray:
    """Probability of improving on the incumbent ``best`` (maximisation)."""
    mu, sigma = _validate(mean, std)
    return stats.norm.cdf((mu - best - xi) / sigma)


def upper_confidence_bound(mean, std, beta: float) -> np.ndarray:
    """UCB acquisition ``mu + sqrt(beta) * sigma``."""
    if beta < 0:
        raise ValueError("beta must be non-negative")
    mu, sigma = _validate(mean, std)
    return mu + np.sqrt(beta) * sigma


def gp_ucb_beta(iteration: int, dim: int, delta: float = 0.1) -> float:
    """The (large) exploration coefficient of GP-UCB [Srinivas et al., 2009].

    ``beta_t = 2 log(t^2 * 2 pi^2 / (3 delta)) + 2 d log(t^2 d b r ...)`` is
    commonly simplified in practice to ``2 log(d t^2 pi^2 / (6 delta))``,
    which is what this helper returns.  It grows with the iteration count and
    is typically much larger than what safe exploration tolerates — the
    motivation for cRGP-UCB.
    """
    if iteration < 1:
        raise ValueError("iteration must be >= 1")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    return float(2.0 * np.log(dim * iteration**2 * np.pi**2 / (6.0 * delta)))


def crgp_ucb_kappa(iteration: int, rho: float) -> float:
    """Shape parameter ``kappa_t`` of the randomized GP-UCB Gamma distribution (Eq. 13)."""
    if iteration < 1:
        raise ValueError("iteration must be >= 1")
    if rho <= 0:
        raise ValueError("rho must be positive")
    numerator = np.log((iteration**2 + 1.0) / np.sqrt(2.0 * np.pi))
    denominator = np.log(1.0 + rho / 2.0)
    return float(max(numerator / denominator, 1e-6))


def crgp_ucb_beta(
    iteration: int,
    rho: float = 0.1,
    clip_upper: float = 10.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Sample the clipped randomized GP-UCB exploration coefficient ``beta_t``.

    ``beta_t ~ Gamma(kappa_t, rho)`` (shape/scale parameterisation), then
    clipped to ``[0, clip_upper]`` for conservative exploration.  The paper
    uses ``rho = 0.1`` and a clipping bound of 10.
    """
    if clip_upper <= 0:
        raise ValueError("clip_upper must be positive")
    generator = rng if rng is not None else np.random.default_rng()
    kappa = crgp_ucb_kappa(iteration, rho)
    beta = generator.gamma(shape=kappa, scale=rho)
    return float(np.clip(beta, 0.0, clip_upper))
