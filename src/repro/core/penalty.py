"""Adaptive penalisation of the SLA constraint (Lagrangian primal–dual method).

The constrained configuration problem P1 (Eqs. 5–7) is relaxed into the
Lagrangian ``L(a, lambda) = F(phi) - lambda * (Q(phi) - E)`` (Eq. 8).  The
multiplier is updated by projected sub-gradient descent on the dual
(Eq. 9 offline, Eq. 15 online): it grows while the SLA is violated, steering
the primal minimisation toward feasible configurations, and shrinks back
toward zero when the constraint is comfortably met.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AdaptiveMultiplier"]


class AdaptiveMultiplier:
    """Projected sub-gradient dual update of the Lagrangian multiplier.

    Parameters
    ----------
    step_size:
        The dual step size ``epsilon`` (0.1 in the paper's evaluation).
    initial:
        Initial multiplier value (0 offline; the online stage starts from the
        final offline multiplier).
    """

    def __init__(self, step_size: float = 0.1, initial: float = 0.0) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if initial < 0:
            raise ValueError("initial multiplier must be non-negative")
        self.step_size = float(step_size)
        self._value = float(initial)
        self.history: list[float] = [self._value]

    @property
    def value(self) -> float:
        """Current multiplier ``lambda``."""
        return self._value

    def update(self, qoe_estimate: float, requirement: float) -> float:
        """Apply one dual update ``lambda <- [lambda - eps * (Q - E)]_+`` and return it."""
        if not 0.0 <= requirement <= 1.0:
            raise ValueError("requirement must be in [0, 1]")
        self._value = max(self._value - self.step_size * (float(qoe_estimate) - requirement), 0.0)
        self.history.append(self._value)
        return self._value

    def lagrangian(self, usage, qoe, requirement: float) -> np.ndarray:
        """Evaluate ``L = F - lambda * (Q - E)`` (vectorised over candidates)."""
        usage_arr = np.asarray(usage, dtype=float)
        qoe_arr = np.asarray(qoe, dtype=float)
        return usage_arr - self._value * (qoe_arr - requirement)

    def reset(self, value: float = 0.0) -> None:
        """Reset the multiplier (used between independent experiments)."""
        if value < 0:
            raise ValueError("multiplier must be non-negative")
        self._value = float(value)
        self.history = [self._value]
