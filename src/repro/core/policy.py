"""Policy containers: the offline BNN policy and the online BNN + GP policy.

Atlas' policy is the composition of two models (Sec. 6.2, Eq. 12): the
offline-trained BNN estimates the slice QoE ``Q_s(phi)`` as observed in the
augmented simulator, and the online Gaussian process learns only the
sim-to-real QoE *difference* ``G(psi)``.  The online QoE estimate is their
sum, clipped to ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.bnn import BayesianNeuralNetwork
from repro.models.gp import GaussianProcessRegressor
from repro.prototype.slice_manager import SLA
from repro.sim.config import SliceConfig

__all__ = ["build_features", "OfflinePolicy", "OnlinePolicy"]


def build_features(state: tuple[float, ...], sla: SLA, normalized_actions) -> np.ndarray:
    """Assemble surrogate-model inputs from state, SLA threshold and actions.

    The BNN of stage 2 takes "the network state ``s_t``, threshold ``Y`` and
    network configuration ``a_t``" as inputs (Sec. 5.2).  The state here is
    the scenario's observable vector (traffic, distance, extra users), the
    threshold is normalised by 1000 ms, and actions are already normalised to
    the unit cube.
    """
    actions = np.atleast_2d(np.asarray(normalized_actions, dtype=float))
    count = len(actions)
    state_arr = np.asarray(state, dtype=float).ravel()
    state_block = np.tile(state_arr, (count, 1))
    threshold_block = np.full((count, 1), sla.latency_threshold_ms / 1000.0)
    return np.hstack([state_block, threshold_block, actions])


@dataclass
class OfflinePolicy:
    """The result of stage 2: a QoE surrogate plus the best offline action.

    Attributes
    ----------
    qoe_model:
        BNN approximating the QoE in the augmented simulator.
    sla:
        The slice SLA the policy was trained for.
    state:
        The network state the policy was trained under.
    best_config:
        Best (lowest-usage SLA-satisfying) configuration found offline.
    best_qoe, best_usage:
        The simulator QoE and resource usage of that configuration.
    multiplier:
        Final Lagrangian multiplier of the offline stage (the online stage
        starts from this value).
    """

    qoe_model: BayesianNeuralNetwork
    sla: SLA
    state: tuple[float, ...]
    best_config: SliceConfig
    best_qoe: float
    best_usage: float
    multiplier: float

    def features(self, normalized_actions) -> np.ndarray:
        """Surrogate-model inputs for a batch of normalised actions."""
        return build_features(self.state, self.sla, normalized_actions)

    def predict_qoe(self, normalized_actions) -> np.ndarray:
        """Posterior-mean QoE estimate ``Q_s`` for a batch of normalised actions."""
        features = self.features(normalized_actions)
        estimate = self.qoe_model.mean_predict(features)
        return np.clip(np.asarray(estimate, dtype=float).ravel(), 0.0, 1.0)

    def sample_qoe(self, normalized_actions) -> np.ndarray:
        """One Thompson-sampling draw of the QoE estimate."""
        features = self.features(normalized_actions)
        draw = self.qoe_model.sample_predict(features)
        return np.clip(np.asarray(draw, dtype=float).ravel(), 0.0, 1.0)

    def predict_qoe_with_uncertainty(
        self, normalized_actions, n_samples: int = 16
    ) -> tuple[np.ndarray, np.ndarray]:
        """Monte-Carlo mean and standard deviation of the QoE estimate."""
        features = self.features(normalized_actions)
        mean, std = self.qoe_model.predict(features, n_samples=n_samples)
        return np.clip(mean, 0.0, 1.0), np.asarray(std, dtype=float)


@dataclass
class OnlinePolicy:
    """The result of stage 3: offline estimate plus the GP residual (Eq. 12)."""

    offline: OfflinePolicy
    residual_model: GaussianProcessRegressor
    best_config: SliceConfig | None = None
    best_qoe: float = 0.0
    best_usage: float = 1.0
    observations: list[tuple[np.ndarray, float]] = field(default_factory=list)

    def predict_qoe(self, normalized_actions, return_std: bool = False):
        """Online QoE estimate ``Q = Q_s + G`` (and the GP's std if requested)."""
        actions = np.atleast_2d(np.asarray(normalized_actions, dtype=float))
        offline_estimate = self.offline.predict_qoe(actions)
        residual, residual_std = self.residual_model.predict(actions, return_std=True)
        combined = np.clip(offline_estimate + residual, 0.0, 1.0)
        if return_std:
            return combined, residual_std
        return combined

    def predict_residual(self, normalized_actions, return_std: bool = False):
        """The GP's estimate of the sim-to-real QoE difference ``G``."""
        actions = np.atleast_2d(np.asarray(normalized_actions, dtype=float))
        return self.residual_model.predict(actions, return_std=return_std)

    def record_observation(self, normalized_action, residual: float) -> None:
        """Store one online observation of the sim-to-real difference and refit the GP."""
        action = np.asarray(normalized_action, dtype=float).ravel()
        self.observations.append((action, float(residual)))
        inputs = np.array([obs[0] for obs in self.observations])
        targets = np.array([obs[1] for obs in self.observations])
        self.residual_model.fit(inputs, targets)
