"""Reproduction of *Atlas: Automate Online Service Configuration in Network Slicing*.

Atlas (Liu, Choi, Han — CoNEXT 2022) automates the cross-domain service
configuration of end-to-end network slices with three interrelated stages:

1. a *learning-based simulator* whose simulation parameters are searched with
   Bayesian optimisation to minimise the sim-to-real discrepancy,
2. *offline training* of a configuration policy in the augmented simulator
   with a Bayesian neural network surrogate and parallel Thompson sampling,
3. safe *online learning* in the real network with a Gaussian-process model
   of the sim-to-real QoE difference and a conservative acquisition function.

This package provides the full system: the discrete-event network simulator
substrate (``repro.sim``, including multi-slice contention), the
real-network testbed substitute (``repro.prototype``), the learning stack
(``repro.models``), the three Atlas stages (``repro.core``), the baselines
the paper compares against (``repro.baselines``), the experiment runners
used by the benchmark harness (``repro.experiments``), the scenario catalog
of named slice workloads (``repro.scenarios``) and the ``python -m repro``
command line (``repro.cli``).
"""

from repro.core.atlas import Atlas, AtlasConfig
from repro.core.spaces import ConfigurationSpace, SimulationParameterSpace
from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.scenarios import get_scenario, list_scenarios
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.parameters import SimulationParameters

__all__ = [
    "Atlas",
    "AtlasConfig",
    "ConfigurationSpace",
    "SimulationParameterSpace",
    "SLA",
    "SliceConfig",
    "NetworkSimulator",
    "SimulationParameters",
    "RealNetwork",
    "get_scenario",
    "list_scenarios",
]

__version__ = "1.0.0"
