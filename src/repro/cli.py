"""The ``python -m repro`` command line: run any catalog scenario end to end.

Four subcommands cover the catalog workflow:

``list-scenarios``
    One line per registered catalog entry (name, slices, traffic, SLA).
``show <name>``
    Full detail of one entry: per-slice scenarios, deployed configurations,
    traffic traces, contention budget and stage-1 search defaults.
``run --scenario <name> --stage 1|2|3|all``
    Execute the Atlas pipeline on a catalog entry.  Stage budgets come from
    ``--scale`` (smoke / small / paper, the ``ATLAS_BENCH_SCALE`` levels)
    and every measurement engine uses ``--executor`` (auto / serial /
    thread / process / vectorized / sharded, the ``ATLAS_ENGINE_EXECUTOR``
    kinds; ``auto`` — the default — picks per batch).  Multi-slice entries
    measure all slices concurrently under resource contention before and
    after optimisation; dynamic entries replay their traffic trace during
    online learning.  On hostile entries ``--faults guarded`` runs stage 3
    under the :mod:`repro.core.watchdog` safe-mode watchdog with the
    scenario's fault schedule injected, and ``--faults unprotected`` runs
    the bare learner through the same faults for comparison — see
    ``docs/robustness.md``.
``eval``
    Replay the curated evaluation dataset over the whole catalog, score
    every run with the :mod:`repro.metrics` scorers, write the structured
    run layout plus ``EVAL_report.json`` (schema ``atlas-eval/1``) under
    ``--out``, and exit nonzero when the regression gate fails — see
    ``docs/evaluation.md``.  ``--store`` serves the replay through the
    persistent result store (embedding a cost ledger in the report);
    ``--history`` appends the run's summary to a trend file and flags
    metric drift against the previous run.

Service mode (see ``docs/service.md``) adds four more:

``serve --state <dir>``
    Run the job daemon against a service state tree: claims queued jobs,
    executes them through the measurement engine with the tree's
    persistent store attached, shuts down gracefully on SIGTERM/SIGINT
    (``--max-jobs`` / ``--idle-exit`` bound the run for CI).
``submit --state <dir> run|eval ...``
    Enqueue a stage run or an eval run and print its job id (works with
    or without a live daemon).
``status --state <dir> [job]``
    One line per known job, or the full JSON record (result, costs) of
    one job.
``tail --state <dir> <job> [--trace]``
    Print a job's captured stdout, or its structured trace stream.

``run`` and ``eval`` also accept ``--store <dir>`` to reuse the same
persistent store outside the daemon (one-shot warm runs).

Stage semantics: ``--stage 1`` searches simulation parameters only;
``--stage 2`` trains offline against the *original* simulator; ``--stage 3``
first trains the prerequisite offline policy, then learns online;
``--stage all`` chains 1 → 2 → 3 with stage 1's parameters feeding the
later stages.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.core.offline_training import OfflineConfigurationTrainer, OfflineTrainingConfig
from repro.core.online_learning import OnlineConfigurationLearner, OnlineLearningConfig
from repro.core.simulator_learning import ParameterSearchConfig, SimulatorParameterSearch
from repro.core.spaces import SimulationParameterSpace
from repro.engine.executors import EXECUTOR_ENV_VAR, EXECUTOR_KINDS
from repro.experiments.scale import SCALES, ExperimentScale, get_scale
from repro.experiments.scenarios import collect_online_dataset
from repro.scenarios import (
    ScenarioSpec,
    SliceWorkload,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
)
from repro.sim.multislice import CONTENDED_DIMENSIONS, MultiSliceResult, SliceRun

__all__ = ["build_parser", "main"]


# ------------------------------------------------------------------ formatting
def _sla_label(workload: SliceWorkload) -> str:
    sla = workload.sla
    return f"{sla.latency_threshold_ms:.0f}ms @ {100.0 * sla.availability:.0f}%"


def _traffic_label(workload: SliceWorkload) -> str:
    if workload.trace is None:
        return str(workload.scenario.traffic)
    return f"{type(workload.trace).__name__}(~{workload.mean_traffic()})"


def _print_multislice_round(result: MultiSliceResult, title: str) -> None:
    print(f"\n{result.format_table(title)}")


# -------------------------------------------------------------------- pipeline
def _stage1(
    workload: SliceWorkload, spec: ScenarioSpec, scale: ExperimentScale, duration: float, seed: int
) -> dict:
    """Search the simulation parameters against the workload's testbed (stage 1)."""
    simulator = workload.make_simulator(seed=seed)
    real_network = workload.make_real_network(seed=seed + 1)
    real_collection = collect_online_dataset(
        real_network,
        config=workload.deployed_config,
        traffic=workload.mean_traffic(),
        runs=scale.motivation_runs,
        duration_s=duration,
    )
    search = SimulatorParameterSearch(
        simulator=simulator,
        real_collection=real_collection,
        deployed_config=workload.deployed_config,
        space=SimulationParameterSpace(
            original=simulator.params, distance_threshold=spec.stage1_distance_threshold
        ),
        config=ParameterSearchConfig(
            iterations=scale.stage1_iterations,
            initial_random=scale.stage1_initial_random,
            parallel_queries=scale.stage1_parallel,
            candidate_pool=scale.stage1_candidate_pool,
            measurement_duration_s=duration,
            alpha=spec.stage1_alpha,
            seed=seed,
        ),
        traffic=workload.mean_traffic(),
    )
    result = search.run()
    print(
        f"  stage 1: discrepancy {result.original_discrepancy:.3f} -> "
        f"{result.best_discrepancy:.3f} (parameter distance {result.best_distance:.3f})"
    )
    return {
        "original_discrepancy": result.original_discrepancy,
        "best_discrepancy": result.best_discrepancy,
        "best_distance": result.best_distance,
        "best_parameters": list(result.best_parameters.to_array()),
        "_result": result,
    }


def _stage2(
    workload: SliceWorkload,
    scale: ExperimentScale,
    duration: float,
    seed: int,
    params=None,
    announce: bool = True,
) -> dict:
    """Train the offline configuration policy in the (augmented) simulator (stage 2)."""
    simulator = workload.make_simulator(seed=seed)
    if params is not None:
        simulator = simulator.with_params(params)
    trainer = OfflineConfigurationTrainer(
        simulator=simulator,
        sla=workload.sla,
        traffic=workload.mean_traffic(),
        config=OfflineTrainingConfig(
            iterations=scale.stage2_iterations,
            initial_random=scale.stage2_initial_random,
            parallel_queries=scale.stage2_parallel,
            candidate_pool=scale.stage2_candidate_pool,
            measurement_duration_s=duration,
            seed=seed,
        ),
    )
    result = trainer.run()
    policy = result.policy
    if announce:
        print(
            f"  stage 2: best offline config at {100 * policy.best_usage:.1f}% usage, "
            f"simulator QoE {policy.best_qoe:.3f}"
        )
    return {
        "best_usage": policy.best_usage,
        "best_qoe": policy.best_qoe,
        "best_config": list(policy.best_config.to_array()),
        "_policy": policy,
        "_simulator": simulator,
    }


def _stage3(
    workload: SliceWorkload,
    scale: ExperimentScale,
    duration: float,
    seed: int,
    offline: dict,
) -> dict:
    """Learn online against the real network (stage 3), replaying any traffic trace."""
    real_network = workload.make_real_network(seed=seed + 1)
    levels = [workload.traffic_at(step) for step in range(scale.stage3_iterations)]
    segments: list[tuple[int, int]] = []  # (traffic level, iterations)
    for level in levels:
        if segments and segments[-1][0] == level:
            segments[-1] = (level, segments[-1][1] + 1)
        else:
            segments.append((level, 1))
    usages: list[float] = []
    qoes: list[float] = []
    violations = 0
    last_config = None
    for index, (level, iterations) in enumerate(segments):
        learner = OnlineConfigurationLearner(
            offline_policy=offline["_policy"],
            simulator=offline["_simulator"],
            real_network=real_network,
            sla=workload.sla,
            traffic=level,
            config=OnlineLearningConfig(
                iterations=iterations,
                offline_queries_per_step=scale.stage3_offline_queries,
                candidate_pool=scale.stage3_candidate_pool,
                measurement_duration_s=duration,
                simulator_duration_s=max(duration / 2.0, 5.0),
                seed=seed + index,
            ),
        )
        result = learner.run()
        usages.extend(result.usages().tolist())
        qoes.extend(result.qoes().tolist())
        violations += sum(1 for record in result.history if not record.sla_met)
        last_config = result.policy.best_config
    iterations_total = max(1, len(usages))
    mean_usage = sum(usages) / iterations_total
    mean_qoe = sum(qoes) / iterations_total
    print(
        f"  stage 3: {len(segments)} traffic segment(s), mean usage {100 * mean_usage:.1f}%, "
        f"mean QoE {mean_qoe:.3f}, SLA violations {violations}/{len(usages)}"
    )
    best_config = last_config if last_config is not None else offline["_policy"].best_config
    return {
        "segments": [{"traffic": level, "iterations": n} for level, n in segments],
        "mean_usage": mean_usage,
        "mean_qoe": mean_qoe,
        "sla_violations": violations,
        "best_config": list(best_config.to_array()),
        "_best_config": best_config,
    }


def _stage3_faulted(
    workload: SliceWorkload,
    spec: ScenarioSpec,
    scale: ExperimentScale,
    duration: float,
    seed: int,
    offline: dict,
    mode: str,
) -> dict:
    """Run the fault-injected online episode (stage 3 under ``--faults``).

    The whole episode runs as one step-indexed chaos run at the workload's
    representative traffic level — the fault schedule, not the trace
    segmentation, owns the timeline.  ``guarded`` supervises the learner
    with the watchdog (safe-mode fallback to the deployed configuration);
    ``unprotected`` is the control arm that learns straight through every
    fault window.
    """
    from repro.core.watchdog import OnlineWatchdog, run_unprotected

    learner = OnlineConfigurationLearner(
        offline_policy=offline["_policy"],
        simulator=offline["_simulator"],
        real_network=workload.make_real_network(seed=seed + 1),
        sla=workload.sla,
        traffic=workload.mean_traffic(),
        config=OnlineLearningConfig(
            iterations=scale.stage3_iterations,
            offline_queries_per_step=scale.stage3_offline_queries,
            candidate_pool=scale.stage3_candidate_pool,
            measurement_duration_s=duration,
            simulator_duration_s=max(duration / 2.0, 5.0),
            seed=seed,
        ),
    )
    if mode == "guarded":
        guarded = OnlineWatchdog(
            learner,
            fault_schedule=spec.faults,
            fallback_config=workload.deployed_config,
        ).run()
        summary = guarded.summary()
        print(
            f"  stage 3 (faults: guarded): {summary['steps']} steps, "
            f"violation rate {summary['sla_violation_rate']:.3f}, "
            f"safe-mode entries {summary['safe_mode_entries']}, "
            f"recoveries {summary['recoveries']}, dropped {summary['dropped_steps']}, "
            f"final mode {summary['final_mode']}"
        )
        return {"faults": "guarded", "watchdog": summary}
    result = run_unprotected(learner, spec.faults)
    rate = result.sla_violation_rate()
    violations = sum(1 for record in result.history if not record.sla_met)
    print(
        f"  stage 3 (faults: unprotected): {len(result.history)} steps, "
        f"violation rate {rate:.3f} ({violations}/{len(result.history)})"
    )
    return {
        "faults": "unprotected",
        "steps": len(result.history),
        "sla_violations": violations,
        "sla_violation_rate": rate,
    }


def _run_workload(
    workload: SliceWorkload,
    spec: ScenarioSpec,
    stages: set[str],
    scale: ExperimentScale,
    duration: float,
    seed: int,
    faults: str = "off",
) -> dict:
    """Run the requested stages for one slice workload and return its summary."""
    print(
        f"\n[{workload.name}] traffic {_traffic_label(workload)}, SLA {_sla_label(workload)}"
    )
    summary: dict = {"slice": workload.name}
    params = None
    if "1" in stages:
        summary["stage1"] = _stage1(workload, spec, scale, duration, seed)
        params = summary["stage1"]["_result"].best_parameters
    offline = None
    if "2" in stages:
        offline = _stage2(workload, scale, duration, seed, params=params)
        summary["stage2"] = offline
    if "3" in stages:
        if offline is None:
            print("  stage 3: training prerequisite offline policy first")
            offline = _stage2(workload, scale, duration, seed, params=params, announce=False)
        if faults != "off":
            summary["stage3"] = _stage3_faulted(
                workload, spec, scale, duration, seed, offline, faults
            )
        else:
            summary["stage3"] = _stage3(workload, scale, duration, seed, offline)
    return summary


# ------------------------------------------------------------------- commands
def cmd_list_scenarios(args: argparse.Namespace) -> int:
    """Print the catalog as one line per entry."""
    specs = list_scenarios()
    print(f"{'name':<26} {'slices':>6} {'traffic':<22} {'SLA':<14} description")
    for spec in specs:
        primary = spec.primary
        sla = _sla_label(primary) if not spec.is_multislice else "per-slice"
        traffic = (
            _traffic_label(primary)
            if not spec.is_multislice
            else "+".join(str(w.scenario.traffic) for w in spec.slices)
        )
        print(f"{spec.name:<26} {len(spec.slices):>6} {traffic:<22} {sla:<14} {spec.description}")
    print(f"{len(specs)} scenarios registered")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """Print full detail of one catalog entry."""
    spec = get_scenario(args.scenario)
    print(f"{spec.name}: {spec.description}")
    print(f"tags: {', '.join(spec.tags) or '-'}")
    print(
        f"stage-1 search defaults: alpha={spec.stage1_alpha}, "
        f"distance threshold H={spec.stage1_distance_threshold}"
    )
    if spec.is_multislice:
        budget = ", ".join(f"{dim}={spec.budget.total(dim):g}" for dim in CONTENDED_DIMENSIONS)
        print(f"shared budget: {budget}")
    for workload in spec.slices:
        scenario = workload.scenario
        print(f"\nslice {workload.name!r}: SLA {_sla_label(workload)}")
        print(
            f"  workload: traffic {_traffic_label(workload)}, "
            f"frames {scenario.frame_size_mean_bytes / 1e3:.1f}±{scenario.frame_size_std_bytes / 1e3:.1f} kB up / "
            f"{scenario.result_size_bytes / 1e3:.1f} kB down, "
            f"compute {scenario.compute_time_mean_ms:.0f}±{scenario.compute_time_std_ms:.0f} ms"
        )
        config = workload.deployed_config
        print(
            f"  deployed: {config.bandwidth_ul:g}/{config.bandwidth_dl:g} PRBs, "
            f"{config.backhaul_bw:g} Mbps backhaul, {config.cpu_ratio:g} CPU "
            f"({100 * config.resource_usage():.1f}% usage)"
        )
        if workload.trace is not None:
            preview = ", ".join(str(level) for level in workload.trace.levels(12))
            print(f"  trace: {workload.trace!r} -> [{preview}, ...]")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run the requested stages of the pipeline on one catalog entry."""
    ledger = None
    if args.store is not None:
        from repro.engine.cache import attach_shared_store, shared_cache
        from repro.service.costs import CostLedger

        store = attach_shared_store(args.store)
        ledger = CostLedger(cache=shared_cache(), store=store)
    spec = get_scenario(args.scenario)
    scale = get_scale(args.scale)
    duration = args.duration if args.duration is not None else scale.measurement_duration_s
    stages = {"1", "2", "3"} if args.stage == "all" else {args.stage}
    if args.faults != "off":
        if spec.faults is None:
            print(
                f"error: scenario {spec.name!r} has no fault schedule; "
                "--faults needs a hostile catalog entry (tag 'hostile')",
                file=sys.stderr,
            )
            return 2
        if "3" not in stages:
            print("error: --faults applies to stage 3 (use --stage 3 or all)", file=sys.stderr)
            return 2
        if spec.is_multislice:
            print("error: --faults does not support multi-slice scenarios", file=sys.stderr)
            return 2
    previous_executor = os.environ.get(EXECUTOR_ENV_VAR)
    if args.executor is not None:
        os.environ[EXECUTOR_ENV_VAR] = args.executor
    try:
        print(
            f"scenario {spec.name!r} | stage {args.stage} | scale {scale.name} | "
            f"executor {os.environ.get(EXECUTOR_ENV_VAR, 'auto')} | "
            f"measurement duration {duration:g}s"
        )
        summary: dict = {
            "scenario": spec.name,
            "stage": args.stage,
            "scale": scale.name,
            "slices": [],
        }
        before = after = None
        if spec.is_multislice:
            real_network = spec.primary.make_real_network(seed=args.seed + 1)
            before = real_network.measure_slices(
                spec.slice_runs(seed=args.seed + 9000), budget=spec.budget, duration=duration
            )
            _print_multislice_round(before, "contended round (deployed configurations):")
        for workload in spec.slices:
            summary["slices"].append(
                _run_workload(
                    workload, spec, stages, scale, duration, seed=args.seed, faults=args.faults
                )
            )
        # An "optimised" contended round only makes sense when a stage that
        # produces configurations actually ran; stage 1 alone learns
        # simulation parameters, not allocations.
        if spec.is_multislice and stages & {"2", "3"}:
            learned_runs = []
            for index, (workload, slice_summary) in enumerate(zip(spec.slices, summary["slices"])):
                if "stage3" in slice_summary:
                    config = slice_summary["stage3"]["_best_config"]
                else:
                    config = slice_summary["stage2"]["_policy"].best_config
                learned_runs.append(
                    SliceRun(
                        name=workload.name,
                        config=config,
                        scenario=workload.scenario,
                        sla=workload.sla,
                        seed=args.seed + 9100 + index,
                    )
                )
            real_network = spec.primary.make_real_network(seed=args.seed + 1)
            after = real_network.measure_slices(
                learned_runs, budget=spec.budget, duration=duration
            )
            _print_multislice_round(after, "contended round (optimised configurations):")
        costs = ledger.finish() if ledger is not None else None
        if costs is not None:
            cache = costs["cache"] or {}
            print(
                f"\ncosts: {costs['engine_requests']} measurements executed "
                f"({costs['sim_seconds']:g} sim-s), cache served "
                f"{cache.get('memory_hits', 0)} from memory + "
                f"{cache.get('store_hits', 0)} from the store "
                f"(hit rate {cache.get('hit_rate', 0.0):.1%})"
            )
        if args.json is not None:
            payload = _jsonable(
                {
                    **summary,
                    "multislice_before": before.summary() if before is not None else None,
                    "multislice_after": after.summary() if after is not None else None,
                    "costs": costs,
                }
            )
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"\nwrote JSON summary to {args.json}")
        print("\ndone")
        return 0
    finally:
        if args.executor is not None:
            if previous_executor is None:
                os.environ.pop(EXECUTOR_ENV_VAR, None)
            else:
                os.environ[EXECUTOR_ENV_VAR] = previous_executor


def cmd_eval(args: argparse.Namespace) -> int:
    """Replay the eval dataset, write the report, exit on the gate verdict."""
    from repro.evalharness import evaluate, render_report, write_report

    store = None
    if args.store is not None:
        from repro.service.store import ResultStore

        store = ResultStore(args.store)
    report, gate, _ = evaluate(
        cases_path=args.cases,
        group=args.group,
        scenario=args.eval_scenario,
        seeds=args.seeds,
        executor=args.executor,
        out_dir=args.out,
        determinism=not args.no_determinism,
        store=store,
    )
    report_path = write_report(report, Path(args.out) / "EVAL_report.json")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
        print(f"wrote {report_path}")
    if args.history is not None:
        from repro.evalharness import append_trend, render_drift

        outcome = append_trend(report, args.history)
        record = outcome["record"]
        print(f"appended run {record['run']} to {Path(args.history) / 'trend.jsonl'}")
        drift_text = render_drift(outcome["drift"])
        if drift_text:
            print(drift_text)
    return 0 if gate.passed else 1


# ------------------------------------------------------------- service mode
def cmd_serve(args: argparse.Namespace) -> int:
    """Run the service daemon against a state directory."""
    from repro.service.daemon import serve

    return serve(
        args.state,
        workers=args.workers,
        max_jobs=args.max_jobs,
        idle_exit_s=args.idle_exit,
        store_max_bytes=args.store_max_bytes,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """Enqueue a job and print its id (the whole stdout, for shell capture)."""
    from repro.service import submit_job

    if args.job_kind == "run":
        params = {
            "scenario": args.scenario,
            "stage": args.stage,
            "scale": args.scale,
            "seed": args.seed,
            "executor": args.executor,
            "faults": args.faults,
            "duration": args.duration,
        }
    else:
        params = {
            "group": args.group,
            "scenario": args.eval_scenario,
            "seeds": args.seeds,
            "executor": args.executor,
            "determinism": args.determinism,
        }
    spec = submit_job(args.state, args.job_kind, {k: v for k, v in params.items() if v is not None})
    print(spec.id)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """List all jobs, or print one job's full JSON record."""
    from repro.service import job_record, list_jobs

    if args.job is not None:
        print(json.dumps(job_record(args.state, args.job), indent=2, sort_keys=True))
        return 0
    records = list_jobs(args.state)
    if not records:
        print("no jobs")
        return 0
    print(f"{'id':<30} {'kind':<5} {'status':<8} detail")
    for record in records:
        result = record.get("result", {})
        costs = result.get("costs") or {}
        cache = costs.get("cache") or {}
        detail = ""
        if costs:
            detail = (
                f"{costs.get('engine_requests', 0)} executed, "
                f"{cache.get('memory_hits', 0)}+{cache.get('store_hits', 0)} cached, "
                f"{costs.get('wall_time_s', 0.0):.1f}s"
            )
        if result.get("error"):
            detail = result["error"]
        print(f"{record['id']:<30} {record['kind']:<5} {record['status']:<8} {detail}")
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    """Print a job's captured stdout (or, with --trace, its span stream)."""
    from repro.service import ServicePaths

    job_dir = ServicePaths(Path(args.state)).job_dir(args.job)
    path = job_dir / ("trace.jsonl" if args.trace else "log.txt")
    if not path.exists():
        print(f"error: {path} does not exist (job not started yet?)", file=sys.stderr)
        return 2
    sys.stdout.write(path.read_text())
    return 0


def _jsonable(value):
    """Drop private keys and coerce numpy scalars so ``json.dump`` succeeds."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items() if not k.startswith("_")}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


# --------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the Atlas reproduction pipeline on any scenario-catalog entry.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-scenarios", help="list every registered catalog entry"
    )
    list_parser.set_defaults(handler=cmd_list_scenarios)

    show_parser = subparsers.add_parser("show", help="show full detail of one catalog entry")
    show_parser.add_argument("scenario", help="catalog entry name")
    show_parser.set_defaults(handler=cmd_show)

    run_parser = subparsers.add_parser(
        "run", help="run the pipeline stages on one catalog entry"
    )
    run_parser.add_argument("--scenario", required=True, help="catalog entry name")
    run_parser.add_argument(
        "--stage",
        choices=("1", "2", "3", "all"),
        default="all",
        help="which Atlas stage(s) to run (default: all)",
    )
    run_parser.add_argument(
        "--scale",
        choices=tuple(sorted(SCALES)),
        default=None,
        help="iteration budgets and durations (default: the ATLAS_BENCH_SCALE env var, then 'small')",
    )
    run_parser.add_argument(
        "--executor",
        choices=tuple(sorted(EXECUTOR_KINDS)),
        default=None,
        help=(
            "measurement-engine executor (default: the ATLAS_ENGINE_EXECUTOR env var, then "
            "'auto' — adaptive per-batch selection; 'sharded' composes the process and "
            "vectorized speedups)"
        ),
    )
    run_parser.add_argument("--seed", type=int, default=0, help="base random seed (default: 0)")
    run_parser.add_argument(
        "--faults",
        choices=("off", "guarded", "unprotected"),
        default="off",
        help=(
            "inject the scenario's fault schedule into stage 3 (hostile catalog entries "
            "only): 'guarded' runs the learner under the watchdog, 'unprotected' runs it "
            "bare (default: off)"
        ),
    )
    run_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="per-measurement duration in simulated seconds (default: the scale's duration)",
    )
    run_parser.add_argument("--json", default=None, help="write a JSON summary to this path")
    run_parser.add_argument(
        "--store",
        default=None,
        help=(
            "persistent result-store directory: measurements are served from and "
            "written through to it, and a cost ledger is printed (and embedded in "
            "--json output)"
        ),
    )
    run_parser.set_defaults(handler=cmd_run)

    eval_parser = subparsers.add_parser(
        "eval",
        help="replay the curated eval dataset and run the regression gate",
    )
    eval_parser.add_argument(
        "--group", default=None, help="only replay cases in this group (disables coverage check)"
    )
    eval_parser.add_argument(
        "--scenario",
        dest="eval_scenario",
        default=None,
        help="only replay cases for this catalog scenario (disables coverage check)",
    )
    eval_parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="override every case's replay seeds (default: the seeds in cases.yaml)",
    )
    eval_parser.add_argument(
        "--executor",
        choices=tuple(sorted(EXECUTOR_KINDS)),
        default=None,
        help=(
            "measurement-engine executor; the replay pins one numerics family, so the "
            "choice cannot change any metric (default: the ATLAS_ENGINE_EXECUTOR env "
            "var, then 'auto')"
        ),
    )
    eval_parser.add_argument(
        "--out",
        default="eval_out",
        help="run-layout root; EVAL_report.json is written here (default: eval_out)",
    )
    eval_parser.add_argument(
        "--cases",
        default=None,
        help="alternative case-registry file (default: the checked-in cases.yaml)",
    )
    eval_parser.add_argument(
        "--json",
        action="store_true",
        help="print the atlas-eval/1 report JSON instead of the human-readable summary",
    )
    eval_parser.add_argument(
        "--no-determinism",
        action="store_true",
        help="skip the gate's replay-twice determinism check (quick local runs)",
    )
    eval_parser.add_argument(
        "--store",
        default=None,
        help=(
            "persistent result-store directory: the replay is served from it where "
            "possible and a cost ledger lands in the report's provenance.costs"
        ),
    )
    eval_parser.add_argument(
        "--history",
        default=None,
        help=(
            "trend directory: append this run's summary to <dir>/trend.jsonl and "
            "flag metric drift against the previous run"
        ),
    )
    eval_parser.set_defaults(handler=cmd_eval)

    serve_parser = subparsers.add_parser(
        "serve", help="run the service daemon against a state directory"
    )
    serve_parser.add_argument("--state", required=True, help="service state directory")
    serve_parser.add_argument(
        "--workers", type=int, default=1, help="concurrent job executors (default: 1)"
    )
    serve_parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after executing this many jobs (default: run until signalled)",
    )
    serve_parser.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after the queue has been idle for this many seconds",
    )
    serve_parser.add_argument(
        "--store-max-bytes",
        type=int,
        default=2 * 1024**3,
        help="persistent-store size bound in bytes (default: 2 GiB)",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit", help="enqueue a job (prints the job id)"
    )
    submit_parser.add_argument("--state", required=True, help="service state directory")
    submit_sub = submit_parser.add_subparsers(dest="job_kind", required=True)
    submit_run = submit_sub.add_parser("run", help="enqueue a pipeline stage run")
    submit_run.add_argument("--scenario", required=True, help="catalog entry name")
    submit_run.add_argument("--stage", choices=("1", "2", "3", "all"), default="all")
    submit_run.add_argument("--scale", choices=tuple(sorted(SCALES)), default=None)
    submit_run.add_argument("--executor", choices=tuple(sorted(EXECUTOR_KINDS)), default=None)
    submit_run.add_argument("--seed", type=int, default=0)
    submit_run.add_argument("--faults", choices=("off", "guarded", "unprotected"), default="off")
    submit_run.add_argument("--duration", type=float, default=None)
    submit_eval = submit_sub.add_parser("eval", help="enqueue an eval-harness run")
    submit_eval.add_argument("--group", default=None, help="only replay cases in this group")
    submit_eval.add_argument(
        "--scenario", dest="eval_scenario", default=None, help="only replay this scenario's cases"
    )
    submit_eval.add_argument("--seeds", type=int, nargs="+", default=None)
    submit_eval.add_argument("--executor", choices=tuple(sorted(EXECUTOR_KINDS)), default=None)
    submit_eval.add_argument(
        "--determinism",
        action="store_true",
        help=(
            "also run the gate's replay-twice determinism check (off by default in "
            "service mode: the check reruns without the store and doubles the cost)"
        ),
    )
    submit_parser.set_defaults(handler=cmd_submit)

    status_parser = subparsers.add_parser(
        "status", help="list jobs, or show one job's full record"
    )
    status_parser.add_argument("--state", required=True, help="service state directory")
    status_parser.add_argument("job", nargs="?", default=None, help="job id (default: list all)")
    status_parser.set_defaults(handler=cmd_status)

    tail_parser = subparsers.add_parser(
        "tail", help="print a job's captured stdout or trace stream"
    )
    tail_parser.add_argument("--state", required=True, help="service state directory")
    tail_parser.add_argument("job", help="job id")
    tail_parser.add_argument(
        "--trace", action="store_true", help="print the structured trace instead of stdout"
    )
    tail_parser.set_defaults(handler=cmd_tail)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments and dispatch to the chosen subcommand."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except UnknownScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:
        from repro.evalharness.dataset import EvalDatasetError

        if isinstance(error, EvalDatasetError):
            print(f"error: {error}", file=sys.stderr)
            return 2
        raise
