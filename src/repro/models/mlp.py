"""Deterministic multi-layer perceptron with manual backpropagation.

This is the deterministic counterpart of the Bayesian neural network used by
Atlas.  It backs the DLDA baseline (teacher/student DNNs of [Shi et al.,
NSDI'21]) and provides the forward/backward machinery reused by the BNN.
Inputs and targets are standardised internally so callers can pass raw
network configurations and latencies/QoEs.
"""

from __future__ import annotations

import numpy as np

from repro.models.optimizers import make_optimizer
from repro.models.scaler import StandardScaler

__all__ = ["MLPRegressor", "relu", "relu_grad"]


def relu(values: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(values, 0.0)


def relu_grad(pre_activation: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation values."""
    return (pre_activation > 0.0).astype(float)


class MLPRegressor:
    """Fully connected regression network trained with mini-batch gradient descent.

    Parameters
    ----------
    input_dim:
        Number of input features.
    hidden_layers:
        Sizes of the hidden layers; the paper uses ``(128, 256, 256, 128)``,
        the default here is smaller for speed and can be overridden.
    output_dim:
        Number of regression outputs (1 for QoE / latency surrogates).
    learning_rate, optimizer:
        Optimiser configuration (``"adam"`` by default, ``"adadelta"``
        matches the paper's setup).
    l2:
        Weight-decay coefficient.
    seed:
        Seed for weight initialisation and mini-batch shuffling.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_layers: tuple[int, ...] = (64, 64),
        output_dim: int = 1,
        learning_rate: float = 1e-2,
        optimizer: str = "adam",
        l2: float = 1e-5,
        seed: int | None = None,
    ) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be >= 1")
        if output_dim < 1:
            raise ValueError("output_dim must be >= 1")
        self.input_dim = input_dim
        self.hidden_layers = tuple(int(h) for h in hidden_layers)
        self.output_dim = output_dim
        self.l2 = l2
        self._rng = np.random.default_rng(seed)
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        self._init_parameters()
        self._optimizer = make_optimizer(optimizer, self.weights + self.biases, learning_rate)
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ setup
    def _layer_sizes(self) -> list[tuple[int, int]]:
        dims = [self.input_dim, *self.hidden_layers, self.output_dim]
        return list(zip(dims[:-1], dims[1:]))

    def _init_parameters(self) -> None:
        self.weights = []
        self.biases = []
        for fan_in, fan_out in self._layer_sizes():
            limit = np.sqrt(2.0 / fan_in)
            self.weights.append(self._rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # --------------------------------------------------------------- internals
    def _forward(self, inputs: np.ndarray) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Forward pass returning output, per-layer activations and pre-activations."""
        activations = [inputs]
        pre_activations = []
        hidden = inputs
        last = len(self.weights) - 1
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre = hidden @ weight + bias
            pre_activations.append(pre)
            hidden = pre if index == last else relu(pre)
            activations.append(hidden)
        return hidden, activations, pre_activations

    def _backward(
        self,
        output_grad: np.ndarray,
        activations: list[np.ndarray],
        pre_activations: list[np.ndarray],
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Backpropagate ``output_grad`` and return weight/bias gradients."""
        weight_grads = [np.zeros_like(w) for w in self.weights]
        bias_grads = [np.zeros_like(b) for b in self.biases]
        grad = output_grad
        for index in range(len(self.weights) - 1, -1, -1):
            weight_grads[index] = activations[index].T @ grad + self.l2 * self.weights[index]
            bias_grads[index] = grad.sum(axis=0)
            if index > 0:
                grad = (grad @ self.weights[index].T) * relu_grad(pre_activations[index - 1])
        return weight_grads, bias_grads

    # -------------------------------------------------------------------- API
    def fit(
        self,
        inputs,
        targets,
        epochs: int = 200,
        batch_size: int = 32,
        reset_scalers: bool = True,
    ) -> "MLPRegressor":
        """Train on ``(inputs, targets)`` with mini-batch gradient descent."""
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        y = np.asarray(targets, dtype=float).reshape(len(x), -1)
        if x.shape[1] != self.input_dim:
            raise ValueError(f"expected {self.input_dim} input features, got {x.shape[1]}")
        if y.shape[1] != self.output_dim:
            raise ValueError(f"expected {self.output_dim} targets, got {y.shape[1]}")
        if reset_scalers or not self._x_scaler.is_fitted:
            self._x_scaler.fit(x)
            self._y_scaler.fit(y)
        x_std = self._x_scaler.transform(x)
        y_std = self._y_scaler.transform(y)
        n_samples = len(x_std)
        batch_size = max(1, min(batch_size, n_samples))
        for _ in range(epochs):
            order = self._rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, batch_size):
                batch_idx = order[start : start + batch_size]
                batch_x = x_std[batch_idx]
                batch_y = y_std[batch_idx]
                prediction, activations, pre_activations = self._forward(batch_x)
                error = prediction - batch_y
                epoch_loss += float(np.sum(error**2))
                output_grad = 2.0 * error / len(batch_x)
                weight_grads, bias_grads = self._backward(output_grad, activations, pre_activations)
                self._optimizer.step(weight_grads + bias_grads)
            self.loss_history.append(epoch_loss / n_samples)
        return self

    def predict(self, inputs) -> np.ndarray:
        """Predict targets in the original (unstandardised) units."""
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        if not self._x_scaler.is_fitted:
            raise RuntimeError("MLPRegressor used before fit()")
        x_std = self._x_scaler.transform(x)
        prediction, _, _ = self._forward(x_std)
        result = self._y_scaler.inverse_transform(prediction)
        return result[:, 0] if self.output_dim == 1 else result

    def clone(self) -> "MLPRegressor":
        """Return a deep copy with the same weights (used for teacher→student transfer)."""
        twin = MLPRegressor(
            input_dim=self.input_dim,
            hidden_layers=self.hidden_layers,
            output_dim=self.output_dim,
            l2=self.l2,
        )
        twin.weights = [w.copy() for w in self.weights]
        twin.biases = [b.copy() for b in self.biases]
        twin._optimizer = make_optimizer("adam", twin.weights + twin.biases, 1e-2)
        if self._x_scaler.is_fitted:
            twin._x_scaler.mean_ = self._x_scaler.mean_.copy()
            twin._x_scaler.scale_ = self._x_scaler.scale_.copy()
            twin._y_scaler.mean_ = self._y_scaler.mean_.copy()
            twin._y_scaler.scale_ = self._y_scaler.scale_.copy()
        return twin
