"""Bayesian neural network trained with Bayes-by-Backprop.

Atlas uses a BNN as the scalable surrogate of two black-box functions: the
sim-to-real discrepancy ``KL[D_r || D_s(x)]`` in stage 1 and the slice QoE
``Q_s(phi)`` in stage 2 (Secs. 4.2 and 5.2).  Every weight carries a Gaussian
variational posterior ``N(mu, softplus(rho)^2)`` optimised against the
evidence lower bound of Eq. 4 with the reparameterisation trick of
Bayes-by-Backprop [Blundell et al., ICML'15].

Thompson sampling (Sec. 4.2, "Parallel Thompson Sampling") requires drawing
*one* function realisation from the posterior and evaluating it on tens of
thousands of candidate points with a single forward pass — this is provided
by :meth:`BayesianNeuralNetwork.sample_function`.
"""

from __future__ import annotations

import numpy as np

from repro.models.mlp import relu, relu_grad
from repro.models.optimizers import make_optimizer
from repro.models.scaler import StandardScaler

__all__ = ["BayesianNeuralNetwork", "softplus", "softplus_grad"]


def softplus(values: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, values)


def softplus_grad(values: np.ndarray) -> np.ndarray:
    """Derivative of softplus, i.e. the logistic sigmoid."""
    return 1.0 / (1.0 + np.exp(-values))


class _SampledNetwork:
    """A single weight draw from the posterior, usable as a deterministic function.

    Instances are returned by :meth:`BayesianNeuralNetwork.sample_function`
    and hold references to the scalers of the parent model, so predictions
    are in the original target units.
    """

    def __init__(
        self,
        weights: list[np.ndarray],
        biases: list[np.ndarray],
        x_scaler: StandardScaler,
        y_scaler: StandardScaler,
    ) -> None:
        self._weights = weights
        self._biases = biases
        self._x_scaler = x_scaler
        self._y_scaler = y_scaler

    def __call__(self, inputs) -> np.ndarray:
        """Evaluate the sampled network on a batch of features."""
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        hidden = self._x_scaler.transform(x)
        last = len(self._weights) - 1
        for index, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            pre = hidden @ weight + bias
            hidden = pre if index == last else relu(pre)
        result = self._y_scaler.inverse_transform(hidden)
        return result[:, 0] if result.shape[1] == 1 else result


class BayesianNeuralNetwork:
    """Variational-Gaussian BNN regression model.

    Parameters
    ----------
    input_dim:
        Number of input features.
    hidden_layers:
        Hidden layer widths.  The paper uses ``(128, 256, 256, 128)``; the
        default is smaller so the reproduction's end-to-end experiments run
        in minutes rather than hours.
    prior_sigma:
        Standard deviation of the zero-mean Gaussian weight prior.
    noise_sigma:
        Observation-noise standard deviation of the Gaussian likelihood
        (in standardised target units).
    n_mc_samples:
        Monte-Carlo weight draws per gradient step.
    kl_weight:
        Scale of the complexity (KL) term; defaults to ``1 / n_samples`` as
        in Bayes-by-Backprop with a single batch per epoch.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_layers: tuple[int, ...] = (48, 48),
        output_dim: int = 1,
        prior_sigma: float = 1.0,
        noise_sigma: float = 0.15,
        learning_rate: float = 1e-2,
        optimizer: str = "adam",
        n_mc_samples: int = 2,
        kl_weight: float | None = None,
        seed: int | None = None,
    ) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be >= 1")
        if output_dim < 1:
            raise ValueError("output_dim must be >= 1")
        if prior_sigma <= 0 or noise_sigma <= 0:
            raise ValueError("prior_sigma and noise_sigma must be positive")
        self.input_dim = input_dim
        self.hidden_layers = tuple(int(h) for h in hidden_layers)
        self.output_dim = output_dim
        self.prior_sigma = prior_sigma
        self.noise_sigma = noise_sigma
        self.n_mc_samples = max(1, int(n_mc_samples))
        self.kl_weight = kl_weight
        self._rng = np.random.default_rng(seed)
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self.weight_mu: list[np.ndarray] = []
        self.weight_rho: list[np.ndarray] = []
        self.bias_mu: list[np.ndarray] = []
        self.bias_rho: list[np.ndarray] = []
        self._init_parameters()
        parameters = self.weight_mu + self.bias_mu + self.weight_rho + self.bias_rho
        self._optimizer = make_optimizer(optimizer, parameters, learning_rate)
        self.loss_history: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------ setup
    def _layer_sizes(self) -> list[tuple[int, int]]:
        dims = [self.input_dim, *self.hidden_layers, self.output_dim]
        return list(zip(dims[:-1], dims[1:]))

    def _init_parameters(self) -> None:
        initial_rho = -4.0  # softplus(-4) ~ 0.018: small initial posterior std
        for fan_in, fan_out in self._layer_sizes():
            limit = np.sqrt(2.0 / fan_in)
            self.weight_mu.append(self._rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self.weight_rho.append(np.full((fan_in, fan_out), initial_rho))
            self.bias_mu.append(np.zeros(fan_out))
            self.bias_rho.append(np.full(fan_out, initial_rho))

    # --------------------------------------------------------------- internals
    def _sample_layer_weights(self) -> tuple[list, list, list, list]:
        """Draw weights via the reparameterisation trick, keeping the noise."""
        weights, biases, weight_eps, bias_eps = [], [], [], []
        for w_mu, w_rho, b_mu, b_rho in zip(
            self.weight_mu, self.weight_rho, self.bias_mu, self.bias_rho
        ):
            eps_w = self._rng.standard_normal(w_mu.shape)
            eps_b = self._rng.standard_normal(b_mu.shape)
            weights.append(w_mu + softplus(w_rho) * eps_w)
            biases.append(b_mu + softplus(b_rho) * eps_b)
            weight_eps.append(eps_w)
            bias_eps.append(eps_b)
        return weights, biases, weight_eps, bias_eps

    def _forward(
        self, inputs: np.ndarray, weights: list[np.ndarray], biases: list[np.ndarray]
    ) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        activations = [inputs]
        pre_activations = []
        hidden = inputs
        last = len(weights) - 1
        for index, (weight, bias) in enumerate(zip(weights, biases)):
            pre = hidden @ weight + bias
            pre_activations.append(pre)
            hidden = pre if index == last else relu(pre)
            activations.append(hidden)
        return hidden, activations, pre_activations

    def _backward(
        self,
        output_grad: np.ndarray,
        weights: list[np.ndarray],
        activations: list[np.ndarray],
        pre_activations: list[np.ndarray],
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        weight_grads = [np.zeros_like(w) for w in weights]
        bias_grads = [np.zeros_like(b) for b in self.bias_mu]
        grad = output_grad
        for index in range(len(weights) - 1, -1, -1):
            weight_grads[index] = activations[index].T @ grad
            bias_grads[index] = grad.sum(axis=0)
            if index > 0:
                grad = (grad @ weights[index].T) * relu_grad(pre_activations[index - 1])
        return weight_grads, bias_grads

    def _kl_term_and_grads(self) -> tuple[float, list, list, list, list]:
        """Closed-form KL(q || prior) and its gradients w.r.t. mu and rho."""
        kl_total = 0.0
        mu_w_grads, rho_w_grads, mu_b_grads, rho_b_grads = [], [], [], []
        prior_var = self.prior_sigma**2
        for w_mu, w_rho, b_mu, b_rho in zip(
            self.weight_mu, self.weight_rho, self.bias_mu, self.bias_rho
        ):
            for mu, rho, mu_grads, rho_grads in (
                (w_mu, w_rho, mu_w_grads, rho_w_grads),
                (b_mu, b_rho, mu_b_grads, rho_b_grads),
            ):
                sigma = softplus(rho)
                kl = np.sum(
                    np.log(self.prior_sigma / sigma)
                    + (sigma**2 + mu**2) / (2.0 * prior_var)
                    - 0.5
                )
                kl_total += float(kl)
                mu_grads.append(mu / prior_var)
                d_sigma = sigma / prior_var - 1.0 / sigma
                rho_grads.append(d_sigma * softplus_grad(rho))
        return kl_total, mu_w_grads, rho_w_grads, mu_b_grads, rho_b_grads

    # -------------------------------------------------------------------- API
    def fit(
        self,
        inputs,
        targets,
        epochs: int = 150,
        batch_size: int = 64,
        reset_scalers: bool = True,
    ) -> "BayesianNeuralNetwork":
        """Train the variational posterior on ``(inputs, targets)``."""
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        y = np.asarray(targets, dtype=float).reshape(len(x), -1)
        if x.shape[1] != self.input_dim:
            raise ValueError(f"expected {self.input_dim} input features, got {x.shape[1]}")
        if reset_scalers or not self._x_scaler.is_fitted:
            self._x_scaler.fit(x)
            self._y_scaler.fit(y)
        x_std = self._x_scaler.transform(x)
        y_std = self._y_scaler.transform(y)
        n_samples = len(x_std)
        batch_size = max(1, min(batch_size, n_samples))
        n_batches = int(np.ceil(n_samples / batch_size))
        kl_weight = self.kl_weight if self.kl_weight is not None else 1.0 / max(n_samples, 1)
        noise_var = self.noise_sigma**2

        for _ in range(epochs):
            order = self._rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, batch_size):
                batch_idx = order[start : start + batch_size]
                batch_x = x_std[batch_idx]
                batch_y = y_std[batch_idx]

                mu_w_acc = [np.zeros_like(w) for w in self.weight_mu]
                rho_w_acc = [np.zeros_like(w) for w in self.weight_rho]
                mu_b_acc = [np.zeros_like(b) for b in self.bias_mu]
                rho_b_acc = [np.zeros_like(b) for b in self.bias_rho]
                batch_loss = 0.0

                for _ in range(self.n_mc_samples):
                    weights, biases, weight_eps, bias_eps = self._sample_layer_weights()
                    prediction, activations, pre_activations = self._forward(
                        batch_x, weights, biases
                    )
                    error = prediction - batch_y
                    nll = float(np.sum(error**2) / (2.0 * noise_var))
                    batch_loss += nll
                    output_grad = error / noise_var / len(batch_x) * n_samples / n_batches
                    weight_grads, bias_grads = self._backward(
                        output_grad, weights, activations, pre_activations
                    )
                    for layer in range(len(weights)):
                        mu_w_acc[layer] += weight_grads[layer]
                        rho_w_acc[layer] += (
                            weight_grads[layer]
                            * weight_eps[layer]
                            * softplus_grad(self.weight_rho[layer])
                        )
                        mu_b_acc[layer] += bias_grads[layer]
                        rho_b_acc[layer] += (
                            bias_grads[layer]
                            * bias_eps[layer]
                            * softplus_grad(self.bias_rho[layer])
                        )

                scale = 1.0 / self.n_mc_samples
                kl, kl_mu_w, kl_rho_w, kl_mu_b, kl_rho_b = self._kl_term_and_grads()
                gradients = (
                    [scale * g + kl_weight * k for g, k in zip(mu_w_acc, kl_mu_w)]
                    + [scale * g + kl_weight * k for g, k in zip(mu_b_acc, kl_mu_b)]
                    + [scale * g + kl_weight * k for g, k in zip(rho_w_acc, kl_rho_w)]
                    + [scale * g + kl_weight * k for g, k in zip(rho_b_acc, kl_rho_b)]
                )
                self._optimizer.step(gradients)
                epoch_loss += batch_loss * scale + kl_weight * kl
            self.loss_history.append(epoch_loss / n_samples)
        self._fitted = True
        return self

    def predict(self, inputs, n_samples: int = 30) -> tuple[np.ndarray, np.ndarray]:
        """Monte-Carlo posterior predictive mean and standard deviation."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        x_std = self._x_scaler.transform(x)
        draws = np.zeros((n_samples, len(x), self.output_dim))
        for index in range(n_samples):
            weights, biases, _, _ = self._sample_layer_weights()
            prediction, _, _ = self._forward(x_std, weights, biases)
            draws[index] = prediction
        mean_std_units = draws.mean(axis=0)
        std_std_units = draws.std(axis=0)
        mean = self._y_scaler.inverse_transform(mean_std_units)
        std = self._y_scaler.inverse_transform_std(std_std_units)
        if self.output_dim == 1:
            return mean[:, 0], std[:, 0]
        return mean, std

    def sample_function(self) -> _SampledNetwork:
        """Draw one deterministic function from the posterior (Thompson sampling)."""
        self._require_fitted()
        weights, biases, _, _ = self._sample_layer_weights()
        return _SampledNetwork(weights, biases, self._x_scaler, self._y_scaler)

    def sample_predict(self, inputs) -> np.ndarray:
        """Evaluate a single posterior function draw on ``inputs``."""
        return self.sample_function()(inputs)

    def mean_predict(self, inputs) -> np.ndarray:
        """Posterior-mean prediction (weights fixed to their variational means)."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        x_std = self._x_scaler.transform(x)
        prediction, _, _ = self._forward(x_std, self.weight_mu, self.bias_mu)
        result = self._y_scaler.inverse_transform(prediction)
        return result[:, 0] if self.output_dim == 1 else result

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("BayesianNeuralNetwork used before fit()")
