"""Feature/target standardisation used by the GP and neural-network models.

The paper normalises GP targets "by removing the mean and scaling to
unit-variance for better regression performance" (Sec. 7.3); the same scaler
is reused for neural-network inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Removes the mean and scales to unit variance, column by column.

    Columns with zero variance are left unscaled (their scale is set to 1)
    so constant features do not produce NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.mean_ is not None

    def fit(self, values) -> "StandardScaler":
        """Learn per-column mean and standard deviation from ``values``."""
        arr = np.atleast_2d(np.asarray(values, dtype=float))
        if arr.size == 0:
            raise ValueError("cannot fit a scaler on an empty array")
        self.mean_ = arr.mean(axis=0)
        scale = arr.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, values) -> np.ndarray:
        """Standardise ``values`` with the fitted statistics."""
        self._require_fitted()
        arr = np.atleast_2d(np.asarray(values, dtype=float))
        return (arr - self.mean_) / self.scale_

    def fit_transform(self, values) -> np.ndarray:
        """Equivalent to ``fit(values).transform(values)``."""
        return self.fit(values).transform(values)

    def inverse_transform(self, values) -> np.ndarray:
        """Map standardised values back to the original units."""
        self._require_fitted()
        arr = np.atleast_2d(np.asarray(values, dtype=float))
        return arr * self.scale_ + self.mean_

    def inverse_transform_std(self, std_values) -> np.ndarray:
        """Map standard deviations back to the original units (no mean shift)."""
        self._require_fitted()
        arr = np.atleast_2d(np.asarray(std_values, dtype=float))
        return arr * self.scale_

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("StandardScaler used before fit()")
