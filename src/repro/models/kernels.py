"""Covariance kernels for Gaussian-process regression.

The paper's online GP uses the Matérn kernel with ``nu = 2.5`` (a
generalisation of the RBF kernel) from scikit-learn; the same kernels are
implemented here with log-parameterised hyper-parameters so they can be
optimised by maximising the marginal likelihood.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Kernel",
    "RBFKernel",
    "Matern52Kernel",
    "WhiteKernel",
    "ConstantKernel",
    "SumKernel",
    "ProductKernel",
]


def _pairwise_sq_dists(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every pair of rows of ``x1`` and ``x2``."""
    sq1 = np.sum(x1**2, axis=1)[:, None]
    sq2 = np.sum(x2**2, axis=1)[None, :]
    sq = sq1 + sq2 - 2.0 * (x1 @ x2.T)
    return np.maximum(sq, 0.0)


class Kernel:
    """Base class: kernels expose their log hyper-parameters as a flat vector."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Evaluate the kernel matrix between two point sets."""
        raise NotImplementedError

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of ``self(x, x)`` without building the full matrix."""
        return np.diag(self(x, x))

    def get_log_params(self) -> np.ndarray:
        """The kernel's tunable log-parameters as a flat vector."""
        raise NotImplementedError

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Set the kernel's log-parameters from a flat vector."""
        raise NotImplementedError

    @property
    def n_params(self) -> int:
        """Number of tunable log hyper-parameters."""
        return len(self.get_log_params())

    def bounds(self) -> list[tuple[float, float]]:
        """Log-space bounds for each hyper-parameter."""
        return [(-6.0, 6.0)] * self.n_params

    def __add__(self, other: "Kernel") -> "SumKernel":
        """The sum kernel of ``self`` and ``other``."""
        return SumKernel(self, other)

    def __mul__(self, other: "Kernel") -> "ProductKernel":
        """The product kernel of ``self`` and ``other``."""
        return ProductKernel(self, other)


class RBFKernel(Kernel):
    """Squared-exponential kernel ``exp(-0.5 * d^2 / l^2)``."""

    def __init__(self, length_scale: float = 1.0) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Evaluate the kernel matrix between two point sets."""
        sq = _pairwise_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2))
        return np.exp(-0.5 * sq / self.length_scale**2)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of the kernel matrix of ``points``."""
        return np.ones(len(np.atleast_2d(x)))

    def get_log_params(self) -> np.ndarray:
        """The kernel's tunable log-parameters as a flat vector."""
        return np.array([np.log(self.length_scale)])

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Set the kernel's log-parameters from a flat vector."""
        self.length_scale = float(np.exp(log_params[0]))


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness ``nu = 2.5`` (the paper's choice)."""

    def __init__(self, length_scale: float = 1.0) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Evaluate the kernel matrix between two point sets."""
        sq = _pairwise_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2))
        dist = np.sqrt(sq)
        scaled = np.sqrt(5.0) * dist / self.length_scale
        return (1.0 + scaled + scaled**2 / 3.0) * np.exp(-scaled)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of the kernel matrix of ``points``."""
        return np.ones(len(np.atleast_2d(x)))

    def get_log_params(self) -> np.ndarray:
        """The kernel's tunable log-parameters as a flat vector."""
        return np.array([np.log(self.length_scale)])

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Set the kernel's log-parameters from a flat vector."""
        self.length_scale = float(np.exp(log_params[0]))


class WhiteKernel(Kernel):
    """Observation-noise kernel: ``noise_level`` on the diagonal, zero elsewhere."""

    def __init__(self, noise_level: float = 1e-3) -> None:
        if noise_level <= 0:
            raise ValueError("noise_level must be positive")
        self.noise_level = float(noise_level)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Evaluate the kernel matrix between two point sets."""
        x1 = np.atleast_2d(x1)
        x2 = np.atleast_2d(x2)
        if x1.shape == x2.shape and np.array_equal(x1, x2):
            return self.noise_level * np.eye(len(x1))
        return np.zeros((len(x1), len(x2)))

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of the kernel matrix of ``points``."""
        return np.full(len(np.atleast_2d(x)), self.noise_level)

    def get_log_params(self) -> np.ndarray:
        """The kernel's tunable log-parameters as a flat vector."""
        return np.array([np.log(self.noise_level)])

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Set the kernel's log-parameters from a flat vector."""
        self.noise_level = float(np.exp(log_params[0]))

    def bounds(self) -> list[tuple[float, float]]:
        """Optimisation bounds of the log-parameters."""
        return [(-12.0, 2.0)]


class ConstantKernel(Kernel):
    """Constant (signal-variance) kernel, usually multiplied with RBF/Matérn."""

    def __init__(self, constant: float = 1.0) -> None:
        if constant <= 0:
            raise ValueError("constant must be positive")
        self.constant = float(constant)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Evaluate the kernel matrix between two point sets."""
        return np.full((len(np.atleast_2d(x1)), len(np.atleast_2d(x2))), self.constant)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of the kernel matrix of ``points``."""
        return np.full(len(np.atleast_2d(x)), self.constant)

    def get_log_params(self) -> np.ndarray:
        """The kernel's tunable log-parameters as a flat vector."""
        return np.array([np.log(self.constant)])

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Set the kernel's log-parameters from a flat vector."""
        self.constant = float(np.exp(log_params[0]))


class _CompositeKernel(Kernel):
    """Shared machinery for kernels built from two sub-kernels."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def get_log_params(self) -> np.ndarray:
        """The kernel's tunable log-parameters as a flat vector."""
        return np.concatenate([self.left.get_log_params(), self.right.get_log_params()])

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Set the kernel's log-parameters from a flat vector."""
        split = self.left.n_params
        self.left.set_log_params(np.asarray(log_params)[:split])
        self.right.set_log_params(np.asarray(log_params)[split:])

    def bounds(self) -> list[tuple[float, float]]:
        """Optimisation bounds of the log-parameters."""
        return self.left.bounds() + self.right.bounds()


class SumKernel(_CompositeKernel):
    """Sum of two kernels."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Evaluate the kernel matrix between two point sets."""
        return self.left(x1, x2) + self.right(x1, x2)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of the kernel matrix of ``points``."""
        return self.left.diag(x) + self.right.diag(x)


class ProductKernel(_CompositeKernel):
    """Element-wise product of two kernels."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Evaluate the kernel matrix between two point sets."""
        return self.left(x1, x2) * self.right(x1, x2)

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of the kernel matrix of ``points``."""
        return self.left.diag(x) * self.right.diag(x)
