"""Gradient-descent optimisers shared by the MLP and BNN implementations.

The paper uses Adadelta with a StepLR schedule; both Adam and Adadelta are
provided here and either can be selected when constructing a model.  The
optimisers operate on flat lists of numpy parameter arrays, which is how the
manual-backprop models store their weights.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AdamOptimizer", "AdadeltaOptimizer", "make_optimizer"]


class AdamOptimizer:
    """Adam optimiser over a list of numpy parameter arrays."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._step = 0

    def step(self, gradients: list[np.ndarray]) -> None:
        """Apply one in-place update from ``gradients`` (same order as parameters)."""
        if len(gradients) != len(self.parameters):
            raise ValueError("gradient list length does not match parameter list length")
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, grad, m, v in zip(self.parameters, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class AdadeltaOptimizer:
    """Adadelta optimiser (the optimiser used in the paper's implementation)."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        learning_rate: float = 1.0,
        rho: float = 0.9,
        epsilon: float = 1e-6,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.rho = rho
        self.epsilon = epsilon
        self._avg_sq_grad = [np.zeros_like(p) for p in parameters]
        self._avg_sq_delta = [np.zeros_like(p) for p in parameters]

    def step(self, gradients: list[np.ndarray]) -> None:
        """Apply one in-place update from ``gradients`` (same order as parameters)."""
        if len(gradients) != len(self.parameters):
            raise ValueError("gradient list length does not match parameter list length")
        for param, grad, sq_grad, sq_delta in zip(
            self.parameters, gradients, self._avg_sq_grad, self._avg_sq_delta
        ):
            sq_grad *= self.rho
            sq_grad += (1.0 - self.rho) * grad * grad
            delta = grad * np.sqrt(sq_delta + self.epsilon) / np.sqrt(sq_grad + self.epsilon)
            sq_delta *= self.rho
            sq_delta += (1.0 - self.rho) * delta * delta
            param -= self.learning_rate * delta


def make_optimizer(name: str, parameters: list[np.ndarray], learning_rate: float):
    """Construct an optimiser by name (``"adam"`` or ``"adadelta"``)."""
    lowered = name.lower()
    if lowered == "adam":
        return AdamOptimizer(parameters, learning_rate=learning_rate)
    if lowered == "adadelta":
        return AdadeltaOptimizer(parameters, learning_rate=learning_rate)
    raise ValueError(f"unknown optimizer {name!r}; expected 'adam' or 'adadelta'")
