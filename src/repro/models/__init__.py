"""Machine-learning substrates used by the Atlas stages.

The paper builds its surrogates on PyTorch (Bayesian neural network trained
with Bayes-by-Backprop) and scikit-learn (Gaussian process with a Matérn-2.5
kernel).  Neither library is available in this offline environment, so the
same models are implemented here on top of numpy/scipy:

* :class:`~repro.models.mlp.MLPRegressor` — deterministic multi-layer
  perceptron with manual backpropagation and an Adam optimiser (used by the
  DLDA baseline and as the deterministic core of the BNN).
* :class:`~repro.models.bnn.BayesianNeuralNetwork` — variational Gaussian
  weight posterior trained with Bayes-by-Backprop; supports single-draw
  function sampling for Thompson sampling and Monte-Carlo mean/std
  prediction.
* :class:`~repro.models.gp.GaussianProcessRegressor` — exact GP regression
  with Matérn-2.5 / RBF kernels, target normalisation and marginal-likelihood
  hyper-parameter fitting.
"""

from repro.models.bnn import BayesianNeuralNetwork
from repro.models.gp import GaussianProcessRegressor
from repro.models.kernels import ConstantKernel, Matern52Kernel, RBFKernel, SumKernel, WhiteKernel
from repro.models.mlp import MLPRegressor
from repro.models.scaler import StandardScaler

__all__ = [
    "BayesianNeuralNetwork",
    "GaussianProcessRegressor",
    "MLPRegressor",
    "StandardScaler",
    "RBFKernel",
    "Matern52Kernel",
    "WhiteKernel",
    "ConstantKernel",
    "SumKernel",
]
