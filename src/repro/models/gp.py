"""Exact Gaussian-process regression.

Mirrors the sklearn ``GaussianProcessRegressor`` configuration the paper
uses for the online learning stage (Sec. 7.3): Matérn kernel with
``nu = 2.5``, target normalisation, and marginal-likelihood hyper-parameter
fitting.  The model stays small (hundreds of online transitions at most),
so the O(n^3) Cholesky factorisation is not a concern.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from repro.models.kernels import ConstantKernel, Kernel, Matern52Kernel, ProductKernel
from repro.models.scaler import StandardScaler

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor:
    """Gaussian-process regression with marginal-likelihood hyper-parameter fitting.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to ``ConstantKernel() * Matern52Kernel()``
        as in the paper.
    noise:
        Observation-noise variance added to the kernel diagonal (jitter plus
        measurement noise).
    normalize_y:
        Standardise targets before fitting (the paper's setting).
    optimize_hyperparameters:
        Maximise the log marginal likelihood over the kernel's log
        hyper-parameters with L-BFGS-B restarts.
    n_restarts:
        Number of random restarts for the hyper-parameter optimisation.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise: float = 1e-4,
        normalize_y: bool = True,
        optimize_hyperparameters: bool = True,
        n_restarts: int = 2,
        seed: int | None = None,
    ) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.kernel = kernel if kernel is not None else ProductKernel(ConstantKernel(1.0), Matern52Kernel(1.0))
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self.optimize_hyperparameters = optimize_hyperparameters
        self.n_restarts = max(0, int(n_restarts))
        self._rng = np.random.default_rng(seed)
        self._x_train: np.ndarray | None = None
        self._y_train: np.ndarray | None = None
        self._y_scaler = StandardScaler()
        self._cholesky: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self.log_marginal_likelihood_: float | None = None

    # --------------------------------------------------------------- internals
    def _neg_log_marginal_likelihood(self, log_params: np.ndarray) -> float:
        self.kernel.set_log_params(log_params)
        gram = self.kernel(self._x_train, self._x_train)
        gram[np.diag_indices_from(gram)] += self.noise
        try:
            chol = linalg.cholesky(gram, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((chol, True), self._y_train)
        n = len(self._y_train)
        lml = (
            -0.5 * float(self._y_train @ alpha)
            - float(np.sum(np.log(np.diag(chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        return -lml

    def _fit_hyperparameters(self) -> None:
        bounds = self.kernel.bounds()
        best_params = self.kernel.get_log_params()
        best_value = self._neg_log_marginal_likelihood(best_params)
        starts = [best_params]
        for _ in range(self.n_restarts):
            starts.append(
                np.array([self._rng.uniform(lo, hi) for lo, hi in bounds])
            )
        for start in starts:
            result = optimize.minimize(
                self._neg_log_marginal_likelihood,
                start,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 60},
            )
            if result.fun < best_value:
                best_value = result.fun
                best_params = result.x
        self.kernel.set_log_params(best_params)
        self.log_marginal_likelihood_ = -float(best_value)

    def _factorize(self) -> None:
        gram = self.kernel(self._x_train, self._x_train)
        gram[np.diag_indices_from(gram)] += self.noise
        self._cholesky = linalg.cholesky(gram, lower=True)
        self._alpha = linalg.cho_solve((self._cholesky, True), self._y_train)

    # -------------------------------------------------------------------- API
    def fit(self, inputs, targets) -> "GaussianProcessRegressor":
        """Fit the GP to ``(inputs, targets)``."""
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        y = np.asarray(targets, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError("inputs and targets have mismatched lengths")
        if len(x) == 0:
            raise ValueError("cannot fit a GP on an empty dataset")
        self._x_train = x
        if self.normalize_y:
            self._y_scaler.fit(y.reshape(-1, 1))
            self._y_train = self._y_scaler.transform(y.reshape(-1, 1)).ravel()
        else:
            self._y_train = y
        if self.optimize_hyperparameters and len(x) >= 3:
            self._fit_hyperparameters()
        self._factorize()
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._alpha is not None

    def predict(self, inputs, return_std: bool = False):
        """Posterior predictive mean (and optionally standard deviation)."""
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        if not self.is_fitted:
            # An unfitted GP is the prior: zero mean, unit variance.
            mean = np.zeros(len(x))
            if return_std:
                return mean, np.ones(len(x))
            return mean
        cross = self.kernel(x, self._x_train)
        mean_std_units = cross @ self._alpha
        if self.normalize_y:
            mean = self._y_scaler.inverse_transform(mean_std_units.reshape(-1, 1)).ravel()
        else:
            mean = mean_std_units
        if not return_std:
            return mean
        solved = linalg.solve_triangular(self._cholesky, cross.T, lower=True)
        variance = self.kernel.diag(x) + self.noise - np.sum(solved**2, axis=0)
        variance = np.maximum(variance, 1e-12)
        std = np.sqrt(variance)
        if self.normalize_y:
            std = self._y_scaler.inverse_transform_std(std.reshape(-1, 1)).ravel()
        return mean, std

    def sample_y(self, inputs, n_samples: int = 1, seed: int | None = None) -> np.ndarray:
        """Draw joint posterior function samples at ``inputs``.

        Returns an array of shape ``(n_samples, len(inputs))``; used for
        Thompson sampling with GP surrogates.
        """
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        if not self.is_fitted:
            cov = self.kernel(x, x) + self.noise * np.eye(len(x))
            mean = np.zeros(len(x))
        else:
            cross = self.kernel(x, self._x_train)
            mean = cross @ self._alpha
            solved = linalg.solve_triangular(self._cholesky, cross.T, lower=True)
            cov = self.kernel(x, x) + self.noise * np.eye(len(x)) - solved.T @ solved
        cov = 0.5 * (cov + cov.T)
        cov[np.diag_indices_from(cov)] += 1e-8
        draws = rng.multivariate_normal(mean, cov, size=n_samples)
        if self.is_fitted and self.normalize_y:
            draws = self._y_scaler.inverse_transform(draws.reshape(-1, 1)).reshape(n_samples, -1)
        return draws
