"""Summary statistics and empirical CDF helpers for latency collections."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["empirical_cdf", "summarize_latencies", "LatencySummary"]


def empirical_cdf(samples) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(values, probabilities)`` of the empirical CDF of ``samples``.

    Non-finite samples (dropped frames) are excluded from the curve; the
    probabilities therefore describe the distribution of delivered frames, as
    the paper's CDF figures do.
    """
    arr = np.asarray(samples, dtype=float).ravel()
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return np.zeros(0), np.zeros(0)
    values = np.sort(arr)
    probabilities = np.arange(1, values.size + 1, dtype=float) / values.size
    return values, probabilities


@dataclass(frozen=True)
class LatencySummary:
    """Descriptive statistics of one latency collection (milliseconds)."""

    count: int
    mean: float
    std: float
    median: float
    p90: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    drop_rate: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (useful for reporting)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
            "drop_rate": self.drop_rate,
        }


def summarize_latencies(samples) -> LatencySummary:
    """Summarise a latency collection, tracking dropped frames separately.

    Degenerate collections return defined values without numpy warnings: an
    empty or all-non-finite collection (nothing delivered) yields
    ``count=0`` with every statistic ``nan`` — the truthful "no data"
    summary, which downstream envelopes treat as a failure because no
    finite bound contains NaN — and ``drop_rate`` is ``1.0`` when frames
    were generated but none delivered, ``0.0`` when nothing was generated
    at all.
    """
    arr = np.asarray(samples, dtype=float).ravel()
    total = arr.size
    delivered = arr[np.isfinite(arr)]
    if delivered.size == 0:
        return LatencySummary(
            count=0,
            mean=float("nan"),
            std=float("nan"),
            median=float("nan"),
            p90=float("nan"),
            p95=float("nan"),
            p99=float("nan"),
            minimum=float("nan"),
            maximum=float("nan"),
            drop_rate=1.0 if total else 0.0,
        )
    return LatencySummary(
        count=int(delivered.size),
        mean=float(delivered.mean()),
        std=float(delivered.std()),
        median=float(np.median(delivered)),
        p90=float(np.percentile(delivered, 90)),
        p95=float(np.percentile(delivered, 95)),
        p99=float(np.percentile(delivered, 99)),
        minimum=float(delivered.min()),
        maximum=float(delivered.max()),
        drop_rate=float((total - delivered.size) / total) if total else 0.0,
    )
