"""Performance metrics used throughout the Atlas reproduction.

The metrics mirror the quantities the paper reports:

* ``kl`` — histogram-based KL-divergence between latency collections, the
  sim-to-real discrepancy measure of stage 1 (Eq. 1).
* ``qoe`` — the unified slice quality of experience, i.e. the probability
  that the end-to-end latency stays below the SLA threshold (Eq. 6), and the
  normalised resource-usage function ``F`` (Sec. 5.1).
* ``regret`` — cumulative and average regret of resource usage and QoE
  during online learning (Eqs. 10–11).
* ``stats`` — empirical CDFs and summary statistics used by the motivation
  and evaluation figures.
"""

from repro.metrics.kl import (
    histogram_kl_divergence,
    jensen_shannon_divergence,
    symmetric_kl_divergence,
)
from repro.metrics.qoe import qoe_from_latencies, resource_usage
from repro.metrics.regret import (
    RegretTracker,
    average_qoe_regret,
    average_usage_regret,
    cumulative_qoe_regret,
    cumulative_usage_regret,
)
from repro.metrics.stats import LatencySummary, empirical_cdf, summarize_latencies

__all__ = [
    "histogram_kl_divergence",
    "symmetric_kl_divergence",
    "jensen_shannon_divergence",
    "qoe_from_latencies",
    "resource_usage",
    "RegretTracker",
    "cumulative_usage_regret",
    "cumulative_qoe_regret",
    "average_usage_regret",
    "average_qoe_regret",
    "empirical_cdf",
    "summarize_latencies",
    "LatencySummary",
]
