"""Quality-of-experience and resource-usage metrics.

Atlas unifies heterogeneous slice performance metrics into a single QoE value
in ``[0, 1]``: the empirical probability that the slice performance (here,
end-to-end frame latency) satisfies the SLA threshold ``Y`` (Eq. 6).  The
resource-usage objective ``F`` is the normalised l1-norm of the configuration
action (Sec. 5.1), i.e. the mean fraction of each resource dimension in use.
"""

from __future__ import annotations

import numpy as np

__all__ = ["qoe_from_latencies", "resource_usage"]


def qoe_from_latencies(latencies, threshold_ms: float) -> float:
    """Return the fraction of latency samples at or below ``threshold_ms``.

    Frames that were dropped (represented either as ``nan`` or ``inf``) count
    against the QoE, exactly as an SLA violation would in the testbed.
    Degenerate inputs have defined values rather than warnings or NaN
    propagation: an empty collection means the slice delivered nothing,
    hence QoE ``0.0``, and an all-NaN/all-``inf`` collection (every frame
    dropped) likewise scores ``0.0``.  A non-finite or non-positive
    ``threshold_ms`` raises :class:`ValueError` — an SLA without a real
    threshold is a configuration error, not a measurement outcome.
    """
    if not np.isfinite(threshold_ms) or threshold_ms <= 0:
        raise ValueError(f"threshold_ms must be positive and finite, got {threshold_ms}")
    arr = np.asarray(latencies, dtype=float).ravel()
    if arr.size == 0:
        return 0.0
    satisfied = np.sum(np.isfinite(arr) & (arr <= threshold_ms))
    return float(satisfied / arr.size)


def resource_usage(action, maximums) -> float:
    """Normalised resource usage ``F = |a / A|_1 / dim`` in ``[0, 1]``.

    Parameters
    ----------
    action:
        Configuration action vector ``a`` (one entry per resource dimension).
    maximums:
        Maximum allowable configuration ``A`` per dimension (same length).

    Returns
    -------
    float
        Mean fraction of each resource in use; ``0.0`` means no resource is
        allocated and ``1.0`` means every dimension is at its maximum.
    """
    a = np.asarray(action, dtype=float).ravel()
    limit = np.asarray(maximums, dtype=float).ravel()
    if a.shape != limit.shape:
        raise ValueError(f"action shape {a.shape} does not match maximums shape {limit.shape}")
    if np.any(limit <= 0):
        raise ValueError("all resource maximums must be positive")
    fractions = np.clip(a / limit, 0.0, 1.0)
    return float(fractions.mean())
