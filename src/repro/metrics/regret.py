"""Regret metrics for the online learning stage (Eqs. 10–11).

The paper evaluates policy safety and sample efficiency through two regrets
accumulated over the online iterations:

* usage regret ``g_u(n) = sum_j [F(phi_j) - F(phi*)]`` — how much more
  resource the learner used than the (unknown) optimal policy, and
* QoE regret ``g_p(n) = sum_j max(Q(phi*) - Q(phi_j), 0)`` — how much QoE the
  learner gave up, counting only shortfalls (exceeding the optimum is free).

Table 5 reports the *average* regrets over 100 online iterations, which are
the cumulative regrets divided by the number of iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "cumulative_usage_regret",
    "cumulative_qoe_regret",
    "average_usage_regret",
    "average_qoe_regret",
    "RegretTracker",
]


def cumulative_usage_regret(usages, optimal_usage: float) -> np.ndarray:
    """Cumulative resource-usage regret ``g_u(n)`` for every iteration ``n``.

    Degenerate inputs are defined: an empty series returns an empty array
    (and the ``average_*`` counterparts return ``0.0`` — no iterations, no
    regret), and a zero-optimal baseline (``optimal_usage=0.0``) is simply
    the cumulative sum of the raw usages, not an error.
    """
    arr = np.asarray(usages, dtype=float).ravel()
    if arr.size == 0:
        return np.zeros(0)
    return np.cumsum(arr - optimal_usage)


def cumulative_qoe_regret(qoes, optimal_qoe: float) -> np.ndarray:
    """Cumulative QoE regret ``g_p(n)`` (only shortfalls are penalised)."""
    arr = np.asarray(qoes, dtype=float).ravel()
    if arr.size == 0:
        return np.zeros(0)
    return np.cumsum(np.maximum(optimal_qoe - arr, 0.0))


def average_usage_regret(usages, optimal_usage: float) -> float:
    """Average per-iteration usage regret, as reported in Table 5."""
    arr = np.asarray(usages, dtype=float).ravel()
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr - optimal_usage))


def average_qoe_regret(qoes, optimal_qoe: float) -> float:
    """Average per-iteration QoE regret, as reported in Table 5."""
    arr = np.asarray(qoes, dtype=float).ravel()
    if arr.size == 0:
        return 0.0
    return float(np.mean(np.maximum(optimal_qoe - arr, 0.0)))


@dataclass
class RegretTracker:
    """Accumulates per-iteration usage and QoE observations against an optimum.

    The optimum ``(optimal_usage, optimal_qoe)`` is the best policy found in
    hindsight (the paper uses the best policy observed within the 100 online
    iterations).  The tracker can also be created without an optimum and
    resolved later with :meth:`set_optimum_from_best`.
    """

    optimal_usage: float = 0.0
    optimal_qoe: float = 1.0
    qoe_requirement: float | None = None
    usages: list[float] = field(default_factory=list)
    qoes: list[float] = field(default_factory=list)

    def record(self, usage: float, qoe: float) -> None:
        """Record one online iteration's achieved resource usage and QoE."""
        self.usages.append(float(usage))
        self.qoes.append(float(qoe))

    def __len__(self) -> int:
        """Number of recorded iterations."""
        return len(self.usages)

    def set_optimum_from_best(self) -> None:
        """Use the best *feasible* recorded iteration as the hindsight optimum.

        Feasible means the QoE requirement (if one is set) was met; if no
        iteration is feasible, the finite iteration with the highest QoE is
        used.  Iterations with non-finite usage or QoE (crashed or dropped
        measurements) are never selected as the optimum; deriving an optimum
        from an empty tracker, or one holding only non-finite records,
        raises :class:`ValueError` — there is no hindsight baseline to
        regret against.
        """
        if not self.usages:
            raise ValueError("cannot derive an optimum from an empty tracker")
        usages = np.asarray(self.usages)
        qoes = np.asarray(self.qoes)
        finite = np.isfinite(usages) & np.isfinite(qoes)
        if not finite.any():
            raise ValueError(
                "cannot derive an optimum: every recorded iteration has "
                "non-finite usage or QoE"
            )
        if self.qoe_requirement is not None:
            feasible = finite & (qoes >= self.qoe_requirement)
        else:
            feasible = finite
        if feasible.any():
            idx = int(np.flatnonzero(feasible)[np.argmin(usages[feasible])])
        else:
            candidates = np.flatnonzero(finite)
            idx = int(candidates[np.argmax(qoes[candidates])])
        self.optimal_usage = float(usages[idx])
        self.optimal_qoe = float(qoes[idx])

    def usage_regret(self) -> np.ndarray:
        """Cumulative usage regret series ``g_u``."""
        return cumulative_usage_regret(self.usages, self.optimal_usage)

    def qoe_regret(self) -> np.ndarray:
        """Cumulative QoE regret series ``g_p``."""
        return cumulative_qoe_regret(self.qoes, self.optimal_qoe)

    def average_usage_regret(self) -> float:
        """Average per-iteration usage regret."""
        return average_usage_regret(self.usages, self.optimal_usage)

    def average_qoe_regret(self) -> float:
        """Average per-iteration QoE regret."""
        return average_qoe_regret(self.qoes, self.optimal_qoe)
