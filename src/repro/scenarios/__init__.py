"""Scenario catalog: named multi-slice workloads for every pipeline entry point.

Importing this package registers the built-in catalog entries (the paper's
frame-offloading slice, eMBB/URLLC/mMTC-style workload classes, dynamic
traffic variants and the ``mixed-enterprise`` multi-slice contention
scenario).  Look entries up with :func:`get_scenario` / enumerate them with
:func:`list_scenarios`, or from the command line::

    python -m repro list-scenarios
    python -m repro run --scenario embb-video --stage all --scale smoke

See ``docs/scenario-catalog.md`` for the full reference and how to register
custom entries.
"""

from repro.scenarios.catalog import (
    ScenarioSpec,
    SliceWorkload,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.traces import (
    BurstyTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    RampTrace,
    TrafficTrace,
)
from repro.scenarios import workloads as _workloads  # noqa: F401  (registers built-ins)
from repro.scenarios import hostile as _hostile  # noqa: F401  (registers hostile entries)

__all__ = [
    "BurstyTrace",
    "ConstantTrace",
    "DiurnalTrace",
    "FlashCrowdTrace",
    "RampTrace",
    "ScenarioSpec",
    "SliceWorkload",
    "TrafficTrace",
    "UnknownScenarioError",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "scenario_names",
]
