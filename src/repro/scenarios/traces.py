"""Deterministic traffic traces for the dynamic catalog entries.

The paper evaluates dynamic traffic by sweeping the congestion-control
window over 1–4 emulated users (Figs. 25–26).  A :class:`TrafficTrace`
generalises that sweep into a *time series* of traffic levels indexed by
measurement step, so online learning and the CLI can replay diurnal,
bursty or flash-crowd load patterns.

Traces are pure functions of the step index — no hidden random state — so
any two runs of the same catalog entry see byte-identical workloads under
every executor kind, exactly like the rest of the measurement pipeline.
All traces are frozen dataclasses: hashable, picklable and safe to embed
in :class:`~repro.scenarios.catalog.ScenarioSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "TrafficTrace",
    "ConstantTrace",
    "DiurnalTrace",
    "BurstyTrace",
    "FlashCrowdTrace",
    "RampTrace",
]


@dataclass(frozen=True)
class TrafficTrace:
    """Base class: a deterministic mapping from measurement step to traffic level.

    Subclasses implement :meth:`level`; the helpers below derive whole
    series and summary statistics from it.  Levels are the number of
    on-the-fly frames (the paper's user-emulation knob) and are always
    ``>= 1`` so the resulting :class:`~repro.sim.scenario.Scenario` stays
    valid.
    """

    def level(self, step: int) -> int:
        """Traffic level at measurement step ``step`` (non-negative integer steps)."""
        raise NotImplementedError

    def levels(self, count: int) -> list[int]:
        """The first ``count`` levels of the trace."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.level(step) for step in range(count)]

    def mean_level(self, horizon: int = 24) -> float:
        """Average level over the first ``horizon`` steps (one period by default)."""
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        series = self.levels(horizon)
        return sum(series) / len(series)

    def distinct_levels(self, horizon: int = 24) -> list[int]:
        """Sorted distinct levels appearing within the first ``horizon`` steps."""
        return sorted(set(self.levels(horizon)))


@dataclass(frozen=True)
class ConstantTrace(TrafficTrace):
    """Fixed traffic at every step (the static single-level workloads)."""

    constant: int = 1

    def __post_init__(self) -> None:
        """Validate the level is a positive user count."""
        if self.constant < 1:
            raise ValueError(f"constant must be >= 1, got {self.constant}")

    def level(self, step: int) -> int:
        """The constant level, regardless of ``step``."""
        return self.constant


@dataclass(frozen=True)
class DiurnalTrace(TrafficTrace):
    """Sinusoidal day/night load swinging between ``low`` and ``high``.

    One period spans ``period`` measurement steps; the trace starts at the
    trough (step 0 is "night") and peaks half a period later, mirroring the
    classic diurnal utilisation curve of cellular traffic.
    """

    low: int = 1
    high: int = 4
    period: int = 12

    def __post_init__(self) -> None:
        """Validate the swing range and period."""
        if self.low < 1:
            raise ValueError(f"low must be >= 1, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"high must be >= low, got {self.high} < {self.low}")
        if self.period < 2:
            raise ValueError(f"period must be >= 2, got {self.period}")

    def level(self, step: int) -> int:
        """Sinusoid between ``low`` and ``high``, trough at step 0."""
        mid = (self.high + self.low) / 2.0
        amplitude = (self.high - self.low) / 2.0
        phase = 2.0 * math.pi * (step % self.period) / self.period
        return max(self.low, min(self.high, round(mid - amplitude * math.cos(phase))))


@dataclass(frozen=True)
class BurstyTrace(TrafficTrace):
    """Quiet baseline punctuated by periodic bursts of heavy load.

    The trace cycles through ``quiet_steps`` steps at ``base`` followed by
    ``burst_steps`` steps at ``burst`` — a deterministic stand-in for an
    on/off (interrupted-Poisson-like) arrival process.
    """

    base: int = 1
    burst: int = 4
    quiet_steps: int = 5
    burst_steps: int = 2

    def __post_init__(self) -> None:
        """Validate levels and cycle segment lengths."""
        if self.base < 1:
            raise ValueError(f"base must be >= 1, got {self.base}")
        if self.burst < self.base:
            raise ValueError(f"burst must be >= base, got {self.burst} < {self.base}")
        if self.quiet_steps < 1 or self.burst_steps < 1:
            raise ValueError("quiet_steps and burst_steps must both be >= 1")

    def level(self, step: int) -> int:
        """``base`` during the quiet segment of the cycle, ``burst`` otherwise."""
        position = step % (self.quiet_steps + self.burst_steps)
        return self.base if position < self.quiet_steps else self.burst


@dataclass(frozen=True)
class FlashCrowdTrace(TrafficTrace):
    """One sudden sustained spike on top of a steady baseline.

    Load sits at ``base`` until ``spike_start``, jumps to ``peak`` for
    ``spike_steps`` steps, then returns to ``base`` — the flash-crowd shape
    a slice sees when an event suddenly draws users into one cell.
    """

    base: int = 1
    peak: int = 4
    spike_start: int = 4
    spike_steps: int = 3

    def __post_init__(self) -> None:
        """Validate levels and the spike window."""
        if self.base < 1:
            raise ValueError(f"base must be >= 1, got {self.base}")
        if self.peak < self.base:
            raise ValueError(f"peak must be >= base, got {self.peak} < {self.base}")
        if self.spike_start < 0 or self.spike_steps < 1:
            raise ValueError("spike_start must be >= 0 and spike_steps >= 1")

    def level(self, step: int) -> int:
        """``peak`` within the spike window, ``base`` elsewhere."""
        if self.spike_start <= step < self.spike_start + self.spike_steps:
            return self.peak
        return self.base


@dataclass(frozen=True)
class RampTrace(TrafficTrace):
    """Load climbing linearly from ``low`` to ``high`` and holding the plateau.

    The observable-load counterpart of a mid-episode traffic drift
    (:class:`~repro.sim.faults.DriftRamp` is the fault-plane analogue on
    multipliers): the level sits at ``low`` until ``ramp_start``, climbs
    linearly over ``ramp_steps`` steps and stays at ``high`` afterwards —
    demand growth the offline policy never trained on.
    """

    low: int = 1
    high: int = 4
    ramp_start: int = 2
    ramp_steps: int = 6

    def __post_init__(self) -> None:
        """Validate the swing range and ramp window."""
        if self.low < 1:
            raise ValueError(f"low must be >= 1, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"high must be >= low, got {self.high} < {self.low}")
        if self.ramp_start < 0 or self.ramp_steps < 1:
            raise ValueError("ramp_start must be >= 0 and ramp_steps >= 1")

    def level(self, step: int) -> int:
        """``low`` before the ramp, linear climb inside it, ``high`` after."""
        if step < self.ramp_start:
            return self.low
        if step >= self.ramp_start + self.ramp_steps - 1:
            return self.high
        progress = (step - self.ramp_start + 1) / self.ramp_steps
        return max(self.low, min(self.high, round(self.low + (self.high - self.low) * progress)))
