"""Built-in catalog entries: the paper's slice plus 5G-style workload classes.

Eight entries register themselves on import:

``frame-offloading``
    The paper's prototype workload (Sec. 7): one user uploading 540p camera
    frames for edge feature extraction under a 300 ms / 90% SLA.
``embb-video``
    eMBB-style video streaming: small uplink requests, large downlink
    segments, throughput-bound.
``urllc-control``
    URLLC-style control traffic: tiny frames, millisecond compute and a
    tight 100 ms / 95% SLA.
``mmtc-telemetry``
    mMTC-style telemetry: many aggregated sensor reports, tiny payloads,
    a relaxed one-second SLA at 80% availability.
``frame-offloading-diurnal``, ``embb-bursty``, ``flash-crowd``
    Dynamic variants replaying diurnal / bursty / flash-crowd traffic traces
    (Figs. 25–26 generalised beyond the constant-level sweep).
``mixed-enterprise``
    The multi-slice contention scenario: all four workload classes sharing
    one constrained cell, transport link and edge host.

Values are chosen to be *plausible for the simulator's latency model* (so
every entry can actually meet its SLA with a sensible allocation), not
measured from additional hardware; see ``docs/scenario-catalog.md`` for the
derivations.
"""

from __future__ import annotations

from repro.prototype.slice_manager import SLA
from repro.scenarios.catalog import ScenarioSpec, SliceWorkload, register_scenario
from repro.scenarios.traces import BurstyTrace, DiurnalTrace, FlashCrowdTrace
from repro.sim.config import SliceConfig
from repro.sim.multislice import ResourceBudget
from repro.sim.scenario import Scenario

__all__ = [
    "FRAME_OFFLOADING",
    "EMBB_VIDEO",
    "URLLC_CONTROL",
    "MMTC_TELEMETRY",
    "FRAME_OFFLOADING_DIURNAL",
    "EMBB_BURSTY",
    "FLASH_CROWD",
    "MIXED_ENTERPRISE",
]


def _frame_offloading_workload() -> SliceWorkload:
    """The paper's frame-offloading slice at its prototype settings."""
    return SliceWorkload(
        name="frame-offloading",
        scenario=Scenario(),  # the prototype defaults: 28.8 kB frames, 81 ms ORB compute
        sla=SLA(latency_threshold_ms=300.0, availability=0.9),
        deployed_config=SliceConfig(
            bandwidth_ul=10.0,
            bandwidth_dl=5.0,
            mcs_offset_ul=0.0,
            mcs_offset_dl=0.0,
            backhaul_bw=10.0,
            cpu_ratio=0.8,
        ),
    )


def _embb_video_workload() -> SliceWorkload:
    """eMBB-style streaming: large downlink segments dominate the latency."""
    return SliceWorkload(
        name="embb-video",
        scenario=Scenario(
            traffic=2,
            frame_size_mean_bytes=2_000.0,     # uplink segment request
            frame_size_std_bytes=400.0,
            result_size_bytes=250_000.0,       # 250 kB downlink video segment
            compute_time_mean_ms=12.0,         # server-side segment lookup/packaging
            compute_time_std_ms=4.0,
            base_loading_time_ms=5.0,
        ),
        sla=SLA(latency_threshold_ms=800.0, availability=0.9),
        deployed_config=SliceConfig(
            bandwidth_ul=8.0,
            bandwidth_dl=30.0,
            mcs_offset_ul=0.0,
            mcs_offset_dl=0.0,
            backhaul_bw=30.0,
            cpu_ratio=0.3,
        ),
    )


def _urllc_control_workload() -> SliceWorkload:
    """URLLC-style control loop: tiny payloads under a tight tail SLA."""
    return SliceWorkload(
        name="urllc-control",
        scenario=Scenario(
            traffic=1,
            frame_size_mean_bytes=200.0,       # sensor/actuator command
            frame_size_std_bytes=40.0,
            result_size_bytes=100.0,
            compute_time_mean_ms=2.0,          # control-law evaluation
            compute_time_std_ms=0.5,
            base_loading_time_ms=1.0,
        ),
        # The testbed's hidden per-frame overheads and 3% latency spikes put a
        # hard floor near 60 ms / 96%; 100 ms at 95% is tight but achievable.
        sla=SLA(latency_threshold_ms=100.0, availability=0.95),
        deployed_config=SliceConfig(
            bandwidth_ul=15.0,
            bandwidth_dl=10.0,
            mcs_offset_ul=2.0,                 # robustness over throughput
            mcs_offset_dl=2.0,
            backhaul_bw=20.0,
            cpu_ratio=0.5,
        ),
    )


def _mmtc_telemetry_workload() -> SliceWorkload:
    """mMTC-style telemetry: many aggregated reports, minimal allocations."""
    return SliceWorkload(
        name="mmtc-telemetry",
        scenario=Scenario(
            traffic=4,                         # aggregated device reports in flight
            frame_size_mean_bytes=500.0,
            frame_size_std_bytes=150.0,
            result_size_bytes=100.0,
            compute_time_mean_ms=5.0,          # ingest + rule evaluation
            compute_time_std_ms=2.0,
            base_loading_time_ms=10.0,
        ),
        sla=SLA(latency_threshold_ms=1000.0, availability=0.8),
        deployed_config=SliceConfig(
            bandwidth_ul=6.0,
            bandwidth_dl=3.0,
            mcs_offset_ul=0.0,
            mcs_offset_dl=0.0,
            backhaul_bw=2.0,
            cpu_ratio=0.1,
        ),
    )


FRAME_OFFLOADING = register_scenario(
    ScenarioSpec(
        name="frame-offloading",
        description="The paper's slice: 540p frame offloading, 300 ms / 90% SLA",
        slices=(_frame_offloading_workload(),),
        tags=("paper", "video-analytics"),
    )
)

EMBB_VIDEO = register_scenario(
    ScenarioSpec(
        name="embb-video",
        description="eMBB video streaming: 250 kB downlink segments, 800 ms / 90% SLA",
        slices=(_embb_video_workload(),),
        tags=("embb", "streaming"),
    )
)

URLLC_CONTROL = register_scenario(
    ScenarioSpec(
        name="urllc-control",
        description="URLLC control traffic: 200 B commands, 100 ms / 95% SLA",
        slices=(_urllc_control_workload(),),
        # Tight SLAs tolerate less sim-to-real drift: weight explainability higher.
        stage1_alpha=10.0,
        stage1_distance_threshold=0.2,
        tags=("urllc", "control"),
    )
)

MMTC_TELEMETRY = register_scenario(
    ScenarioSpec(
        name="mmtc-telemetry",
        description="mMTC telemetry: aggregated sensor reports, 1 s / 80% SLA",
        slices=(_mmtc_telemetry_workload(),),
        tags=("mmtc", "telemetry"),
    )
)

FRAME_OFFLOADING_DIURNAL = register_scenario(
    ScenarioSpec(
        name="frame-offloading-diurnal",
        description="Frame offloading under a diurnal 1-4 user load curve",
        slices=(
            SliceWorkload(
                name="frame-offloading",
                scenario=_frame_offloading_workload().scenario,
                sla=SLA(latency_threshold_ms=500.0, availability=0.9),  # Figs. 25-26 threshold
                deployed_config=_frame_offloading_workload().deployed_config,
                trace=DiurnalTrace(low=1, high=4, period=12),
            ),
        ),
        tags=("paper", "dynamic", "diurnal"),
    )
)

EMBB_BURSTY = register_scenario(
    ScenarioSpec(
        name="embb-bursty",
        description="eMBB streaming with periodic 1→3 stream bursts",
        slices=(
            SliceWorkload(
                name="embb-video",
                scenario=_embb_video_workload().scenario.replace(traffic=1),
                sla=_embb_video_workload().sla,
                deployed_config=_embb_video_workload().deployed_config,
                trace=BurstyTrace(base=1, burst=3, quiet_steps=4, burst_steps=2),
            ),
        ),
        tags=("embb", "dynamic", "bursty"),
    )
)

FLASH_CROWD = register_scenario(
    ScenarioSpec(
        name="flash-crowd",
        description="Frame offloading hit by a sudden sustained 4-user spike",
        slices=(
            SliceWorkload(
                name="frame-offloading",
                scenario=_frame_offloading_workload().scenario,
                sla=SLA(latency_threshold_ms=500.0, availability=0.9),
                deployed_config=_frame_offloading_workload().deployed_config,
                trace=FlashCrowdTrace(base=1, peak=4, spike_start=4, spike_steps=3),
            ),
        ),
        tags=("paper", "dynamic", "flash-crowd"),
    )
)

MIXED_ENTERPRISE = register_scenario(
    ScenarioSpec(
        name="mixed-enterprise",
        description="Multi-slice contention: eMBB + URLLC + mMTC + frame offloading on one constrained cell",
        slices=(
            _frame_offloading_workload(),
            _embb_video_workload(),
            _urllc_control_workload(),
            _mmtc_telemetry_workload(),
        ),
        # A constrained enterprise small cell: half a carrier's PRBs, a thin
        # transport link and a single edge core, so the four deployed
        # configurations genuinely oversubscribe every shared dimension.
        budget=ResourceBudget(
            bandwidth_ul=25.0,
            bandwidth_dl=25.0,
            backhaul_bw=30.0,
            cpu_ratio=1.0,
        ),
        tags=("multi-slice", "contention"),
    )
)
