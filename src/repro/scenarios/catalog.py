"""The scenario catalog: named, reusable slice workloads.

The paper evaluates one slice running one frame-offloading application at
fixed prototype settings.  The catalog turns that single hard-coded setup
into a registry of named :class:`ScenarioSpec` entries — each bundling the
slice workload(s), per-slice SLAs, deployed configurations, traffic traces
and stage-1 search-space defaults — so every stage, baseline and experiment
runner can be pointed at any workload by name (``python -m repro run
--scenario <name>``) instead of by editing source.

A :class:`ScenarioSpec` holds one :class:`SliceWorkload` per slice; specs
with several slices are measured concurrently with resource contention
through :mod:`repro.sim.multislice`.  The built-in entries live in
:mod:`repro.scenarios.workloads` and register themselves when
``repro.scenarios`` is imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.scenarios.traces import TrafficTrace
from repro.sim.config import SliceConfig
from repro.sim.faults import FaultSchedule
from repro.sim.multislice import ResourceBudget, SliceRun
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario

__all__ = [
    "SliceWorkload",
    "ScenarioSpec",
    "UnknownScenarioError",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
]


@dataclass(frozen=True)
class SliceWorkload:
    """One slice's workload: scenario, SLA, deployed configuration, traffic trace.

    Attributes
    ----------
    name:
        Slice name, unique within its :class:`ScenarioSpec`.
    scenario:
        The physical/workload description (frame statistics, compute times,
        mobility, baseline traffic).
    sla:
        The tenant's latency threshold ``Y`` and availability ``E``.
    deployed_config:
        Configuration deployed while collecting the online dataset ``D_r``
        (and the slice's starting allocation in multi-slice rounds).
    trace:
        Optional traffic trace; ``None`` means the constant
        ``scenario.traffic`` level.  Dynamic entries replay the trace during
        online learning (Figs. 25–26 style).
    """

    name: str
    scenario: Scenario = field(default_factory=Scenario)
    sla: SLA = field(default_factory=SLA)
    deployed_config: SliceConfig = field(default_factory=SliceConfig)
    trace: TrafficTrace | None = None

    def traffic_at(self, step: int) -> int:
        """Traffic level at measurement step ``step`` (trace-driven when dynamic)."""
        if self.trace is None:
            return self.scenario.traffic
        return self.trace.level(step)

    def mean_traffic(self) -> int:
        """Representative constant traffic level (trace mean, rounded, when dynamic)."""
        if self.trace is None:
            return self.scenario.traffic
        return max(1, round(self.trace.mean_level()))

    def make_simulator(self, seed: int = 0) -> NetworkSimulator:
        """The offline (original) simulator under this workload's scenario."""
        return NetworkSimulator(scenario=self.scenario, seed=seed)

    def make_real_network(self, seed: int = 1) -> RealNetwork:
        """The real-network testbed substitute under this workload's scenario."""
        return RealNetwork(scenario=self.scenario, seed=seed)

    def slice_run(self, seed: int | None = None) -> SliceRun:
        """The workload's contribution to a multi-slice measurement round."""
        return SliceRun(
            name=self.name,
            config=self.deployed_config,
            scenario=self.scenario,
            sla=self.sla,
            seed=seed,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named catalog entry: one or more slice workloads plus search defaults.

    Attributes
    ----------
    name:
        Registry key (kebab-case by convention).
    description:
        One-line human-readable summary shown by ``python -m repro
        list-scenarios``.
    slices:
        The slice workloads; more than one makes the entry a multi-slice
        contention scenario.
    budget:
        Shared physical budgets the slices contend for.
    stage1_alpha:
        Default weight α of the parameter-distance penalty in the stage-1
        search objective (Eq. 2).
    stage1_distance_threshold:
        Default threshold ``H`` on the normalised parameter distance.
    tags:
        Free-form labels (``"embb"``, ``"dynamic"``...) for filtering.
    faults:
        Optional :class:`~repro.sim.faults.FaultSchedule` making the entry a
        *hostile* scenario: drift ramps, storm windows and dropout masks
        injected step by step during online learning and evaluation replay
        (``python -m repro run --faults``, the eval harness's hostile
        cases).  ``None`` — the default — is a cooperative environment.
    """

    name: str
    description: str
    slices: tuple[SliceWorkload, ...]
    budget: ResourceBudget = field(default_factory=ResourceBudget)
    stage1_alpha: float = 7.0
    stage1_distance_threshold: float = 0.3
    tags: tuple[str, ...] = ()
    faults: FaultSchedule | None = None

    def __post_init__(self) -> None:
        """Validate the slice list and search-space defaults."""
        if not self.slices:
            raise ValueError(f"scenario {self.name!r} must bundle at least one slice workload")
        names = [workload.name for workload in self.slices]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r} has duplicate slice names: {names}")
        if self.stage1_alpha < 0:
            raise ValueError(f"stage1_alpha must be >= 0, got {self.stage1_alpha}")
        if self.stage1_distance_threshold <= 0:
            raise ValueError(
                f"stage1_distance_threshold must be positive, got {self.stage1_distance_threshold}"
            )

    @property
    def is_multislice(self) -> bool:
        """Whether the entry runs several slices concurrently with contention."""
        return len(self.slices) > 1

    @property
    def is_dynamic(self) -> bool:
        """Whether any slice carries a (non-constant) traffic trace."""
        return any(workload.trace is not None for workload in self.slices)

    @property
    def is_hostile(self) -> bool:
        """Whether the entry injects faults (drift, storms, dropouts)."""
        return self.faults is not None

    @property
    def primary(self) -> SliceWorkload:
        """The first slice workload (the whole entry, for single-slice specs)."""
        return self.slices[0]

    def slice_named(self, name: str) -> SliceWorkload:
        """Look up a slice workload by name."""
        for workload in self.slices:
            if workload.name == name:
                return workload
        raise KeyError(f"scenario {self.name!r} has no slice named {name!r}")

    def replace(self, **changes) -> "ScenarioSpec":
        """Return a copy with some fields replaced (for derived entries)."""
        return replace(self, **changes)

    def slice_runs(self, seed: int | None = None) -> list[SliceRun]:
        """One :class:`~repro.sim.multislice.SliceRun` per slice, seeded from ``seed``."""
        return [
            workload.slice_run(seed=None if seed is None else seed + index)
            for index, workload in enumerate(self.slices)
        ]


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not in the catalog; lists what is."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        """Build the lookup error for ``name`` given the ``available`` entries."""
        self.name = name
        self.available = available
        super().__init__(
            f"unknown scenario {name!r}; available: {', '.join(available) or '(none registered)'}"
        )

    def __str__(self) -> str:
        """The readable message (KeyError would repr-quote it otherwise)."""
        return self.args[0]


_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace_existing: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the catalog (and return it, for chaining).

    Registering a name twice is an error unless ``replace_existing`` is set —
    catching accidental collisions matters more than convenience here.
    """
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a catalog entry by name.

    Raises :class:`UnknownScenarioError` (a ``KeyError``) listing the
    registered names when the lookup fails.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, scenario_names()) from None


def list_scenarios() -> tuple[ScenarioSpec, ...]:
    """Every registered catalog entry, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())


def scenario_names() -> tuple[str, ...]:
    """Sorted names of the registered catalog entries."""
    return tuple(sorted(_REGISTRY))
