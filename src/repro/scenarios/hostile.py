"""Hostile catalog entries: the fault-injected scenarios stage 3 must survive.

Three entries register themselves on import, each pairing the paper's
frame-offloading slice (at the Figs. 25–26 dynamic SLA of 500 ms / 90%)
with a :class:`~repro.sim.faults.FaultSchedule`:

``traffic-drift``
    A mid-episode demand excursion: the load multiplier ramps from 1x to 3x
    over five steps, holds the 3x plateau, then recedes — the offline
    policy's training level quietly stops existing for most of the episode.
    Even high-headroom configurations violate at the 3x peak; the watchdog's
    job is to stop learning on the drifted workload and re-arm once demand
    recedes.
``sla-storm``
    A flash-crowd SLA storm: two extra users join for a six-step window
    while the radio and edge conditions degrade
    (:meth:`~repro.sim.imperfections.Imperfections.degraded` at severity
    1.5).  The storm raises the resource bar — high-headroom configurations
    ride it out, the marginal ones the usage-minimising learner explores do
    not — and an unprotected learner keeps fitting its models on the
    wreckage.
``telemetry-blackout``
    A periodic telemetry blackout across a rising load ramp: measurements
    still run, but every third pair of steps their telemetry never reaches
    the controller, which scores them as zero QoE unless it knows better.

The schedules are pure functions of the measurement step (deterministic
under seed like every trace), so hostile episodes replay byte-identically
under every executor kind.  ``tests/test_robustness.py`` holds the chaos
gate: each entry must break the unprotected learner and be survived by the
watchdog (:mod:`repro.core.watchdog`); the eval harness replays each entry
in its ``hostile`` case group.
"""

from __future__ import annotations

from repro.prototype.slice_manager import SLA
from repro.scenarios.catalog import ScenarioSpec, SliceWorkload, register_scenario
from repro.scenarios.traces import RampTrace
from repro.scenarios.workloads import _frame_offloading_workload
from repro.sim.config import SliceConfig
from repro.sim.faults import DriftRamp, DropoutWindow, FaultSchedule, StormWindow

__all__ = [
    "TRAFFIC_DRIFT",
    "SLA_STORM",
    "TELEMETRY_BLACKOUT",
]


def _hostile_workload(trace=None) -> SliceWorkload:
    """The frame-offloading slice at the dynamic-evaluation SLA (500 ms / 90%).

    The deployed configuration is deliberately over-provisioned — the
    operator baseline the paper's learner is supposed to beat on usage.
    Here it doubles as the vetted safe-mode fallback: enough headroom to
    ride out a flash crowd or a 3x demand excursion that breaks the lean
    operating points the learner explores.
    """
    base = _frame_offloading_workload()
    return SliceWorkload(
        name="frame-offloading",
        scenario=base.scenario,
        sla=SLA(latency_threshold_ms=500.0, availability=0.9),
        deployed_config=SliceConfig(
            bandwidth_ul=24.0,
            bandwidth_dl=20.0,
            backhaul_bw=50.0,
            cpu_ratio=0.95,
        ),
        trace=trace,
    )


TRAFFIC_DRIFT = register_scenario(
    ScenarioSpec(
        name="traffic-drift",
        description="Hostile: a 1x→3x mid-episode demand excursion that slowly recedes",
        slices=(_hostile_workload(),),
        tags=("paper", "hostile", "drift"),
        faults=FaultSchedule(drifts=(DriftRamp(start=2, steps=5, multiplier=3.0, hold=2),)),
    )
)

SLA_STORM = register_scenario(
    ScenarioSpec(
        name="sla-storm",
        description="Hostile: a 6-step flash-crowd storm with degraded radio/compute",
        slices=(_hostile_workload(),),
        tags=("paper", "hostile", "storm"),
        faults=FaultSchedule(
            storms=(StormWindow(start=3, steps=6, extra_traffic=2, severity=1.5),)
        ),
    )
)

TELEMETRY_BLACKOUT = register_scenario(
    ScenarioSpec(
        name="telemetry-blackout",
        description="Hostile: periodic 2-step telemetry blackouts across a load ramp",
        slices=(_hostile_workload(trace=RampTrace(low=1, high=2, ramp_start=3, ramp_steps=4)),),
        tags=("paper", "hostile", "dropout"),
        faults=FaultSchedule(dropouts=(DropoutWindow(start=2, steps=2, period=6),)),
    )
)
