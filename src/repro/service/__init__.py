"""Long-lived service mode: persistent store, job queue, tracing, costs.

The one-shot ``python -m repro`` CLI pays the full measurement cost on every
invocation because the engine's in-memory cache dies with the process.  This
package turns the reproduction into a long-lived service:

:mod:`repro.service.store`
    A disk-backed content-addressed result store keyed by the engine's
    existing cache fingerprints.  Wired under
    :class:`~repro.engine.cache.MeasurementCache` as a second tier, it makes
    the cache survive restarts and shares results across concurrent worker
    processes (atomic rename writes, checksum-verified reads, size-bounded
    LRU eviction).

:mod:`repro.service.jobs` / :mod:`repro.service.daemon`
    A filesystem-spool job queue plus the asyncio daemon behind
    ``python -m repro serve`` / ``submit`` / ``status`` / ``tail``: stage
    and eval runs execute through the existing
    :class:`~repro.engine.engine.MeasurementEngine` with per-job isolation
    and graceful shutdown.

:mod:`repro.service.tracer` / :mod:`repro.service.costs`
    Structured span/event streaming (JSONL, schema ``atlas-trace/1``) and
    the per-run cost ledger (sim-seconds, engine requests, per-tier cache
    hits, wall time) surfaced in job status, eval reports and
    ``BENCH_engine.json``.

See ``docs/service.md`` for the daemon lifecycle, the store layout and the
event/ledger schemas.
"""

from repro.service.costs import COSTS_SCHEMA, CostLedger
from repro.service.jobs import (
    JOB_SCHEMA,
    JobSpec,
    ServicePaths,
    claim_next_job,
    execute_job,
    job_record,
    list_jobs,
    submit_job,
)
from repro.service.store import (
    STORE_SCHEMA,
    ResultStore,
    StoreKeyError,
    StoreStats,
    canonical_key_bytes,
    key_digest,
)
from repro.service.tracer import TRACE_SCHEMA, NullTracer, Tracer, read_trace

__all__ = [
    "COSTS_SCHEMA",
    "CostLedger",
    "JOB_SCHEMA",
    "JobSpec",
    "NullTracer",
    "ResultStore",
    "STORE_SCHEMA",
    "ServicePaths",
    "StoreKeyError",
    "StoreStats",
    "TRACE_SCHEMA",
    "Tracer",
    "canonical_key_bytes",
    "claim_next_job",
    "execute_job",
    "job_record",
    "key_digest",
    "list_jobs",
    "read_trace",
    "submit_job",
]
