"""Disk-backed content-addressed result store for measurement results.

The engine's in-memory :class:`~repro.engine.cache.MeasurementCache` keys
every result on the full content of its query — environment fingerprint,
request key and the executor's numerics family.  :class:`ResultStore`
persists those same ``(key, result)`` pairs on disk so the cache survives
process restarts and is shared across concurrent worker processes:

* **Content addressing** — :func:`canonical_key_bytes` deterministically
  serialises a cache-key tuple (ints, floats via ``float.hex``, strings,
  nested tuples and the simulator's frozen dataclasses) and
  :func:`key_digest` hashes it to the blob name, so two processes always
  agree on where a result lives.  The engine key already carries the
  numerics family and any fault fingerprint, so family separation and
  fault honesty are inherited, not re-implemented.
* **Atomic writes** — blobs are written to a private temp file (named
  after the writer's pid) and published with ``os.replace``; readers can
  never observe a half-written blob under its final name.
* **Checksum-verified reads** — every blob embeds the SHA-256 of its
  payload; a corrupted or truncated blob is detected, dropped, and
  reported as a miss — never returned.
* **Size-bounded LRU eviction** — the store evicts least-recently-used
  blobs (file mtime, refreshed on every hit) once ``max_bytes`` is
  exceeded; the entry just written is always protected.
* **Crash recovery** — temp files whose writer pid is dead are reaped on
  open, so a SIGKILL mid-``put`` leaves no debris and loses at most the
  entry being written.

Layout under ``root``::

    meta.json               # {"schema": "atlas-store/1"}
    objects/<d2>/<digest>.blob
    tmp/<digest>.<pid>.<seq>.part

The store is safe to share between processes without locks: writes are
atomic renames, reads are tolerant of concurrent eviction (an unlinked
blob is just a miss), and eviction skips files that vanish mid-scan.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from itertools import count
from pathlib import Path
from threading import Lock
from typing import Any, Iterator

import numpy as np

__all__ = [
    "DEFAULT_MAX_BYTES",
    "ResultStore",
    "STORE_SCHEMA",
    "StoreKeyError",
    "StoreStats",
    "canonical_key_bytes",
    "key_digest",
]

#: Schema identifier embedded in every blob header and ``meta.json``.
STORE_SCHEMA = "atlas-store/1"

#: Default size budget of a store (LRU-evicted beyond this).
DEFAULT_MAX_BYTES = 2 * 1024**3

#: First bytes of every blob file; anything else is corrupt on sight.
_MAGIC = b"ATLASTORE1\n"

#: Pickle protocol of blob payloads (fixed so digests of payload bytes are
#: comparable across interpreter minor versions that share protocol 4).
_PICKLE_PROTOCOL = 4


class StoreKeyError(TypeError):
    """A cache key contains a value with no canonical byte encoding."""


# --------------------------------------------------------------- key encoding
def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"z;"
    elif value is True:
        out += b"b1;"
    elif value is False:
        out += b"b0;"
    elif isinstance(value, int):
        out += b"i%d;" % value
    elif isinstance(value, float):
        out += b"f" + float(value).hex().encode("ascii") + b";"
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif isinstance(value, bytes):
        out += b"y%d:" % len(value)
        out += value
    elif isinstance(value, np.generic):
        _encode(value.item(), out)
    elif isinstance(value, np.ndarray):
        raw = np.ascontiguousarray(value).tobytes()
        out += b"a" + str(value.dtype).encode("ascii") + b"|"
        out += ",".join(str(dim) for dim in value.shape).encode("ascii") + b"|"
        out += b"%d:" % len(raw)
        out += raw
    elif isinstance(value, (tuple, list)):
        out += b"("
        for item in value:
            _encode(item, out)
        out += b")"
    elif isinstance(value, dict):
        encoded = []
        for key, item in value.items():
            pair = bytearray()
            _encode(key, pair)
            _encode(item, pair)
            encoded.append(bytes(pair))
        out += b"<"
        for pair in sorted(encoded):
            out += pair
        out += b">"
    elif isinstance(value, (set, frozenset)):
        encoded = []
        for item in value:
            member = bytearray()
            _encode(item, member)
            encoded.append(bytes(member))
        out += b"{"
        for member in sorted(encoded):
            out += member
        out += b"}"
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        name = f"{cls.__module__}.{cls.__qualname__}".encode("ascii")
        out += b"D%d:" % len(name)
        out += name
        out += b"("
        for field in dataclasses.fields(value):
            _encode(field.name, out)
            _encode(getattr(value, field.name), out)
        out += b")"
    else:
        raise StoreKeyError(
            f"cache key component {value!r} of type {type(value).__name__} has no "
            "canonical encoding; extend repro.service.store._encode or keep it out "
            "of environment fingerprints"
        )


def canonical_key_bytes(key: Any) -> bytes:
    """Deterministic byte serialisation of a cache key.

    Stable across processes and machines for the value kinds that appear in
    engine cache keys (scalars, strings, nested tuples, numpy scalars and
    arrays, and frozen dataclasses — encoded with their qualified class name
    and field values).  Floats encode via ``float.hex`` so the mapping is
    exact, not repr-rounded.
    """
    out = bytearray()
    _encode(key, out)
    return bytes(out)


def key_digest(key: Any) -> str:
    """Content address of a cache key: SHA-256 of its canonical bytes."""
    return hashlib.sha256(canonical_key_bytes(key)).hexdigest()


# -------------------------------------------------------------------- stats
@dataclass
class StoreStats:
    """Per-process counters of one :class:`ResultStore` handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0
    reaped_temp: int = 0
    put_errors: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (ledger/benchmark serialisation)."""
        return {field.name: getattr(self, field.name) for field in dataclasses.fields(self)}


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but owned elsewhere
        return True
    except OSError:  # pragma: no cover - conservative: assume alive
        return True
    return True


# -------------------------------------------------------------------- store
class ResultStore:
    """Persistent content-addressed store of measurement results.

    Parameters
    ----------
    root:
        Directory of the store (created if missing).
    max_bytes:
        Size budget of the ``objects/`` tree; least-recently-used blobs are
        evicted beyond it.  ``None`` disables eviction.
    reap:
        Reap dead writers' temp files on open (crash recovery; default on).
    """

    def __init__(
        self,
        root: str | Path,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        reap: bool = True,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbounded)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._tmp.mkdir(parents=True, exist_ok=True)
        self._seq = count()
        self._lock = Lock()
        meta = self.root / "meta.json"
        if not meta.exists():
            self._atomic_write(meta, json.dumps({"schema": STORE_SCHEMA}).encode() + b"\n")
        if reap:
            self.reap_temp()

    # ----------------------------------------------------------------- paths
    def path_for(self, digest: str) -> Path:
        """Final blob path of a digest (two-character shard directories)."""
        return self._objects / digest[:2] / f"{digest}.blob"

    def _tmp_path(self, digest: str) -> Path:
        return self._tmp / f"{digest}.{os.getpid()}.{next(self._seq)}.part"

    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # ------------------------------------------------------------------- put
    def put(self, key: Any, value: Any) -> str:
        """Persist ``value`` under ``key`` and return the blob digest.

        The blob is staged in ``tmp/`` (fsynced) and published with one
        atomic rename, then the LRU budget is enforced — protecting the
        entry just written, which is therefore always retrievable
        immediately after ``put`` returns.
        """
        digest = key_digest(key)
        payload = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        header = json.dumps(
            {
                "schema": STORE_SCHEMA,
                "key": digest,
                "payload_size": len(payload),
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("ascii")
        blob = _MAGIC + header + b"\n" + payload
        final = self.path_for(digest)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(digest)
        try:
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        except OSError:
            self.stats.put_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        self.stats.bytes_written += len(blob)
        self.evict_if_needed(protect=(digest,))
        return digest

    # ------------------------------------------------------------------- get
    def get(self, key: Any) -> Any | None:
        """Return the stored value under ``key`` or ``None`` on a miss.

        Any validation failure — bad magic, unparsable header, size or
        checksum mismatch, digest mismatch — drops the blob and reports a
        miss; a corrupted entry is never returned.
        """
        digest = key_digest(key)
        path = self.path_for(digest)
        try:
            blob = path.read_bytes()
        except (FileNotFoundError, IsADirectoryError):
            self.stats.misses += 1
            return None
        value, valid = self._decode(blob, digest)
        if not valid:
            self._drop_corrupt(path)
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # refresh LRU recency for cross-process eviction
        except OSError:
            pass  # concurrently evicted: the value we hold is still good
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        return value

    def contains(self, key: Any) -> bool:
        """Whether a blob exists for ``key`` (without validating it)."""
        return self.path_for(key_digest(key)).exists()

    def _decode(self, blob: bytes, digest: str) -> tuple[Any, bool]:
        if not blob.startswith(_MAGIC):
            return None, False
        newline = blob.find(b"\n", len(_MAGIC))
        if newline < 0:
            return None, False
        try:
            header = json.loads(blob[len(_MAGIC) : newline])
        except ValueError:
            return None, False
        payload = blob[newline + 1 :]
        if (
            not isinstance(header, dict)
            or header.get("schema") != STORE_SCHEMA
            or header.get("key") != digest
            or header.get("payload_size") != len(payload)
            or header.get("payload_sha256") != hashlib.sha256(payload).hexdigest()
        ):
            return None, False
        try:
            return pickle.loads(payload), True
        except Exception:
            # The checksum matched, so this is a same-content re-serialisation
            # issue (e.g. a renamed class), not disk corruption — still a miss.
            return None, False

    def _drop_corrupt(self, path: Path) -> None:
        self.stats.corrupt_dropped += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -------------------------------------------------------------- eviction
    def entries(self) -> Iterator[tuple[Path, int, float]]:
        """Yield ``(path, size, mtime)`` of every blob currently on disk."""
        try:
            shards = sorted(self._objects.iterdir())
        except FileNotFoundError:
            return
        for shard in shards:
            try:
                names = sorted(shard.iterdir())
            except (FileNotFoundError, NotADirectoryError):
                continue
            for path in names:
                if path.suffix != ".blob":
                    continue
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue
                yield path, stat.st_size, stat.st_mtime

    def entry_count(self) -> int:
        """Number of blobs currently on disk."""
        return sum(1 for _ in self.entries())

    def total_bytes(self) -> int:
        """Total size of all blobs currently on disk."""
        return sum(size for _, size, _ in self.entries())

    def evict_if_needed(self, protect: tuple[str, ...] = ()) -> int:
        """Enforce ``max_bytes``, never evicting the protected digests.

        Returns the number of evicted blobs.  Oldest-``mtime`` first; hits
        refresh mtime, so this is LRU across every process sharing the
        directory.
        """
        if self.max_bytes is None:
            return 0
        with self._lock:
            listing = sorted(self.entries(), key=lambda entry: (entry[2], entry[0].name))
            total = sum(size for _, size, _ in listing)
            protected = {f"{digest}.blob" for digest in protect}
            evicted = 0
            for path, size, _ in listing:
                if total <= self.max_bytes:
                    break
                if path.name in protected:
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                evicted += 1
            self.stats.evictions += evicted
            return evicted

    # ------------------------------------------------------------- recovery
    def reap_temp(self) -> int:
        """Remove temp files left by dead writers; return how many.

        Temp names embed the writer's pid (``<digest>.<pid>.<seq>.part``);
        a file whose pid no longer exists is debris from a crashed or
        SIGKILLed ``put`` and is deleted.  Live writers' files are left
        alone, as are files this process is still writing.
        """
        reaped = 0
        try:
            names = list(self._tmp.iterdir())
        except FileNotFoundError:
            return 0
        for path in names:
            parts = path.name.split(".")
            pid: int | None = None
            if len(parts) >= 3:
                try:
                    pid = int(parts[1])
                except ValueError:
                    pid = None
            if pid is not None and (pid == os.getpid() or _pid_alive(pid)):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            reaped += 1
        self.stats.reaped_temp += reaped
        return reaped

    def verify(self) -> dict:
        """Validate every blob on disk; corrupt ones are dropped.

        Returns ``{"checked": n, "ok": n, "corrupt": [paths...]}`` — the
        post-crash health check used by the recovery tests and the daemon's
        startup log.
        """
        checked = ok = 0
        corrupt: list[str] = []
        for path, _, _ in list(self.entries()):
            checked += 1
            digest = path.name[: -len(".blob")]
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            _, valid = self._decode(blob, digest)
            if valid:
                ok += 1
            else:
                corrupt.append(str(path))
                self._drop_corrupt(path)
        return {"checked": checked, "ok": ok, "corrupt": corrupt}

    def clear(self) -> None:
        """Drop every blob (counters keep accumulating)."""
        for path, _, _ in list(self.entries()):
            try:
                os.unlink(path)
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Compact description of the store's location and budget."""
        return f"ResultStore(root={str(self.root)!r}, max_bytes={self.max_bytes})"
