"""Structured span/event streaming for service jobs and eval runs.

A :class:`Tracer` appends schema-versioned JSONL records to a trace file —
one line per event or span, flushed immediately so ``python -m repro tail``
can stream a running job's progress.  Records are deliberately flat::

    {"schema": "atlas-trace/1", "kind": "event", "name": "...",
     "ts": 1700000000.123, "attrs": {...}}
    {"schema": "atlas-trace/1", "kind": "span", "name": "...",
     "ts": ..., "duration_s": 0.42, "status": "ok", "attrs": {...}}

``ts`` is the wall-clock time the record was *emitted* (spans emit on
exit), ``duration_s`` is measured on the monotonic clock, and ``status``
is ``"ok"`` or ``"error"`` (the span body raised; the exception type is
recorded and re-raised).  Attribute values must be JSON-serialisable;
non-serialisable ones are stringified rather than dropped.

:class:`NullTracer` is the no-op stand-in, so call sites never need
``if tracer is not None`` guards.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from threading import Lock
from typing import Iterator

__all__ = ["NullTracer", "TRACE_SCHEMA", "Tracer", "read_trace"]

#: Schema identifier of every trace record.
TRACE_SCHEMA = "atlas-trace/1"


def _jsonable_attrs(attrs: dict) -> dict:
    safe = {}
    for key, value in attrs.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            value = repr(value)
        safe[key] = value
    return safe


class Tracer:
    """Append-only JSONL tracer (thread safe, flushes every record)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle.closed:  # pragma: no cover - late event after close
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def event(self, name: str, **attrs) -> None:
        """Emit one point-in-time event record."""
        self._write(
            {
                "schema": TRACE_SCHEMA,
                "kind": "event",
                "name": name,
                "ts": time.time(),
                "attrs": _jsonable_attrs(attrs),
            }
        )

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Time a block; emit one span record when it exits.

        Yields the mutable ``attrs`` dict so the body can attach results
        discovered mid-span (they are serialised on exit).
        """
        start = time.perf_counter()
        status = "ok"
        attrs = dict(attrs)
        try:
            yield attrs
        except BaseException as error:
            status = "error"
            attrs.setdefault("error", type(error).__name__)
            raise
        finally:
            self._write(
                {
                    "schema": TRACE_SCHEMA,
                    "kind": "span",
                    "name": name,
                    "ts": time.time(),
                    "duration_s": round(time.perf_counter() - start, 6),
                    "status": status,
                    "attrs": _jsonable_attrs(attrs),
                }
            )

    def close(self) -> None:
        """Close the underlying file handle."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "Tracer":
        """Enter the context manager (returns the tracer itself)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the trace file on context exit."""
        self.close()


class NullTracer:
    """No-op tracer with the same API (default at tracer-less call sites)."""

    def event(self, name: str, **attrs) -> None:
        """Discard the event."""

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Run the body without recording anything."""
        yield dict(attrs)

    def close(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "NullTracer":
        """Enter the context manager (returns the tracer itself)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Nothing to close on exit."""


def read_trace(path: str | Path) -> list[dict]:
    """Parse a trace file into records, skipping torn trailing lines.

    A crashed writer can leave a partial final line; it is ignored rather
    than raised so ``status``/``tail`` stay usable mid-crash.
    """
    records: list[dict] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records
