"""Per-run cost ledger: sim-seconds, engine requests, cache tiers, wall time.

Every service job, eval run and benchmark answers the same accounting
question: *what did this run cost, and how much of it was served from
cache?*  :class:`CostLedger` answers it by snapshotting three counter
sources when opened and diffing them when closed:

* the process-wide engine telemetry
  (:func:`repro.engine.engine.engine_telemetry` — measurements actually
  executed, batches submitted, simulated seconds produced);
* a :class:`~repro.engine.cache.MeasurementCache`'s tiered hit/miss
  counters (memory hits vs persistent-store hits vs misses);
* a :class:`~repro.service.store.ResultStore`'s per-process counters
  (puts, evictions, corruption drops, bytes moved).

The resulting dict (schema ``atlas-costs/1``) is written to each job's
``costs.json``, surfaced by ``python -m repro status``, embedded in the
eval report's ``provenance.costs`` section and in ``BENCH_engine.json``.
Counter deltas are exact and reconcilable — the concurrency tests assert
``engine_requests == cache.misses`` and ``cache.store_hits ==
store.hits`` — while ``wall_time_s`` is the only wall-clock field.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.engine.engine import engine_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cache import MeasurementCache
    from repro.service.store import ResultStore

__all__ = ["COSTS_SCHEMA", "CostLedger"]

#: Schema identifier of every cost payload.
COSTS_SCHEMA = "atlas-costs/1"


def _delta(after: dict, before: dict) -> dict:
    return {key: after[key] - before.get(key, 0) for key in after}


class CostLedger:
    """Measure the cost of one run as counter deltas plus wall time.

    Open the ledger immediately before the work, call :meth:`finish` after
    it; everything in between — including engines created by code the
    ledger never sees — is accounted through the process-wide telemetry.

    Parameters
    ----------
    cache:
        The measurement cache whose tiered hit/miss split to report
        (``None`` omits the ``cache`` section).
    store:
        The persistent result store whose counters to report (``None``
        omits the ``store`` section).
    """

    def __init__(
        self,
        cache: "MeasurementCache | None" = None,
        store: "ResultStore | None" = None,
    ) -> None:
        self.cache = cache
        self.store = store
        self._engine_before = engine_telemetry()
        self._cache_before = cache.stats.as_dict() if cache is not None else None
        self._store_before = store.stats.as_dict() if store is not None else None
        self._start = time.perf_counter()

    def finish(self) -> dict:
        """Close the ledger and return the ``atlas-costs/1`` payload."""
        wall_time_s = time.perf_counter() - self._start
        engine = _delta(engine_telemetry(), self._engine_before)
        payload = {
            "schema": COSTS_SCHEMA,
            "wall_time_s": round(wall_time_s, 6),
            "sim_seconds": round(engine["sim_seconds"], 6),
            "engine_requests": engine["executed_requests"],
            "engine_batches": engine["submitted_batches"],
            "cache": None,
            "store": None,
        }
        if self.cache is not None and self._cache_before is not None:
            cache = _delta(self.cache.stats.as_dict(), self._cache_before)
            served = cache["hits"] + cache["store_hits"]
            lookups = served + cache["misses"]
            payload["cache"] = {
                "memory_hits": cache["hits"],
                "store_hits": cache["store_hits"],
                "misses": cache["misses"],
                "evictions": cache["evictions"],
                "store_errors": cache["store_errors"],
                "hit_rate": round(served / lookups, 6) if lookups else 0.0,
            }
        if self.store is not None and self._store_before is not None:
            payload["store"] = _delta(self.store.stats.as_dict(), self._store_before)
        return payload
