"""Filesystem-spool job queue: submit, claim, execute stage/eval runs.

The service keeps its whole state in one directory tree — no sockets, no
broker — so submission works whether or not a daemon is running, survives
daemon restarts, and is trivially inspectable::

    <state>/
      queue/<job-id>.json      # submitted, waiting to be claimed
      jobs/<job-id>/job.json   # claimed: status queued→running→done|failed
      jobs/<job-id>/trace.jsonl    # atlas-trace/1 span/event stream
      jobs/<job-id>/log.txt        # stdout of the underlying pipeline
      jobs/<job-id>/result.json    # atlas-job-result/1 summary + costs
      jobs/<job-id>/costs.json     # atlas-costs/1 ledger of this job
      jobs/<job-id>/eval/          # eval jobs: run layout + EVAL_report.json
      store/                   # persistent result store shared by all jobs
      daemon.json              # daemon liveness record

Submission and claiming are both atomic renames: a submit stages the spec
in a temp file and renames it into ``queue/``; a claim renames the queue
file into the job directory.  ``os.rename`` succeeds for exactly one
claimant, so any number of daemons can share one state directory without
locks — the loser just moves on to the next queue entry.

Two job kinds execute through the existing measurement pipeline:

``run``
    The CLI's stage pipeline (``scenario``/``stage``/``scale``/``seed``/
    ``executor``/``faults``/``duration`` — the ``python -m repro run``
    knobs) on one catalog entry.  Engines inside the stages use the
    process-wide shared cache, which the daemon backs with the persistent
    store, so repeated stage runs share measurements across jobs *and*
    daemon restarts.
``eval``
    The evaluation harness (``group``/``scenario``/``seeds``/``executor``/
    ``determinism``) with the job's own run layout; its engines use a
    store-backed cache, so a repeated eval case is served from disk with
    ~zero recompute (the warm-restart contract of the service tests).

Per-job isolation: each job gets fresh environments (the stage/eval code
constructs them per run), its own tracer, log and ledger, and failures are
recorded in ``result.json`` without taking the daemon down.
"""

from __future__ import annotations

import json
import os
import time
import traceback
import uuid
from contextlib import redirect_stdout
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.service.costs import CostLedger
from repro.service.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.store import ResultStore

__all__ = [
    "JOB_KINDS",
    "JOB_RESULT_SCHEMA",
    "JOB_SCHEMA",
    "JobSpec",
    "ServicePaths",
    "claim_next_job",
    "execute_job",
    "job_record",
    "list_jobs",
    "submit_job",
]

#: Schema identifier of every job spec (``job.json`` / queue entries).
JOB_SCHEMA = "atlas-job/1"

#: Schema identifier of every ``result.json``.
JOB_RESULT_SCHEMA = "atlas-job-result/1"

#: The job kinds the daemon knows how to execute.
JOB_KINDS = ("run", "eval")


@dataclass(frozen=True)
class ServicePaths:
    """The directory layout of one service state tree."""

    root: Path

    @property
    def queue(self) -> Path:
        """Directory of submitted-but-unclaimed job specs."""
        return self.root / "queue"

    @property
    def jobs(self) -> Path:
        """Directory of claimed jobs (one subdirectory per job)."""
        return self.root / "jobs"

    @property
    def store_dir(self) -> Path:
        """Directory of the persistent result store."""
        return self.root / "store"

    @property
    def daemon_file(self) -> Path:
        """The daemon liveness record."""
        return self.root / "daemon.json"

    def job_dir(self, job_id: str) -> Path:
        """The directory of one claimed job."""
        return self.jobs / job_id

    def ensure(self) -> "ServicePaths":
        """Create the layout directories (idempotent)."""
        for path in (self.queue, self.jobs, self.store_dir):
            path.mkdir(parents=True, exist_ok=True)
        return self


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


@dataclass(frozen=True)
class JobSpec:
    """One submitted job: identity, kind and execution parameters."""

    id: str
    kind: str
    params: dict
    created: float

    def payload(self, status: str = "queued", **extra) -> dict:
        """The ``job.json`` payload at a given lifecycle status."""
        return {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "kind": self.kind,
            "params": dict(self.params),
            "created": self.created,
            "status": status,
            **extra,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Rebuild a spec from a ``job.json``/queue payload."""
        return cls(
            id=str(payload["id"]),
            kind=str(payload["kind"]),
            params=dict(payload.get("params", {})),
            created=float(payload.get("created", 0.0)),
        )


def new_job_id() -> str:
    """A fresh job id, time-prefixed so queue order approximates FIFO."""
    return f"{time.time_ns():020d}-{uuid.uuid4().hex[:8]}"


def submit_job(state_dir: str | Path, kind: str, params: dict) -> JobSpec:
    """Atomically enqueue a job and return its spec.

    Works without a running daemon: the queue entry waits until one claims
    it.  ``kind`` must be one of :data:`JOB_KINDS`.
    """
    if kind not in JOB_KINDS:
        raise ValueError(f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")
    paths = ServicePaths(Path(state_dir)).ensure()
    spec = JobSpec(id=new_job_id(), kind=kind, params=dict(params), created=time.time())
    _atomic_write_json(paths.queue / f"{spec.id}.json", spec.payload(status="queued"))
    return spec


def claim_next_job(paths: ServicePaths) -> JobSpec | None:
    """Claim the oldest queued job, or ``None`` when the queue is empty.

    The claim is one ``os.rename`` of the queue entry into the job
    directory — exactly one of any number of concurrent claimants wins;
    the rest see ``FileNotFoundError`` and try the next entry.
    """
    try:
        entries = sorted(paths.queue.glob("*.json"))
    except FileNotFoundError:
        return None
    for entry in entries:
        try:
            payload = json.loads(entry.read_text())
        except (OSError, ValueError):
            continue  # mid-write or torn submit: next sweep will see it
        try:
            spec = JobSpec.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            continue
        job_dir = paths.job_dir(spec.id)
        job_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(entry, job_dir / "job.json")
        except FileNotFoundError:
            continue  # lost the race to another claimant
        return spec
    return None


# ------------------------------------------------------------------ execution
def _execute_run(spec: JobSpec, store: "ResultStore | None", tracer: Tracer) -> tuple[dict, dict]:
    # Imported lazily: the CLI imports this module for its service commands.
    from repro import cli as _cli
    from repro.engine.cache import shared_cache
    from repro.engine.executors import EXECUTOR_ENV_VAR
    from repro.experiments.scale import get_scale
    from repro.scenarios import get_scenario

    params = spec.params
    scenario_spec = get_scenario(str(params["scenario"]))
    scale = get_scale(params.get("scale"))
    stage = str(params.get("stage", "all"))
    stages = {"1", "2", "3"} if stage == "all" else {stage}
    seed = int(params.get("seed", 0))
    faults = str(params.get("faults", "off"))
    duration = params.get("duration")
    duration = float(duration) if duration is not None else scale.measurement_duration_s

    previous_executor = os.environ.get(EXECUTOR_ENV_VAR)
    if params.get("executor") is not None:
        os.environ[EXECUTOR_ENV_VAR] = str(params["executor"])
    ledger = CostLedger(cache=shared_cache(), store=store)
    try:
        slices = []
        for workload in scenario_spec.slices:
            with tracer.span(
                "job.slice", scenario=scenario_spec.name, slice=workload.name, stage=stage
            ):
                slices.append(
                    _cli._run_workload(
                        workload, scenario_spec, stages, scale, duration, seed, faults=faults
                    )
                )
    finally:
        if params.get("executor") is not None:
            if previous_executor is None:
                os.environ.pop(EXECUTOR_ENV_VAR, None)
            else:
                os.environ[EXECUTOR_ENV_VAR] = previous_executor
    summary = _cli._jsonable(
        {
            "scenario": scenario_spec.name,
            "stage": stage,
            "scale": scale.name,
            "seed": seed,
            "slices": slices,
        }
    )
    return summary, ledger.finish()


def _execute_eval(
    spec: JobSpec, job_dir: Path, store: "ResultStore | None", tracer: Tracer
) -> tuple[dict, dict]:
    from repro.evalharness import evaluate, write_report

    params = spec.params
    seeds = params.get("seeds")
    report, gate, _ = evaluate(
        group=params.get("group"),
        scenario=params.get("scenario"),
        seeds=[int(seed) for seed in seeds] if seeds is not None else None,
        executor=params.get("executor"),
        out_dir=job_dir / "eval",
        determinism=bool(params.get("determinism", False)),
        store=store,
        tracer=tracer,
    )
    write_report(report, job_dir / "eval" / "EVAL_report.json")
    summary = {
        "summary": report["summary"],
        "gate_passed": gate.passed,
        "report": str(Path("eval") / "EVAL_report.json"),
    }
    costs = report["provenance"].get("costs") or {}
    return summary, costs


def execute_job(
    spec: JobSpec, paths: ServicePaths, store: "ResultStore | None" = None
) -> dict:
    """Execute one claimed job; always returns its ``result.json`` payload.

    Failures are contained: the traceback lands in ``result.json`` (status
    ``failed``) and the job's trace records an error span, but nothing is
    raised — the daemon keeps serving the queue.
    """
    job_dir = paths.job_dir(spec.id)
    job_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()
    _atomic_write_json(job_dir / "job.json", spec.payload(status="running", started=started))
    status, summary, costs, error = "done", {}, {}, None
    with Tracer(job_dir / "trace.jsonl") as tracer:
        try:
            with tracer.span("job", job=spec.id, kind=spec.kind) as span_attrs:
                with open(job_dir / "log.txt", "w") as log, redirect_stdout(log):
                    if spec.kind == "run":
                        summary, costs = _execute_run(spec, store, tracer)
                    elif spec.kind == "eval":
                        summary, costs = _execute_eval(spec, job_dir, store, tracer)
                    else:
                        raise ValueError(f"unknown job kind {spec.kind!r}")
                span_attrs["engine_requests"] = costs.get("engine_requests")
        except Exception as err:
            status = "failed"
            error = f"{type(err).__name__}: {err}"
            (job_dir / "traceback.txt").write_text(traceback.format_exc())
            tracer.event("job.failed", job=spec.id, error=error)
    finished = time.time()
    result = {
        "schema": JOB_RESULT_SCHEMA,
        "job": spec.id,
        "kind": spec.kind,
        "status": status,
        "error": error,
        "started": started,
        "finished": finished,
        "wall_time_s": round(finished - started, 6),
        "summary": summary,
        "costs": costs,
    }
    _atomic_write_json(job_dir / "result.json", result)
    if costs:
        _atomic_write_json(job_dir / "costs.json", costs)
    _atomic_write_json(
        job_dir / "job.json",
        spec.payload(status=status, started=started, finished=finished),
    )
    return result


# -------------------------------------------------------------------- status
def job_record(state_dir: str | Path, job_id: str) -> dict:
    """The merged status record of one job (spec + result when finished)."""
    paths = ServicePaths(Path(state_dir))
    queued = paths.queue / f"{job_id}.json"
    if queued.exists():
        return json.loads(queued.read_text())
    job_file = paths.job_dir(job_id) / "job.json"
    if not job_file.exists():
        raise FileNotFoundError(f"no job {job_id!r} under {paths.root}")
    record = json.loads(job_file.read_text())
    result_file = paths.job_dir(job_id) / "result.json"
    if result_file.exists():
        record["result"] = json.loads(result_file.read_text())
    return record


def list_jobs(state_dir: str | Path) -> list[dict]:
    """Every known job's status record, oldest first."""
    paths = ServicePaths(Path(state_dir))
    records: list[dict] = []
    if paths.queue.exists():
        for entry in paths.queue.glob("*.json"):
            try:
                records.append(json.loads(entry.read_text()))
            except (OSError, ValueError):
                continue
    if paths.jobs.exists():
        for job_dir in paths.jobs.iterdir():
            job_file = job_dir / "job.json"
            try:
                record = json.loads(job_file.read_text())
            except (OSError, ValueError):
                continue
            result_file = job_dir / "result.json"
            if result_file.exists():
                try:
                    record["result"] = json.loads(result_file.read_text())
                except (OSError, ValueError):
                    pass
            records.append(record)
    records.sort(key=lambda record: str(record.get("id", "")))
    return records
