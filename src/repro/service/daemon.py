"""The asyncio service daemon: claim queued jobs, execute, shut down cleanly.

``python -m repro serve --state <dir>`` runs one :class:`ServiceDaemon`
against a service state tree (see :mod:`repro.service.jobs` for the
layout).  The daemon:

* opens the tree's persistent :class:`~repro.service.store.ResultStore`
  (reaping temp files torn by crashed writers) and attaches it to the
  process-wide measurement cache, so every engine inside every job reads
  and writes the store — the mechanism behind warm restarts: a second
  daemon process serving the same submission recomputes ~nothing;
* runs ``workers`` asyncio workers, each claiming the oldest queued job
  (atomic rename — multiple daemons can share one tree) and executing it
  in a thread via :func:`~repro.service.jobs.execute_job`, so the event
  loop stays responsive for signals while the measurement pipeline runs;
* shuts down gracefully on SIGTERM/SIGINT: stops claiming, drains the
  running jobs, records final store statistics in ``daemon.json`` and
  exits 0.  ``--max-jobs`` and ``--idle-exit`` bound the run for CI and
  tests — the service smoke job uses both to get a deterministic lifetime
  without signal choreography.

Per-job isolation is inherited from :func:`execute_job`: a job failure is
recorded in its ``result.json`` and never takes the daemon down.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from pathlib import Path

from repro.service.jobs import JobSpec, ServicePaths, claim_next_job, execute_job
from repro.service.store import DEFAULT_MAX_BYTES, ResultStore

__all__ = ["DAEMON_SCHEMA", "ServiceDaemon", "serve"]

#: Schema identifier of the ``daemon.json`` liveness record.
DAEMON_SCHEMA = "atlas-daemon/1"


class ServiceDaemon:
    """One service daemon bound to a state directory.

    Parameters
    ----------
    state_dir:
        Root of the service state tree (created if missing).
    workers:
        Concurrent job executors.  Jobs parallelise internally through the
        engine executors, so the default of 1 already saturates the
        machine; raise it when jobs are queue-bound rather than CPU-bound.
    max_jobs:
        Stop after executing this many jobs (``None``: run until signalled).
    idle_exit_s:
        Stop after the queue has been empty, with no job running, for this
        long (``None``: wait for work indefinitely).
    store_max_bytes:
        Size bound of the persistent store's LRU eviction.
    poll_interval_s:
        Queue polling cadence of idle workers.
    """

    def __init__(
        self,
        state_dir: str | Path,
        workers: int = 1,
        max_jobs: int | None = None,
        idle_exit_s: float | None = None,
        store_max_bytes: int = DEFAULT_MAX_BYTES,
        poll_interval_s: float = 0.2,
    ) -> None:
        self.paths = ServicePaths(Path(state_dir)).ensure()
        self.workers = max(1, int(workers))
        self.max_jobs = max_jobs
        self.idle_exit_s = idle_exit_s
        self.poll_interval_s = poll_interval_s
        self.store = ResultStore(self.paths.store_dir, max_bytes=store_max_bytes, reap=True)
        self.jobs_done = 0
        self._running_jobs = 0
        self._stop = asyncio.Event()
        self._claim_lock = asyncio.Lock()
        self._last_active = time.monotonic()

    # ---------------------------------------------------------------- liveness
    def _write_daemon_record(self, status: str) -> None:
        payload = {
            "schema": DAEMON_SCHEMA,
            "pid": os.getpid(),
            "status": status,
            "workers": self.workers,
            "jobs_done": self.jobs_done,
            "store": self.store.stats.as_dict(),
            "store_entries": self.store.entry_count(),
            "store_bytes": self.store.total_bytes(),
        }
        tmp = self.paths.daemon_file.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.paths.daemon_file)

    def stop(self) -> None:
        """Request shutdown: workers stop claiming and drain their jobs."""
        self._stop.set()

    # ----------------------------------------------------------------- workers
    def _budget_exhausted(self) -> bool:
        return self.max_jobs is not None and self.jobs_done + self._running_jobs >= self.max_jobs

    async def _claim(self) -> "JobSpec | None":
        # One claimant at a time within this process; across processes the
        # queue-file rename in claim_next_job is the arbiter.
        async with self._claim_lock:
            if self._stop.is_set() or self._budget_exhausted():
                return None
            spec = claim_next_job(self.paths)
            if spec is not None:
                self._running_jobs += 1
                self._last_active = time.monotonic()
            return spec

    async def _worker(self, index: int) -> None:
        while not self._stop.is_set():
            spec = await self._claim()
            if spec is None:
                if self._budget_exhausted() and self._running_jobs == 0:
                    self.stop()
                    return
                if (
                    self.idle_exit_s is not None
                    and self._running_jobs == 0
                    and time.monotonic() - self._last_active >= self.idle_exit_s
                ):
                    self.stop()
                    return
                await asyncio.sleep(self.poll_interval_s)
                continue
            try:
                await asyncio.to_thread(execute_job, spec, self.paths, self.store)
            finally:
                self._running_jobs -= 1
                self.jobs_done += 1
                self._last_active = time.monotonic()

    # --------------------------------------------------------------------- run
    async def run(self) -> int:
        """Serve the queue until signalled or bounded out; returns 0."""
        from repro.engine.cache import attach_shared_store

        attach_shared_store(self.store)
        self._write_daemon_record("running")
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without signal support
        try:
            workers = [
                asyncio.create_task(self._worker(index)) for index in range(self.workers)
            ]
            await self._stop.wait()
            # Workers observe the stop event after their current job; drain.
            await asyncio.gather(*workers, return_exceptions=True)
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            attach_shared_store(None)
            self._write_daemon_record("stopped")
        return 0


def serve(
    state_dir: str | Path,
    workers: int = 1,
    max_jobs: int | None = None,
    idle_exit_s: float | None = None,
    store_max_bytes: int = DEFAULT_MAX_BYTES,
) -> int:
    """Run a daemon to completion (the ``python -m repro serve`` backend)."""
    daemon = ServiceDaemon(
        state_dir,
        workers=workers,
        max_jobs=max_jobs,
        idle_exit_s=idle_exit_s,
        store_max_bytes=store_max_bytes,
    )
    return asyncio.run(daemon.run())
