"""Service mode end to end: queue, daemon, tracing, costs, warm restart.

The warm-restart test is the tentpole acceptance check: the same eval case
submitted to two *separate* daemon processes must be recomputed by the
first and served almost entirely from the persistent store by the second,
with the cost ledger, the store statistics and the result bytes all
agreeing.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service import (
    JobSpec,
    ServicePaths,
    Tracer,
    claim_next_job,
    execute_job,
    job_record,
    list_jobs,
    read_trace,
    submit_job,
)
from repro.service.daemon import serve
from repro.service.tracer import NullTracer

_REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------- queue/claim
def test_submit_then_claim_is_fifo_and_exclusive(tmp_path):
    first = submit_job(tmp_path, "run", {"scenario": "frame-offloading"})
    second = submit_job(tmp_path, "run", {"scenario": "embb-video"})
    paths = ServicePaths(tmp_path)
    claimed = claim_next_job(paths)
    assert claimed is not None and claimed.id == first.id
    assert claim_next_job(paths).id == second.id
    assert claim_next_job(paths) is None
    # A claimed job's spec moved from queue/ into its job directory.
    assert not list(paths.queue.glob("*.json"))
    assert (paths.job_dir(first.id) / "job.json").exists()


def test_submit_rejects_unknown_kind(tmp_path):
    with pytest.raises(ValueError):
        submit_job(tmp_path, "bogus", {})


def test_job_failure_is_contained_and_recorded(tmp_path):
    spec = submit_job(tmp_path, "run", {"scenario": "no-such-scenario"})
    paths = ServicePaths(tmp_path)
    claimed = claim_next_job(paths)
    result = execute_job(claimed, paths, store=None)  # must not raise
    assert result["status"] == "failed"
    assert "no-such-scenario" in result["error"]
    record = job_record(tmp_path, spec.id)
    assert record["status"] == "failed"
    assert (paths.job_dir(spec.id) / "traceback.txt").exists()


# -------------------------------------------------------------------- tracer
def test_tracer_span_event_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tracer:
        tracer.event("boot", version=1)
        with tracer.span("work", case="x") as attrs:
            attrs["extra"] = 7
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
    records = read_trace(path)
    assert [record["name"] for record in records] == ["boot", "work", "doomed"]
    assert records[0]["kind"] == "event"
    work = records[1]
    assert work["kind"] == "span" and work["status"] == "ok"
    assert work["attrs"] == {"case": "x", "extra": 7}
    assert work["duration_s"] >= 0.0
    doomed = records[2]
    assert doomed["status"] == "error" and doomed["attrs"]["error"] == "RuntimeError"


def test_read_trace_tolerates_torn_trailing_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tracer:
        tracer.event("kept")
    with open(path, "a") as handle:
        handle.write('{"kind": "event", "name": "torn"')  # no newline, no close
    records = read_trace(path)
    assert [record["name"] for record in records] == ["kept"]


def test_null_tracer_is_inert(tmp_path):
    tracer = NullTracer()
    tracer.event("ignored")
    with tracer.span("ignored") as attrs:
        attrs["x"] = 1


# ------------------------------------------------------------------- daemon
def test_daemon_executes_run_job_with_costs_and_trace(tmp_path):
    from repro.engine.cache import shared_cache

    shared_cache().clear()  # other in-process tests may have warmed it
    spec = submit_job(
        tmp_path, "run", {"scenario": "frame-offloading", "stage": "1", "scale": "smoke"}
    )
    assert serve(tmp_path, workers=1, max_jobs=1, idle_exit_s=1.0) == 0
    record = job_record(tmp_path, spec.id)
    assert record["status"] == "done"
    costs = record["result"]["costs"]
    assert costs["schema"] == "atlas-costs/1"
    assert costs["engine_requests"] > 0
    assert costs["engine_requests"] == costs["cache"]["misses"]  # cold store
    assert costs["sim_seconds"] > 0.0
    job_dir = ServicePaths(tmp_path).job_dir(spec.id)
    spans = read_trace(job_dir / "trace.jsonl")
    assert any(span["name"] == "job" and span["status"] == "ok" for span in spans)
    assert any(span["name"] == "job.slice" for span in spans)
    assert "stage 1" in (job_dir / "log.txt").read_text()
    daemon = json.loads((tmp_path / "daemon.json").read_text())
    assert daemon["status"] == "stopped" and daemon["jobs_done"] == 1
    assert daemon["store_entries"] > 0


def test_daemon_idle_exit_without_jobs(tmp_path):
    assert serve(tmp_path, workers=2, idle_exit_s=0.3) == 0
    assert json.loads((tmp_path / "daemon.json").read_text())["jobs_done"] == 0


def test_list_jobs_merges_queue_and_executed(tmp_path):
    done = submit_job(tmp_path, "run", {"scenario": "frame-offloading", "stage": "1", "scale": "smoke"})
    serve(tmp_path, workers=1, max_jobs=1, idle_exit_s=1.0)
    waiting = submit_job(tmp_path, "run", {"scenario": "embb-video"})
    records = {record["id"]: record for record in list_jobs(tmp_path)}
    assert records[done.id]["status"] == "done"
    assert records[waiting.id]["status"] == "queued"


_DAEMON_ROUND = """
import json, sys
from pathlib import Path
from repro.service import submit_job, job_record
from repro.service.daemon import serve
state = Path(sys.argv[1])
job = submit_job(state, "eval", {"scenario": "frame-offloading", "seeds": [0]})
serve(state, workers=1, max_jobs=1, idle_exit_s=1.0)
record = job_record(state, job.id)
print(json.dumps({"id": job.id, "status": record["status"],
                  "costs": record["result"]["costs"]}))
"""


def test_warm_restart_serves_second_daemon_from_store(tmp_path):
    """Same eval case, two daemon processes: second recomputes ~nothing."""
    state = tmp_path / "state"
    rounds = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _DAEMON_ROUND, str(state)],
            capture_output=True,
            text=True,
            timeout=240,
            cwd=_REPO_ROOT,
            env={"PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        rounds.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    cold, warm = rounds
    assert cold["status"] == warm["status"] == "done"
    assert cold["costs"]["engine_requests"] > 0

    # Engine-level recompute count of the warm run is zero...
    assert warm["costs"]["engine_requests"] == 0
    cache = warm["costs"]["cache"]
    total = cache["memory_hits"] + cache["store_hits"] + cache["misses"]
    # ...>=90% of lookups served persistently (here: all of them)...
    assert cache["store_hits"] / total >= 0.9
    # ...and the ledger agrees with the store's own counters.
    assert warm["costs"]["store"]["hits"] == cache["store_hits"]
    assert warm["costs"]["store"]["puts"] == cache["misses"] == 0

    # Byte-identical results across the two daemon processes.
    reports = sorted(state.glob("jobs/*/eval/EVAL_report.json"))
    assert len(reports) == 2
    canonical = [
        json.dumps(json.loads(path.read_text())["results"], sort_keys=True)
        for path in reports
    ]
    assert canonical[0] == canonical[1]


def test_job_record_raises_for_unknown_job(tmp_path):
    ServicePaths(tmp_path).ensure()
    with pytest.raises(FileNotFoundError):
        job_record(tmp_path, "no-such-job")


def test_jobspec_payload_round_trip():
    spec = JobSpec(id="j1", kind="eval", params={"scenario": "x"}, created=12.5)
    assert JobSpec.from_payload(spec.payload()) == spec
