"""Tests for the discrete-event engine and the FIFO server."""

import pytest

from repro.sim.events import EventScheduler, FifoServer


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.run()
        assert order == ["early", "late"]

    def test_simultaneous_events_fire_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append("first"))
        scheduler.schedule(1.0, lambda: order.append("second"))
        scheduler.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_times(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(0.5, lambda: seen.append(scheduler.now))
        scheduler.schedule(1.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [0.5, 1.5]

    def test_run_until_stops_before_later_events(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        scheduler.run(until=2.0)
        assert fired == [1]
        assert scheduler.now == 2.0
        assert scheduler.pending == 1

    def test_events_can_schedule_more_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.now)
            if len(fired) < 3:
                scheduler.schedule(1.0, chain)

        scheduler.schedule(1.0, chain)
        scheduler.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(1.0, lambda: fired.append("cancelled"))
        scheduler.schedule(2.0, lambda: fired.append("kept"))
        scheduler.cancel(event)
        scheduler.run()
        assert fired == ["kept"]

    def test_scheduling_in_the_past_raises(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(-1.0, lambda: None)
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_processed_counter(self):
        scheduler = EventScheduler()
        for delay in (1.0, 2.0, 3.0):
            scheduler.schedule(delay, lambda: None)
        scheduler.run()
        assert scheduler.processed == 3


class TestFifoServer:
    def test_jobs_are_served_sequentially(self):
        scheduler = EventScheduler()
        server = FifoServer(scheduler, service_time_fn=lambda job: 1.0)
        completions = []
        for name in ("a", "b", "c"):
            server.submit(name, lambda job: completions.append((job, scheduler.now)))
        scheduler.run()
        assert completions == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_post_delay_does_not_block_next_job(self):
        scheduler = EventScheduler()
        server = FifoServer(
            scheduler, service_time_fn=lambda job: 1.0, post_delay_fn=lambda job: 5.0
        )
        completions = []
        server.submit("a", lambda job: completions.append((job, scheduler.now)))
        server.submit("b", lambda job: completions.append((job, scheduler.now)))
        scheduler.run()
        # Both serialisations finish at t=1 and t=2; deliveries at t=6 and t=7.
        assert completions == [("a", 6.0), ("b", 7.0)]

    def test_queue_length_and_busy_flag(self):
        scheduler = EventScheduler()
        server = FifoServer(scheduler, service_time_fn=lambda job: 1.0)
        server.submit("a", lambda job: None)
        server.submit("b", lambda job: None)
        assert server.is_busy
        assert server.queue_length == 1
        scheduler.run()
        assert not server.is_busy
        assert server.queue_length == 0

    def test_jobs_served_and_busy_time_accounting(self):
        scheduler = EventScheduler()
        server = FifoServer(scheduler, service_time_fn=lambda job: 2.0)
        for _ in range(3):
            server.submit(object(), lambda job: None)
        scheduler.run()
        assert server.jobs_served == 3
        assert server.busy_time == pytest.approx(6.0)
        assert server.utilization(12.0) == pytest.approx(0.5)

    def test_negative_service_time_is_clamped(self):
        scheduler = EventScheduler()
        server = FifoServer(scheduler, service_time_fn=lambda job: -1.0)
        done = []
        server.submit("x", lambda job: done.append(scheduler.now))
        scheduler.run()
        assert done == [0.0]

    def test_utilization_with_zero_elapsed(self):
        scheduler = EventScheduler()
        server = FifoServer(scheduler, service_time_fn=lambda job: 1.0)
        assert server.utilization(0.0) == 0.0
