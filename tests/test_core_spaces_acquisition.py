"""Tests for the search spaces, acquisition functions and adaptive penalisation."""

import numpy as np
import pytest

from repro.core.acquisition import (
    crgp_ucb_beta,
    crgp_ucb_kappa,
    expected_improvement,
    gp_ucb_beta,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.penalty import AdaptiveMultiplier
from repro.core.spaces import BoxSpace, ConfigurationSpace, SimulationParameterSpace
from repro.sim.config import SliceConfig
from repro.sim.parameters import SimulationParameters


class TestBoxSpace:
    def test_sampling_stays_inside_bounds(self):
        space = BoxSpace([0.0, -1.0], [2.0, 1.0])
        samples = space.sample(200, np.random.default_rng(0))
        assert samples.shape == (200, 2)
        assert np.all(samples >= space.lows) and np.all(samples <= space.highs)

    def test_normalize_denormalize_round_trip(self):
        space = BoxSpace([10.0, 0.0], [20.0, 5.0])
        points = np.array([[12.0, 1.0], [20.0, 0.0]])
        assert np.allclose(space.denormalize(space.normalize(points)), points)

    def test_clip_and_contains(self):
        space = BoxSpace([0.0], [1.0])
        assert space.clip([[2.0]])[0, 0] == 1.0
        assert space.contains([0.5])
        assert not space.contains([1.5])

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            BoxSpace([0.0], [0.0])
        with pytest.raises(ValueError):
            BoxSpace([0.0, 1.0], [1.0])

    def test_invalid_sample_count_raises(self):
        with pytest.raises(ValueError):
            BoxSpace([0.0], [1.0]).sample(0, np.random.default_rng(0))


class TestConfigurationSpace:
    def test_dimension_and_names_match_table2(self):
        space = ConfigurationSpace()
        assert space.dim == 6
        assert space.names[0] == "bandwidth_ul"

    def test_sample_configs_are_valid(self):
        space = ConfigurationSpace()
        configs = space.sample_configs(20, np.random.default_rng(1))
        assert len(configs) == 20
        assert all(isinstance(c, SliceConfig) for c in configs)

    def test_resource_usage_matches_slice_config(self):
        space = ConfigurationSpace()
        config = SliceConfig(bandwidth_ul=9, bandwidth_dl=3, backhaul_bw=6.2, cpu_ratio=0.8)
        vectorised = space.resource_usage(config.to_array())[0]
        assert vectorised == pytest.approx(config.resource_usage())

    def test_grid_has_expected_size(self):
        space = ConfigurationSpace()
        grid = space.grid(2)
        assert grid.shape == (2**6, 6)
        with pytest.raises(ValueError):
            space.grid(1)

    def test_to_configs_batch(self):
        space = ConfigurationSpace()
        points = space.sample(5, np.random.default_rng(2))
        configs = space.to_configs(points)
        assert len(configs) == 5


class TestSimulationParameterSpace:
    def test_original_has_zero_distance(self):
        space = SimulationParameterSpace()
        assert space.parameter_distance(space.original.to_array())[0] == pytest.approx(0.0)

    def test_distance_grows_with_deviation(self):
        space = SimulationParameterSpace()
        near = space.original.replace(compute_time=5.0)
        far = space.original.replace(compute_time=30.0, loading_time=30.0, backhaul_delay=20.0)
        assert space.parameter_distance(far.to_array())[0] > space.parameter_distance(near.to_array())[0]

    def test_ground_truth_like_shift_has_explainable_distance(self):
        """Adjustments of the Table 4 magnitude should measure ~0.1."""
        space = SimulationParameterSpace()
        shifted = SimulationParameters(38.9, 2.0, 9.2, 4.0, 8.0, 10.0, 14.0)
        distance = space.parameter_distance(shifted.to_array())[0]
        assert 0.03 < distance < 0.2

    def test_feasible_samples_respect_distance_threshold(self):
        space = SimulationParameterSpace(distance_threshold=0.05)
        samples = space.sample_feasible(50, np.random.default_rng(3))
        distances = space.parameter_distance(samples)
        assert np.all(distances <= 0.05 + 1e-9)

    def test_is_feasible(self):
        space = SimulationParameterSpace(distance_threshold=0.05)
        assert space.is_feasible(space.original.to_array())
        far = space.original.replace(compute_time=30.0, loading_time=30.0, backhaul_delay=20.0)
        assert not space.is_feasible(far.to_array())

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            SimulationParameterSpace(distance_threshold=0.0)

    def test_to_parameters_clips(self):
        space = SimulationParameterSpace()
        params = space.to_parameters([100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0])
        assert isinstance(params, SimulationParameters)


class TestAcquisitionFunctions:
    def test_expected_improvement_prefers_better_mean(self):
        scores = expected_improvement([0.5, 1.5], [0.1, 0.1], best=1.0)
        assert scores[1] > scores[0]

    def test_expected_improvement_values_uncertainty(self):
        scores = expected_improvement([1.0, 1.0], [0.01, 0.5], best=1.0)
        assert scores[1] > scores[0]

    def test_probability_of_improvement_is_a_probability(self):
        scores = probability_of_improvement([0.0, 2.0], [1.0, 1.0], best=1.0)
        assert np.all((scores >= 0) & (scores <= 1))
        assert scores[1] > scores[0]

    def test_ucb_adds_scaled_uncertainty(self):
        scores = upper_confidence_bound([1.0], [0.5], beta=4.0)
        assert scores[0] == pytest.approx(2.0)
        with pytest.raises(ValueError):
            upper_confidence_bound([1.0], [0.5], beta=-1.0)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            expected_improvement([1.0, 2.0], [0.1], best=0.0)
        with pytest.raises(ValueError):
            upper_confidence_bound([1.0], [-0.1], beta=1.0)

    def test_gp_ucb_beta_grows_with_iterations(self):
        assert gp_ucb_beta(100, 6) > gp_ucb_beta(2, 6) > 0
        with pytest.raises(ValueError):
            gp_ucb_beta(0, 6)
        with pytest.raises(ValueError):
            gp_ucb_beta(1, 6, delta=1.5)

    def test_crgp_ucb_kappa_grows_with_iterations(self):
        assert crgp_ucb_kappa(50, 0.1) > crgp_ucb_kappa(2, 0.1) > 0
        with pytest.raises(ValueError):
            crgp_ucb_kappa(1, 0.0)

    def test_crgp_ucb_beta_is_clipped_and_conservative(self):
        rng = np.random.default_rng(0)
        betas = [crgp_ucb_beta(50, rho=0.1, clip_upper=10.0, rng=rng) for _ in range(200)]
        assert max(betas) <= 10.0
        assert min(betas) >= 0.0
        # cRGP-UCB should be (much) smaller than the GP-UCB coefficient.
        assert np.mean(betas) < gp_ucb_beta(50, 6)

    def test_crgp_ucb_beta_invalid_clip_raises(self):
        with pytest.raises(ValueError):
            crgp_ucb_beta(5, clip_upper=0.0)


class TestAdaptiveMultiplier:
    def test_multiplier_increases_on_violation(self):
        multiplier = AdaptiveMultiplier(step_size=0.1, initial=0.5)
        multiplier.update(qoe_estimate=0.7, requirement=0.9)
        assert multiplier.value == pytest.approx(0.52)

    def test_multiplier_decreases_when_requirement_met(self):
        multiplier = AdaptiveMultiplier(step_size=0.1, initial=0.5)
        multiplier.update(qoe_estimate=1.0, requirement=0.9)
        assert multiplier.value == pytest.approx(0.49)

    def test_multiplier_never_goes_negative(self):
        multiplier = AdaptiveMultiplier(step_size=1.0, initial=0.0)
        multiplier.update(qoe_estimate=1.0, requirement=0.5)
        assert multiplier.value == 0.0

    def test_lagrangian_matches_equation8(self):
        multiplier = AdaptiveMultiplier(initial=2.0)
        value = multiplier.lagrangian(usage=0.3, qoe=0.8, requirement=0.9)
        assert value == pytest.approx(0.3 - 2.0 * (0.8 - 0.9))

    def test_lagrangian_is_vectorised(self):
        multiplier = AdaptiveMultiplier(initial=1.0)
        values = multiplier.lagrangian([0.1, 0.2], [0.95, 0.5], 0.9)
        assert values.shape == (2,)
        assert values[1] > values[0]

    def test_history_and_reset(self):
        multiplier = AdaptiveMultiplier(initial=0.3)
        multiplier.update(0.5, 0.9)
        assert len(multiplier.history) == 2
        multiplier.reset(0.0)
        assert multiplier.value == 0.0
        assert multiplier.history == [0.0]

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            AdaptiveMultiplier(step_size=0.0)
        with pytest.raises(ValueError):
            AdaptiveMultiplier(initial=-1.0)
        with pytest.raises(ValueError):
            AdaptiveMultiplier().update(0.5, 1.5)
        with pytest.raises(ValueError):
            AdaptiveMultiplier().reset(-1.0)

    def test_repeated_violations_drive_multiplier_up(self):
        multiplier = AdaptiveMultiplier(step_size=0.1)
        for _ in range(50):
            multiplier.update(0.5, 0.9)
        assert multiplier.value == pytest.approx(50 * 0.1 * 0.4)
