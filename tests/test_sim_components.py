"""Tests for the individual network-path components: RAN, backhaul, core, edge, traffic."""

import numpy as np
import pytest

from repro.sim.config import SliceConfig
from repro.sim.core_network import CoreNetwork
from repro.sim.edge import MINIMUM_CPU_RATIO, EdgeServer
from repro.sim.events import EventScheduler
from repro.sim.imperfections import Imperfections
from repro.sim.parameters import SimulationParameters
from repro.sim.ran import RadioAccessNetwork
from repro.sim.scenario import Scenario
from repro.sim.traffic import BackgroundTrafficModel, FrameSizeModel
from repro.sim.transport import MINIMUM_BACKHAUL_MBPS, BackhaulLink


def _make_ran(config=None, scenario=None, params=None, imperfections=None, isolation=True, seed=0):
    return RadioAccessNetwork(
        EventScheduler(),
        scenario if scenario is not None else Scenario(),
        params if params is not None else SimulationParameters.defaults(),
        config if config is not None else SliceConfig(),
        imperfections,
        np.random.default_rng(seed),
        isolation,
    )


class TestRadioAccessNetwork:
    def test_uplink_rate_grows_with_prbs(self):
        lean = _make_ran(SliceConfig(bandwidth_ul=6))
        rich = _make_ran(SliceConfig(bandwidth_ul=50))
        assert rich.uplink_adaptation().rate_bps > lean.uplink_adaptation().rate_bps

    def test_mcs_offset_reduces_rate(self):
        base = _make_ran(SliceConfig(mcs_offset_ul=0))
        offset = _make_ran(SliceConfig(mcs_offset_ul=10))
        assert offset.uplink_adaptation().rate_bps < base.uplink_adaptation().rate_bps

    def test_larger_distance_lowers_sinr(self):
        near = _make_ran(scenario=Scenario(distance_m=1.0))
        far = _make_ran(scenario=Scenario(distance_m=50.0))
        assert far.uplink_adaptation().sinr_db < near.uplink_adaptation().sinr_db

    def test_higher_baseline_loss_lowers_sinr(self):
        default = _make_ran()
        lossy = _make_ran(params=SimulationParameters(baseline_loss=49.0))
        assert lossy.uplink_adaptation().sinr_db < default.uplink_adaptation().sinr_db

    def test_rate_derate_imperfection_reduces_rate(self):
        ideal = _make_ran()
        derated = _make_ran(imperfections=Imperfections(ul_rate_derate=0.8))
        assert derated.uplink_adaptation().rate_bps == pytest.approx(
            0.8 * ideal.uplink_adaptation().rate_bps, rel=1e-6
        )

    def test_isolation_protects_slice_prbs(self):
        scenario = Scenario(extra_users=3)
        isolated = _make_ran(scenario=scenario, isolation=True)
        shared = _make_ran(scenario=scenario, isolation=False)
        assert isolated.uplink_adaptation().n_prbs > shared.uplink_adaptation().n_prbs

    def test_saturation_throughput_close_to_table1(self):
        ran = _make_ran()
        assert 18.0 < ran.saturation_throughput_mbps(uplink=True) < 22.0
        assert 29.0 < ran.saturation_throughput_mbps(uplink=False) < 35.0

    def test_packet_error_counters_start_at_zero(self):
        ran = _make_ran()
        assert ran.uplink_packet_error_rate() == 0.0
        assert ran.downlink_packet_error_rate() == 0.0

    def test_connectivity_minimum_is_enforced(self):
        ran = _make_ran(SliceConfig(bandwidth_ul=0, bandwidth_dl=0))
        assert ran.uplink_adaptation().n_prbs >= 6
        assert ran.downlink_adaptation().n_prbs >= 3


class TestBackhaulLink:
    def test_capacity_is_config_plus_parameter(self):
        link = BackhaulLink(
            EventScheduler(),
            SimulationParameters(backhaul_bw=5.0),
            SliceConfig(backhaul_bw=10.0),
            np.random.default_rng(0),
        )
        assert link.capacity_mbps == pytest.approx(15.0)

    def test_capacity_has_floor(self):
        link = BackhaulLink(
            EventScheduler(),
            SimulationParameters(),
            SliceConfig(backhaul_bw=0.0),
            np.random.default_rng(0),
        )
        assert link.capacity_mbps == MINIMUM_BACKHAUL_MBPS

    def test_serialization_time_scales_with_size_and_rate(self):
        link = BackhaulLink(
            EventScheduler(), SimulationParameters(), SliceConfig(backhaul_bw=10.0),
            np.random.default_rng(0),
        )
        assert link._serialization_time_s(10_000) == pytest.approx(2 * link._serialization_time_s(5_000))

    def test_backhaul_delay_parameter_adds_propagation(self):
        fast = BackhaulLink(EventScheduler(), SimulationParameters(), SliceConfig(),
                            np.random.default_rng(0), jitter_ms=0.0)
        slow = BackhaulLink(EventScheduler(), SimulationParameters(backhaul_delay=15.0),
                            SliceConfig(), np.random.default_rng(0), jitter_ms=0.0)
        assert slow._propagation_delay_s() == pytest.approx(fast._propagation_delay_s() + 0.015)


class TestCoreNetwork:
    def test_forwarding_delay_is_positive_and_small(self):
        core = CoreNetwork(EventScheduler(), np.random.default_rng(0))
        delay = core._forwarding_delay_s()
        assert 0.0 < delay < 0.01

    def test_negative_delays_raise(self):
        with pytest.raises(ValueError):
            CoreNetwork(EventScheduler(), forwarding_delay_ms=-1.0)


class _FakeFrame:
    compute_time_ms = 0.0


class TestEdgeServer:
    def _make(self, cpu_ratio, params=None, imperfections=None, seed=0):
        return EdgeServer(
            EventScheduler(),
            Scenario(),
            params if params is not None else SimulationParameters.defaults(),
            SliceConfig(cpu_ratio=cpu_ratio),
            imperfections,
            np.random.default_rng(seed),
        )

    def test_lower_cpu_ratio_means_longer_compute(self):
        fast = self._make(1.0)
        slow = self._make(0.25)
        fast_times = [fast._compute_time_s(_FakeFrame()) for _ in range(200)]
        slow_times = [slow._compute_time_s(_FakeFrame()) for _ in range(200)]
        assert np.mean(slow_times) > 3.0 * np.mean(fast_times)

    def test_cpu_ratio_floor(self):
        server = self._make(0.0)
        assert server.effective_cpu_ratio == MINIMUM_CPU_RATIO

    def test_compute_time_parameter_adds_constant(self):
        base = self._make(1.0, seed=1)
        extra = self._make(1.0, params=SimulationParameters(compute_time=25.0), seed=1)
        base_mean = np.mean([base._compute_time_s(_FakeFrame()) for _ in range(300)])
        extra_mean = np.mean([extra._compute_time_s(_FakeFrame()) for _ in range(300)])
        assert extra_mean == pytest.approx(base_mean + 0.025, abs=0.01)

    def test_compute_slowdown_imperfection(self):
        base = self._make(1.0, seed=2)
        slowed = self._make(1.0, imperfections=Imperfections(compute_slowdown=1.5), seed=2)
        base_mean = np.mean([base._compute_time_s(_FakeFrame()) for _ in range(300)])
        slowed_mean = np.mean([slowed._compute_time_s(_FakeFrame()) for _ in range(300)])
        assert slowed_mean > 1.3 * base_mean

    def test_mean_compute_time_matches_measurement(self):
        server = self._make(1.0, seed=3)
        times_ms = [server._compute_time_s(_FakeFrame()) * 1e3 for _ in range(500)]
        assert 70.0 < np.mean(times_ms) < 95.0


class TestTrafficModels:
    def test_frame_sizes_match_paper_statistics(self):
        model = FrameSizeModel(Scenario(), np.random.default_rng(0))
        sizes = np.array([model.sample_frame_bytes() for _ in range(2000)])
        assert 26_000 < sizes.mean() < 31_000
        assert sizes.min() >= 0.2 * 28_800

    def test_result_sizes_are_positive_and_small(self):
        model = FrameSizeModel(Scenario(), np.random.default_rng(1))
        sizes = np.array([model.sample_result_bytes() for _ in range(500)])
        assert np.all(sizes > 0)
        assert sizes.mean() < 5_000

    def test_background_traffic_scales_with_users(self):
        none = BackgroundTrafficModel(0)
        few = BackgroundTrafficModel(2, rng=np.random.default_rng(2))
        many = BackgroundTrafficModel(8, rng=np.random.default_rng(2))
        assert none.offered_load_mbps() == 0.0
        assert many.offered_load_mbps() > few.offered_load_mbps()

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            BackgroundTrafficModel(-1)
        with pytest.raises(ValueError):
            BackgroundTrafficModel(1, per_user_rate_mbps=0.0)


class TestImperfections:
    def test_neutral_defaults(self):
        assert Imperfections.none() == Imperfections()

    def test_replace(self):
        imperfections = Imperfections().replace(spike_probability=0.5)
        assert imperfections.spike_probability == 0.5

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            Imperfections(fading_std_db=-1.0)
        with pytest.raises(ValueError):
            Imperfections(spike_probability=2.0)
        with pytest.raises(ValueError):
            Imperfections(ul_rate_derate=0.0)
        with pytest.raises(ValueError):
            Imperfections(compute_slowdown=0.0)
        with pytest.raises(ValueError):
            Imperfections(spike_ms_range=(50.0, 10.0))
