"""Tests for the unified measurement engine.

Covers the :class:`Environment` protocol conformance of both concrete
environments, determinism of the executor kinds (serial == thread == process
for identical seeds), cache hit/miss accounting, the engine's deterministic
auto-seeding, and the deterministic ``seed=None`` stream of the simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    Environment,
    MeasurementCache,
    MeasurementEngine,
    MeasurementRequest,
    make_executor,
    shared_cache,
)
from repro.prototype.testbed import RealNetwork
from repro.sim.network import NetworkSimulator
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

DURATION = 6.0


def _requests(config, n=4, duration=DURATION):
    return [
        MeasurementRequest(config=config, traffic=1, duration=duration, seed=seed)
        for seed in range(n)
    ]


def _results_equal(a, b) -> bool:
    return (
        np.array_equal(a.latencies_ms, b.latencies_ms)
        and a.frames_generated == b.frames_generated
        and a.frames_completed == b.frames_completed
        and a.ping_delay_ms == b.ping_delay_ms
        and a.ul_throughput_mbps == b.ul_throughput_mbps
        and a.stage_breakdown_ms == b.stage_breakdown_ms
    )


class TestEnvironmentProtocol:
    def test_network_simulator_conforms(self, simulator):
        assert isinstance(simulator, Environment)

    def test_real_network_conforms(self, real_network):
        assert isinstance(real_network, Environment)

    def test_non_environment_rejected(self):
        class NotAnEnvironment:
            pass

        assert not isinstance(NotAnEnvironment(), Environment)

    @pytest.mark.parametrize("factory", [NetworkSimulator, RealNetwork])
    def test_fingerprint_is_hashable_and_content_keyed(self, factory):
        scenario = Scenario(traffic=1, duration_s=10.0)
        first = factory(scenario=scenario, seed=3)
        second = factory(scenario=scenario, seed=3)
        different = factory(scenario=scenario, seed=4)
        assert hash(first.fingerprint()) == hash(second.fingerprint())
        assert first.fingerprint() == second.fingerprint()
        assert first.fingerprint() != different.fingerprint()


class TestExecutorDeterminism:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_executors_match_serial_byte_for_byte(self, simulator, default_config, kind):
        requests = _requests(default_config)
        serial = MeasurementEngine(simulator, executor="serial", cache=False)
        parallel = MeasurementEngine(simulator, executor=kind, max_workers=2, cache=False)
        try:
            serial_results = serial.run_batch(requests)
            parallel_results = parallel.run_batch(requests)
        finally:
            parallel.shutdown()
        for a, b in zip(serial_results, parallel_results):
            assert _results_equal(a, b)

    def test_params_override_matches_with_params(self, simulator, default_config):
        # Pinned to serial: the comparison target is a direct scalar run, and
        # only the scalar kinds are byte-identical with it (the vectorized
        # equivalence contract is tested in test_sim_batch.py).
        params = SimulationParameters(compute_time=15.0, backhaul_delay=5.0)
        engine = MeasurementEngine(simulator, executor="serial", cache=False)
        via_override = engine.run(default_config, traffic=1, duration=DURATION, seed=2, params=params)
        direct = simulator.with_params(params).run(
            default_config, traffic=1, duration=DURATION, seed=2
        )
        assert _results_equal(via_override, direct)

    def test_params_override_requires_with_params(self, default_config):
        class Minimal:
            scenario = Scenario()

            def run(self, config, traffic=None, duration=None, seed=None):
                raise AssertionError("should not be reached")

            def collect_latencies(self, config, traffic=None, duration=None, seed=None):
                return np.zeros(0)

            def fingerprint(self):
                return ("minimal",)

        engine = MeasurementEngine(Minimal(), cache=False)
        with pytest.raises(TypeError, match="with_params"):
            engine.run(default_config, seed=1, params=SimulationParameters())

    def test_unknown_executor_kind_raises(self, simulator):
        with pytest.raises(ValueError, match="unknown executor"):
            MeasurementEngine(simulator, executor="quantum")
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("quantum")

    def test_auto_seeds_are_deterministic_per_engine_seed(self, simulator, default_config):
        requests = [MeasurementRequest(config=default_config, traffic=1, duration=DURATION)] * 3
        first = MeasurementEngine(simulator, cache=False, seed=11).run_batch(requests)
        second = MeasurementEngine(simulator, cache=False, seed=11).run_batch(requests)
        other = MeasurementEngine(simulator, cache=False, seed=12).run_batch(requests)
        for a, b in zip(first, second):
            assert _results_equal(a, b)
        assert not all(_results_equal(a, c) for a, c in zip(first, other))
        # Identical unseeded requests in one batch get distinct seeds.
        assert not _results_equal(first[0], first[1])


class TestMeasurementCache:
    def test_hit_and_miss_accounting(self, simulator, default_config):
        cache = MeasurementCache()
        engine = MeasurementEngine(simulator, cache=cache)
        requests = _requests(default_config)
        fresh = engine.run_batch(requests)
        assert cache.stats.misses == len(requests)
        assert cache.stats.hits == 0
        cached = engine.run_batch(requests)
        assert cache.stats.hits == len(requests)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert engine.executed_requests == len(requests)
        for a, b in zip(fresh, cached):
            assert _results_equal(a, b)

    def test_cached_results_are_isolated_copies(self, simulator, default_config):
        engine = MeasurementEngine(simulator, cache=MeasurementCache())
        first = engine.run(default_config, traffic=1, duration=DURATION, seed=1)
        first.latencies_ms[:] = -1.0
        second = engine.run(default_config, traffic=1, duration=DURATION, seed=1)
        assert not np.array_equal(first.latencies_ms, second.latencies_ms)
        assert np.all(second.latencies_ms >= 0)

    def test_key_is_content_sensitive(self, simulator, default_config):
        cache = MeasurementCache()
        engine = MeasurementEngine(simulator, cache=cache)
        engine.run(default_config, traffic=1, duration=DURATION, seed=1)
        engine.run(default_config, traffic=1, duration=DURATION, seed=2)
        engine.run(default_config, traffic=2, duration=DURATION, seed=1)
        engine.run(
            default_config,
            traffic=1,
            duration=DURATION,
            seed=1,
            params=SimulationParameters(compute_time=3.0),
        )
        assert cache.stats.hits == 0
        assert cache.stats.misses == 4

    def test_disabled_cache_executes_every_request(self, simulator, default_config):
        engine = MeasurementEngine(simulator, cache=False)
        requests = _requests(default_config, n=2)
        engine.run_batch(requests)
        engine.run_batch(requests)
        assert engine.cache is None
        assert engine.executed_requests == 4
        assert engine.cache_stats.lookups == 0

    def test_lru_eviction_is_bounded(self, simulator, default_config):
        cache = MeasurementCache(max_entries=2)
        engine = MeasurementEngine(simulator, cache=cache)
        engine.run_batch(_requests(default_config, n=4))
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_shared_cache_is_process_wide_default(self, simulator):
        engine = MeasurementEngine(simulator)
        assert engine.cache is shared_cache()

    def test_invalid_max_entries_raises(self):
        with pytest.raises(ValueError):
            MeasurementCache(max_entries=0)


class TestRealNetworkThroughEngine:
    def test_matches_direct_measure(self, default_config):
        scenario = Scenario(traffic=1, duration_s=10.0)
        # Pinned to serial: direct measure() is the scalar path, and only the
        # scalar executor kinds are byte-identical with it.
        via_engine = MeasurementEngine(
            RealNetwork(scenario=scenario, seed=1), executor="serial", cache=False
        ).run(default_config, traffic=1, duration=DURATION, seed=5)
        direct = RealNetwork(scenario=scenario, seed=1).measure(
            default_config, traffic=1, duration=DURATION, seed=5
        )
        assert _results_equal(via_engine, direct)

    def test_applied_history_logged_even_on_cache_hits(self, real_network, default_config):
        engine = MeasurementEngine(real_network, cache=MeasurementCache())
        request = MeasurementRequest(config=default_config, traffic=1, duration=DURATION, seed=1)
        engine.run_batch([request])
        engine.run_batch([request])
        assert engine.cache_stats.hits == 1
        assert len(real_network.applied_history) == 2
        assert real_network.measurement_count == 2


class TestSimulatorSeedStream:
    def test_unseeded_runs_differ_but_replay_deterministically(self, default_config):
        scenario = Scenario(traffic=1, duration_s=10.0)
        first = NetworkSimulator(scenario=scenario, seed=0)
        second = NetworkSimulator(scenario=scenario, seed=0)
        a1 = first.collect_latencies(default_config, duration=DURATION)
        a2 = first.collect_latencies(default_config, duration=DURATION)
        b1 = second.collect_latencies(default_config, duration=DURATION)
        b2 = second.collect_latencies(default_config, duration=DURATION)
        assert not np.array_equal(a1, a2)
        assert np.array_equal(a1, b1)
        assert np.array_equal(a2, b2)

    def test_explicit_seed_unaffected_by_prior_unseeded_runs(self, default_config):
        scenario = Scenario(traffic=1, duration_s=10.0)
        clean = NetworkSimulator(scenario=scenario, seed=0)
        dirty = NetworkSimulator(scenario=scenario, seed=0)
        for _ in range(3):
            dirty.collect_latencies(default_config, duration=DURATION)
        assert np.array_equal(
            clean.collect_latencies(default_config, duration=DURATION, seed=9),
            dirty.collect_latencies(default_config, duration=DURATION, seed=9),
        )

    def test_unseeded_runs_do_not_collide_with_explicit_seeds(self, default_config):
        scenario = Scenario(traffic=1, duration_s=10.0)
        simulator = NetworkSimulator(scenario=scenario, seed=0)
        unseeded = simulator.collect_latencies(default_config, duration=DURATION)
        explicit = [
            NetworkSimulator(scenario=scenario, seed=0).collect_latencies(
                default_config, duration=DURATION, seed=s
            )
            for s in range(1, 4)
        ]
        assert not any(np.array_equal(unseeded, run) for run in explicit)


class TestStageDeterminismAcrossExecutors:
    def test_parameter_search_identical_under_thread_executor(self, default_config):
        from repro.core.simulator_learning import ParameterSearchConfig, SimulatorParameterSearch

        scenario = Scenario(traffic=1, duration_s=8.0)
        real = RealNetwork(scenario=scenario, seed=1)
        collection = real.collect_latencies(default_config, traffic=1, duration=8.0, seed=1)
        config = ParameterSearchConfig(
            iterations=2,
            initial_random=1,
            parallel_queries=2,
            candidate_pool=60,
            measurement_duration_s=6.0,
            surrogate_epochs=5,
            seed=0,
        )

        def run_search(executor: str):
            simulator = NetworkSimulator(scenario=scenario, seed=0)
            return SimulatorParameterSearch(
                simulator=simulator,
                real_collection=collection,
                deployed_config=default_config,
                config=config,
                engine=MeasurementEngine(
                    simulator, executor=executor, max_workers=2, cache=False
                ),
            ).run()

        serial_result = run_search("serial")
        thread_result = run_search("thread")
        assert serial_result.best_weighted_discrepancy == thread_result.best_weighted_discrepancy
        assert [r.parameters for r in serial_result.history] == [
            r.parameters for r in thread_result.history
        ]
