"""Tests for the vectorized batch simulation path.

Covers the scalar-vs-vectorized numerical-equivalence gate on every catalog
scenario (the two paths sample the same distributions but consume their
random streams in a different order, so agreement is statistical, within
tolerance — see :mod:`repro.sim.batch`), exact equivalence of the vectorized
LTE helpers against their scalar counterparts, per-request determinism under
arbitrary batch composition, the ``vectorized`` engine executor (partial
cache hits, per-request scenario/params overrides, scalar fallback for
environments without the batch hook, the real network's ``prepare_batch``
resolution), and the batched multi-slice round API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import MeasurementCache, MeasurementEngine, MeasurementRequest
from repro.prototype.testbed import RealNetwork
from repro.scenarios import list_scenarios
from repro.sim import lte
from repro.sim.config import SliceConfig
from repro.sim.multislice import ResourceBudget, SliceRun
from repro.sim.network import NetworkSimulator
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

#: Seeds pooled per workload by the equivalence gate.  More seeds tighten the
#: statistical comparison but grow the scalar (discrete-event) side's runtime.
EQUIVALENCE_SEEDS = tuple(range(6))
EQUIVALENCE_DURATION = 20.0

# Tolerances of the scalar-vs-vectorized gate, calibrated with margin over
# the observed deviations at the pooled sample size above (the worst catalog
# workload deviates ~3.5% in mean latency and ~0.025 in QoE).
MEAN_LATENCY_RTOL = 0.08
P95_LATENCY_RTOL = 0.15
QOE_ATOL = 0.08
PING_RTOL = 0.05
THROUGHPUT_RTOL = 0.10
ERROR_RATE_ATOL = 0.01
FRAMES_RTOL = 0.08


def _results_equal(a, b) -> bool:
    return (
        np.array_equal(a.latencies_ms, b.latencies_ms)
        and a.frames_generated == b.frames_generated
        and a.frames_completed == b.frames_completed
        and a.ping_delay_ms == b.ping_delay_ms
        and a.ul_throughput_mbps == b.ul_throughput_mbps
        and a.ul_packet_error_rate == b.ul_packet_error_rate
        and a.stage_breakdown_ms == b.stage_breakdown_ms
    )


# --------------------------------------------------------------------------
# Vectorized LTE helpers: exact equivalence with the scalar functions.
# --------------------------------------------------------------------------
class TestVectorizedLteHelpers:
    SINRS = np.linspace(-12.0, 40.0, 53)

    @pytest.mark.parametrize("offset", [0.0, -2.0, 3.5])
    def test_select_mcs_matches_scalar(self, offset):
        scalar = [lte.select_mcs(s, offset) for s in self.SINRS]
        batched = lte.select_mcs_array(self.SINRS, np.full_like(self.SINRS, offset))
        assert batched.tolist() == scalar

    def test_spectral_efficiency_matches_scalar(self):
        mcs = np.arange(0, lte.MAX_MCS + 1)
        scalar = [lte.spectral_efficiency(m) for m in mcs]
        assert np.allclose(lte.spectral_efficiency_array(mcs), scalar, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("floor", [2e-3, 4e-3])
    def test_block_error_rate_matches_scalar(self, floor):
        mcs = lte.select_mcs_array(self.SINRS, np.zeros_like(self.SINRS))
        scalar = [lte.block_error_rate(s, int(m), floor) for s, m in zip(self.SINRS, mcs)]
        batched = lte.block_error_rate_array(self.SINRS, mcs, np.full_like(self.SINRS, floor))
        assert np.allclose(batched, scalar, rtol=0, atol=1e-12)

    def test_expected_transmissions_matches_scalar(self):
        blers = np.linspace(0.0, 1.0, 21)
        scalar = [lte.expected_transmissions(b) for b in blers]
        assert np.allclose(lte.expected_transmissions_array(blers), scalar, rtol=0, atol=1e-12)


# --------------------------------------------------------------------------
# The equivalence gate: scalar vs vectorized on every catalog scenario.
# --------------------------------------------------------------------------
_workload_comparison_cache: dict[tuple, dict] = {}


def _compare_workload(workload):
    """Pooled scalar-vs-vectorized metrics of one slice workload (memoised).

    Several catalog entries share a workload (the dynamic and multi-slice
    entries reuse the base scenarios); the pooled runs are cached on the
    workload's content so the gate still covers every entry without
    re-simulating identical setups.
    """
    key = (workload.scenario, workload.sla, workload.deployed_config)
    if key in _workload_comparison_cache:
        return _workload_comparison_cache[key]
    simulator = NetworkSimulator(scenario=workload.scenario, seed=0)
    config = workload.deployed_config
    scalar = [
        simulator.run(config, duration=EQUIVALENCE_DURATION, seed=seed)
        for seed in EQUIVALENCE_SEEDS
    ]
    batched = simulator.run_batch(
        [config] * len(EQUIVALENCE_SEEDS),
        duration=EQUIVALENCE_DURATION,
        seeds=list(EQUIVALENCE_SEEDS),
    )
    threshold = workload.sla.latency_threshold_ms

    def pooled(results):
        latencies = np.concatenate([r.latencies_ms for r in results])
        return {
            "mean_latency": float(np.mean(latencies)),
            "p95_latency": float(np.percentile(latencies, 95)),
            "qoe": float(np.mean([r.qoe(threshold) for r in results])),
            "ping": float(np.mean([r.ping_delay_ms for r in results])),
            "ul_throughput": float(np.mean([r.ul_throughput_mbps for r in results])),
            "dl_throughput": float(np.mean([r.dl_throughput_mbps for r in results])),
            "ul_per": float(np.mean([r.ul_packet_error_rate for r in results])),
            "dl_per": float(np.mean([r.dl_packet_error_rate for r in results])),
            "frames": sum(r.frames_completed for r in results),
        }

    comparison = {"scalar": pooled(scalar), "vectorized": pooled(batched)}
    _workload_comparison_cache[key] = comparison
    return comparison


@pytest.mark.parametrize("spec", list_scenarios(), ids=lambda spec: spec.name)
class TestScalarVectorizedEquivalence:
    def test_catalog_scenario_agrees_within_tolerance(self, spec):
        for workload in spec.slices:
            comparison = _compare_workload(workload)
            scalar, batched = comparison["scalar"], comparison["vectorized"]
            label = f"{spec.name}/{workload.name}"
            assert batched["mean_latency"] == pytest.approx(
                scalar["mean_latency"], rel=MEAN_LATENCY_RTOL
            ), label
            assert batched["p95_latency"] == pytest.approx(
                scalar["p95_latency"], rel=P95_LATENCY_RTOL
            ), label
            assert batched["qoe"] == pytest.approx(scalar["qoe"], abs=QOE_ATOL), label
            assert batched["ping"] == pytest.approx(scalar["ping"], rel=PING_RTOL), label
            assert batched["ul_throughput"] == pytest.approx(
                scalar["ul_throughput"], rel=THROUGHPUT_RTOL
            ), label
            assert batched["dl_throughput"] == pytest.approx(
                scalar["dl_throughput"], rel=THROUGHPUT_RTOL
            ), label
            assert batched["ul_per"] == pytest.approx(scalar["ul_per"], abs=ERROR_RATE_ATOL), label
            assert batched["dl_per"] == pytest.approx(scalar["dl_per"], abs=ERROR_RATE_ATOL), label
            assert batched["frames"] == pytest.approx(scalar["frames"], rel=FRAMES_RTOL), label


# --------------------------------------------------------------------------
# Per-request determinism of the batch path.
# --------------------------------------------------------------------------
class TestBatchDeterminism:
    DURATION = 8.0

    def test_results_independent_of_batch_composition(self, simulator, default_config):
        alone = simulator.run_batch(
            [default_config] * 3, traffic=2, duration=self.DURATION, seeds=[1, 2, 3]
        )
        surrounded = simulator.run_batch(
            [default_config] * 7, traffic=2, duration=self.DURATION, seeds=[9, 1, 2, 3, 4, 5, 6]
        )
        for a, b in zip(alone, surrounded[1:4]):
            assert _results_equal(a, b)

    def test_repeated_batches_are_identical(self, simulator, default_config):
        first = simulator.run_batch([default_config] * 2, duration=self.DURATION, seeds=[4, 5])
        second = simulator.run_batch([default_config] * 2, duration=self.DURATION, seeds=[4, 5])
        for a, b in zip(first, second):
            assert _results_equal(a, b)

    def test_int_seed_broadcasts_to_every_lane(self, simulator, default_config):
        broadcast = simulator.run_batch([default_config] * 3, duration=self.DURATION, seeds=7)
        explicit = simulator.run_batch([default_config] * 3, duration=self.DURATION, seeds=[7, 7, 7])
        for a, b in zip(broadcast, explicit):
            assert _results_equal(a, b)

    def test_seed_length_mismatch_raises(self, simulator, default_config):
        with pytest.raises(ValueError, match="expected 2 seeds"):
            simulator.run_batch([default_config] * 2, seeds=[1, 2, 3])

    def test_empty_batch_returns_empty_list(self, simulator):
        assert simulator.run_batch([]) == []


# --------------------------------------------------------------------------
# The vectorized engine executor: caching, overrides, fallback.
# --------------------------------------------------------------------------
class TestVectorizedExecutor:
    DURATION = 8.0

    def _requests(self, config, seeds, **overrides):
        return [
            MeasurementRequest(config=config, traffic=2, duration=self.DURATION, seed=seed, **overrides)
            for seed in seeds
        ]

    def test_partial_cache_hits_shrink_the_batch(self, simulator, default_config):
        engine = MeasurementEngine(simulator, executor="vectorized", cache=MeasurementCache())
        first = engine.run_batch(self._requests(default_config, [0, 1, 2]))
        assert engine.executed_requests == 3
        combined = engine.run_batch(self._requests(default_config, [0, 1, 2, 3, 4]))
        # The three cached requests are served without re-execution; only the
        # two new ones reach the vectorized pass.
        assert engine.executed_requests == 5
        assert engine.cache_stats.hits == 3
        assert engine.cache_stats.misses == 5
        for a, b in zip(first, combined[:3]):
            assert _results_equal(a, b)
        # Per-request determinism: the shrunk two-lane pass produces the same
        # results the requests would get in any other batch composition.
        fresh = MeasurementEngine(simulator, executor="vectorized", cache=False).run_batch(
            self._requests(default_config, [3, 4])
        )
        for a, b in zip(fresh, combined[3:]):
            assert _results_equal(a, b)

    def test_cache_never_mixes_scalar_and_vectorized_results(self, simulator, default_config):
        # The two numerics families are statistically equivalent but not
        # byte-identical, so a shared cache must key them apart: a serial
        # engine must never be served a vectorized result (or vice versa).
        cache = MeasurementCache()
        requests = self._requests(default_config, [0])
        vectorized = MeasurementEngine(simulator, executor="vectorized", cache=cache)
        serial = MeasurementEngine(simulator, executor="serial", cache=cache)
        vectorized.run_batch(requests)
        serial_result = serial.run_batch(requests)[0]
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        direct = simulator.run(default_config, traffic=2, duration=self.DURATION, seed=0)
        assert np.array_equal(serial_result.latencies_ms, direct.latencies_ms)
        # Within a family the entry is shared as before.
        vectorized.run_batch(requests)
        serial.run_batch(requests)
        assert cache.stats.hits == 2

    def test_scenario_override_matches_singleton_batches(self, simulator, default_config):
        other = Scenario(traffic=3, distance_m=120.0, duration_s=12.0)
        engine = MeasurementEngine(simulator, executor="vectorized", cache=False)
        mixed = engine.run_batch(
            [
                MeasurementRequest(config=default_config, duration=self.DURATION, seed=1),
                MeasurementRequest(
                    config=default_config, duration=self.DURATION, seed=1, scenario=other
                ),
            ]
        )
        alone = [
            engine.run_batch([MeasurementRequest(config=default_config, duration=self.DURATION, seed=1)])[0],
            engine.run_batch(
                [
                    MeasurementRequest(
                        config=default_config, duration=self.DURATION, seed=1, scenario=other
                    )
                ]
            )[0],
        ]
        for a, b in zip(mixed, alone):
            assert _results_equal(a, b)
        # The override actually took effect: different scenarios, different runs.
        assert not np.array_equal(mixed[0].latencies_ms, mixed[1].latencies_ms)

    def test_params_override_matches_singleton_batches(self, simulator, default_config):
        params = SimulationParameters(compute_time=15.0, backhaul_delay=5.0)
        engine = MeasurementEngine(simulator, executor="vectorized", cache=False)
        mixed = engine.run_batch(
            [
                MeasurementRequest(config=default_config, duration=self.DURATION, seed=2),
                MeasurementRequest(
                    config=default_config, duration=self.DURATION, seed=2, params=params
                ),
            ]
        )
        alone = engine.run_batch(
            [MeasurementRequest(config=default_config, duration=self.DURATION, seed=2, params=params)]
        )[0]
        assert _results_equal(mixed[1], alone)
        assert not np.array_equal(mixed[0].latencies_ms, mixed[1].latencies_ms)

    def test_falls_back_to_scalar_without_batch_hook(self, default_config):
        class ScalarOnlyEnvironment:
            """Environment with the protocol surface but no ``run_requests``."""

            def __init__(self):
                self._simulator = NetworkSimulator(scenario=Scenario(traffic=2), seed=0)
                self.scenario = self._simulator.scenario

            def run(self, config, traffic=None, duration=None, seed=None):
                return self._simulator.run(config, traffic=traffic, duration=duration, seed=seed)

            def collect_latencies(self, config, traffic=None, duration=None, seed=None):
                return self.run(config, traffic=traffic, duration=duration, seed=seed).latencies_ms

            def fingerprint(self):
                return ("scalar-only",) + self._simulator.fingerprint()

        environment = ScalarOnlyEnvironment()
        vectorized = MeasurementEngine(environment, executor="vectorized", cache=False)
        serial = MeasurementEngine(environment, executor="serial", cache=False)
        requests = self._requests(default_config, [0, 1])
        for a, b in zip(vectorized.run_batch(requests), serial.run_batch(requests)):
            assert _results_equal(a, b)

    def test_real_network_resolves_through_prepare_batch(self, default_config):
        scenario = Scenario(traffic=1, duration_s=10.0)
        real = RealNetwork(scenario=scenario, seed=1)
        engine = MeasurementEngine(real, executor="vectorized", cache=False)
        results = engine.run_batch(self._requests(default_config, [1, 2, 3]))
        assert len(results) == 3
        # The domain managers logged every applied configuration in order.
        assert len(real.applied_history) == 3
        # Reproducible: a fresh testbed measuring the same batch agrees.
        again = MeasurementEngine(
            RealNetwork(scenario=scenario, seed=1), executor="vectorized", cache=False
        ).run_batch(self._requests(default_config, [1, 2, 3]))
        for a, b in zip(results, again):
            assert _results_equal(a, b)


# --------------------------------------------------------------------------
# Batched multi-slice rounds.
# --------------------------------------------------------------------------
class TestRunSlicesBatch:
    DURATION = 6.0

    def _rounds(self):
        embb = Scenario(traffic=2, frame_size_mean_bytes=60_000)
        urllc = Scenario(traffic=1, frame_size_mean_bytes=2_000, compute_time_mean_ms=3.0)
        demanding = SliceConfig(bandwidth_ul=40, bandwidth_dl=40, backhaul_bw=60, cpu_ratio=1.0)
        modest = SliceConfig(bandwidth_ul=25, bandwidth_dl=20, backhaul_bw=50, cpu_ratio=0.8)
        return [
            [
                SliceRun(name="embb", config=demanding, scenario=embb, seed=1),
                SliceRun(name="urllc", config=modest, scenario=urllc, seed=2),
            ],
            [
                SliceRun(name="embb", config=modest, scenario=embb, seed=3),
                SliceRun(name="urllc", config=demanding, scenario=urllc, seed=4),
            ],
        ]

    def test_matches_per_round_run_slices(self, simulator):
        budget = ResourceBudget()
        batched = simulator.run_slices_batch(self._rounds(), budget=budget, duration=self.DURATION)
        assert len(batched) == 2
        for round_runs, batch_result in zip(self._rounds(), batched):
            single = simulator.run_slices(round_runs, budget=budget, duration=self.DURATION)
            assert batch_result.allocated == single.allocated
            for a, b in zip(batch_result.results, single.results):
                assert _results_equal(a, b)

    def test_vectorized_engine_executes_all_rounds_in_one_batch(self, simulator):
        engine = MeasurementEngine(simulator, executor="vectorized", cache=False)
        batched = simulator.run_slices_batch(
            self._rounds(), duration=self.DURATION, engine=engine
        )
        assert engine.submitted_batches == 1
        assert engine.executed_requests == 4
        for result in batched:
            assert len(result.results) == 2
            for measured in result.results:
                assert measured.frames_completed >= 0
                assert np.all(np.isfinite(measured.latencies_ms))

    def test_engine_environment_mismatch_raises(self, simulator):
        foreign = MeasurementEngine(NetworkSimulator(seed=99))
        with pytest.raises(ValueError, match="engine must wrap the environment"):
            simulator.run_slices_batch(self._rounds(), engine=foreign)

    def test_contention_conserves_budget_per_round(self, simulator):
        budget = ResourceBudget()
        for result in simulator.run_slices_batch(self._rounds(), budget=budget, duration=self.DURATION):
            for dimension in ("bandwidth_ul", "bandwidth_dl", "backhaul_bw", "cpu_ratio"):
                total = sum(getattr(config, dimension) for config in result.allocated)
                assert total <= budget.total(dimension) + 1e-9
