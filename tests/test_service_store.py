"""Property-based and multi-process tests of the persistent result store.

Covers the store's contracts in isolation: canonical key encoding (typed,
deterministic, process-independent), blob round-trip identity, eviction
never dropping the entry just written, corruption detection, and N
processes hammering one store directory with reconcilable cost accounting.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.cache import MeasurementCache
from repro.engine.engine import MeasurementEngine
from repro.engine.protocol import MeasurementRequest
from repro.scenarios import get_scenario
from repro.service.store import (
    ResultStore,
    StoreKeyError,
    canonical_key_bytes,
    key_digest,
)

# Scalars that appear in engine cache keys, plus bytes for completeness.
key_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

#: Nested tuples of key scalars — the shape of real cache keys.
key_trees = st.recursive(
    key_scalars,
    lambda children: st.tuples(children, children) | st.tuples(children, children, children),
    max_leaves=12,
)


@given(key_trees)
@settings(max_examples=100, deadline=None)
def test_canonical_key_bytes_is_deterministic(key):
    assert canonical_key_bytes(key) == canonical_key_bytes(key)
    assert len(key_digest(key)) == 64


@given(key_trees, key_trees)
@settings(max_examples=100, deadline=None)
def test_unequal_keys_have_distinct_bytes(a, b):
    # Injectivity up to equality: two keys that compare unequal must never
    # collide byte-wise (equal-comparing cross-type pairs like 1 == 1.0 are
    # excluded here and covered by the type-tagging test below).
    if a != b:
        assert canonical_key_bytes(a) != canonical_key_bytes(b)


def test_encoding_is_type_tagged():
    values = [1, 1.0, "1", True, b"1", (1,), None]
    encodings = {canonical_key_bytes(v) for v in values}
    assert len(encodings) == len(values)


def test_unencodable_key_raises_store_key_error():
    with pytest.raises(StoreKeyError):
        canonical_key_bytes((1, object()))


def test_engine_cache_key_is_encodable_and_process_stable(tmp_path):
    """The real engine key digests identically in a separate interpreter."""
    workload = get_scenario("frame-offloading").primary
    simulator = workload.make_simulator(seed=3)
    request = MeasurementRequest(
        config=workload.deployed_config, traffic=4, duration=2.5, seed=11
    )
    key = (simulator.fingerprint(), request.key(), "scalar")
    local = key_digest(key)

    script = (
        "from repro.engine.protocol import MeasurementRequest\n"
        "from repro.scenarios import get_scenario\n"
        "from repro.service.store import key_digest\n"
        "w = get_scenario('frame-offloading').primary\n"
        "sim = w.make_simulator(seed=3)\n"
        "req = MeasurementRequest(config=w.deployed_config, traffic=4, duration=2.5, seed=11)\n"
        "print(key_digest((sim.fingerprint(), req.key(), 'scalar')))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={"PYTHONPATH": "src"},
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == local


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=64),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_round_trip_identity(tmp_path, values, seed):
    store = ResultStore(tmp_path / "store")
    key = ("round-trip", seed)
    payload = {"latencies": np.asarray(values), "seed": seed}
    store.put(key, payload)
    loaded = store.get(key)
    assert loaded is not None
    assert loaded["seed"] == seed
    assert np.array_equal(loaded["latencies"], payload["latencies"])


def test_eviction_never_drops_the_entry_just_written(tmp_path):
    store = ResultStore(tmp_path / "store", max_bytes=2_000)
    blob = np.zeros(64)  # each entry ~700 bytes with header: budget fits ~2
    evicted_something = False
    for index in range(12):
        key = ("evict", index)
        store.put(key, blob)
        assert store.get(key) is not None, f"entry {index} evicted immediately after put"
        evicted_something = evicted_something or store.stats.evictions > 0
    assert evicted_something, "budget never triggered eviction — test is vacuous"
    assert store.entry_count() < 12


def test_lru_eviction_prefers_cold_entries(tmp_path):
    store = ResultStore(tmp_path / "store", max_bytes=10**9)
    blob = np.zeros(32)
    for index in range(6):
        store.put(("lru", index), blob)
    # Age everything artificially, then touch entry 0 so it is the warmest.
    import os

    for path, _, _ in store.entries():
        os.utime(path, (1, 1))
    assert store.get(("lru", 0)) is not None
    store.max_bytes = store.total_bytes() - 1  # force exactly one eviction
    store.evict_if_needed()
    assert store.get(("lru", 0)) is not None, "hit-refreshed entry was evicted before cold ones"


def test_corrupted_blob_is_detected_and_treated_as_miss(tmp_path):
    store = ResultStore(tmp_path / "store")
    key = ("corrupt", 1)
    digest = store.put(key, np.arange(10.0))
    path = store.path_for(digest)
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0xFF  # flip a payload byte: checksum must catch it
    path.write_bytes(bytes(blob))
    assert store.get(key) is None
    assert store.stats.corrupt_dropped == 1
    assert not path.exists(), "corrupt blob must be dropped, not left to re-fail"


def test_truncated_blob_is_detected_and_treated_as_miss(tmp_path):
    store = ResultStore(tmp_path / "store")
    key = ("truncated", 1)
    digest = store.put(key, np.arange(100.0))
    path = store.path_for(digest)
    path.write_bytes(path.read_bytes()[:-20])
    assert store.get(key) is None
    assert store.stats.corrupt_dropped == 1


def test_verify_reports_and_drops_corruption(tmp_path):
    store = ResultStore(tmp_path / "store")
    for index in range(3):
        store.put(("verify", index), np.arange(5.0))
    victim = store.path_for(store.put(("verify", 99), np.arange(5.0)))
    victim.write_bytes(b"not a blob at all")
    outcome = store.verify()
    assert outcome["checked"] == 4
    assert outcome["ok"] == 3
    assert outcome["corrupt"] == [str(victim)]
    assert store.entry_count() == 3


def test_cache_degrades_unencodable_keys_to_store_errors(tmp_path):
    """A key the store cannot address must not break the memory tier."""
    from repro.sim.network import SimulationResult  # noqa: F401 - sanity import

    store = ResultStore(tmp_path / "store")
    cache = MeasurementCache(store=store)
    workload = get_scenario("frame-offloading").primary
    engine = MeasurementEngine(workload.make_simulator(seed=0), executor="serial", cache=cache)
    result = engine.run(workload.deployed_config, traffic=2, duration=2.0, seed=5)
    bad_key = ("unencodable", object())
    cache.put(bad_key, result)
    assert cache.stats.store_errors == 1
    served = cache.get(bad_key)  # memory tier still serves it
    assert served is not None
    assert np.array_equal(served.latencies_ms, result.latencies_ms)


_WORKER_SCRIPT = """
import json, sys
from pathlib import Path
from repro.engine.cache import MeasurementCache
from repro.engine.engine import MeasurementEngine
from repro.scenarios import get_scenario
from repro.service.costs import CostLedger
from repro.service.store import ResultStore

store_dir, out_path, start, stop = sys.argv[1:5]
store = ResultStore(store_dir)
cache = MeasurementCache(store=store)
workload = get_scenario("frame-offloading").primary
engine = MeasurementEngine(workload.make_simulator(seed=0), executor="serial", cache=cache)
ledger = CostLedger(cache=cache, store=store)
for seed in range(int(start), int(stop)):
    engine.run(workload.deployed_config, traffic=3, duration=2.0, seed=seed)
costs = ledger.finish()
Path(out_path).write_text(json.dumps({"costs": costs, "executed": engine.executed_requests}))
"""


def test_concurrent_processes_share_one_store_and_reconcile(tmp_path):
    """N processes hammer one store directory with overlapping key ranges.

    No corruption, and each process's cost ledger reconciles exactly:
    every executed measurement is a cache miss, every miss was written
    through.  Duplicate recompute is allowed only inside the race window
    (two processes missing the same key before either publishes); a
    sequential rerun afterwards must be served entirely from the store.
    """
    store_dir = tmp_path / "store"
    repo_root = Path(__file__).resolve().parent.parent
    ranges = [(0, 8), (4, 12), (8, 16)]  # overlapping on purpose
    procs = []
    for index, (start, stop) in enumerate(ranges):
        out = tmp_path / f"worker{index}.json"
        procs.append(
            (
                subprocess.Popen(
                    [sys.executable, "-c", _WORKER_SCRIPT, str(store_dir), str(out), str(start), str(stop)],
                    cwd=repo_root,
                    env={"PYTHONPATH": "src"},
                    stderr=subprocess.PIPE,
                ),
                out,
            )
        )
    for proc, out in procs:
        _, stderr = proc.communicate(timeout=240)
        assert proc.returncode == 0, stderr.decode()
        payload = json.loads(out.read_text())
        costs = payload["costs"]
        cache = costs["cache"]
        lookups = cache["memory_hits"] + cache["store_hits"] + cache["misses"]
        assert lookups == 8  # one lookup per seed in the worker's range
        assert costs["engine_requests"] == cache["misses"] == payload["executed"]
        assert costs["store"]["puts"] == cache["misses"]
        assert costs["store"]["hits"] == cache["store_hits"]
        assert cache["store_errors"] == 0

    store = ResultStore(store_dir)
    outcome = store.verify()
    assert outcome["corrupt"] == []
    assert outcome["ok"] == outcome["checked"] == 16  # every key 0..15 present once

    # Sequential rerun over the full range: zero recompute beyond the races.
    cache = MeasurementCache(store=store)
    workload = get_scenario("frame-offloading").primary
    engine = MeasurementEngine(workload.make_simulator(seed=0), executor="serial", cache=cache)
    for seed in range(16):
        assert engine.run(workload.deployed_config, traffic=3, duration=2.0, seed=seed) is not None
    assert engine.executed_requests == 0
    assert cache.stats.store_hits == 16
