"""Tests for the GP kernels and the Gaussian-process regressor."""

import numpy as np
import pytest

from repro.models.gp import GaussianProcessRegressor
from repro.models.kernels import (
    ConstantKernel,
    Matern52Kernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
    WhiteKernel,
)


class TestKernels:
    @pytest.mark.parametrize("kernel", [RBFKernel(0.7), Matern52Kernel(1.3)])
    def test_gram_matrix_is_symmetric_psd_with_unit_diagonal(self, kernel):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(25, 3))
        gram = kernel(x, x)
        assert np.allclose(gram, gram.T, atol=1e-12)
        assert np.allclose(np.diag(gram), 1.0)
        eigenvalues = np.linalg.eigvalsh(gram + 1e-10 * np.eye(len(x)))
        assert np.all(eigenvalues > -1e-8)

    @pytest.mark.parametrize("kernel", [RBFKernel(1.0), Matern52Kernel(1.0)])
    def test_kernel_decays_with_distance(self, kernel):
        origin = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[3.0, 0.0]])
        assert kernel(origin, near)[0, 0] > kernel(origin, far)[0, 0]

    def test_white_kernel_is_diagonal_only_on_identical_inputs(self):
        kernel = WhiteKernel(0.5)
        x = np.random.default_rng(1).normal(size=(4, 2))
        assert np.allclose(kernel(x, x), 0.5 * np.eye(4))
        assert np.allclose(kernel(x, x + 1.0), 0.0)

    def test_constant_kernel_value(self):
        kernel = ConstantKernel(2.5)
        assert np.allclose(kernel(np.zeros((2, 1)), np.zeros((3, 1))), 2.5)

    def test_composite_kernels_combine_values_and_params(self):
        left, right = ConstantKernel(2.0), RBFKernel(1.0)
        product = ProductKernel(left, right)
        sum_kernel = SumKernel(left, right)
        x = np.array([[0.0], [1.0]])
        assert np.allclose(product(x, x), 2.0 * right(x, x))
        assert np.allclose(sum_kernel(x, x), 2.0 + right(x, x))
        assert product.n_params == 2
        params = product.get_log_params()
        product.set_log_params(params + np.log(2.0))
        assert product.left.constant == pytest.approx(4.0)

    def test_operator_overloads(self):
        combined = ConstantKernel(1.0) * Matern52Kernel(1.0) + WhiteKernel(1e-2)
        assert isinstance(combined, SumKernel)
        assert combined.n_params == 3

    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ValueError):
            RBFKernel(0.0)
        with pytest.raises(ValueError):
            Matern52Kernel(-1.0)
        with pytest.raises(ValueError):
            WhiteKernel(0.0)
        with pytest.raises(ValueError):
            ConstantKernel(0.0)


class TestGaussianProcessRegressor:
    def test_interpolates_training_points(self):
        x = np.linspace(0, 1, 12).reshape(-1, 1)
        y = np.sin(4 * x[:, 0])
        gp = GaussianProcessRegressor(noise=1e-6, seed=0).fit(x, y)
        prediction = gp.predict(x)
        assert np.max(np.abs(prediction - y)) < 0.05

    def test_predictive_std_smaller_at_training_points(self):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        y = np.cos(3 * x[:, 0])
        gp = GaussianProcessRegressor(seed=1).fit(x, y)
        _, std_train = gp.predict(x, return_std=True)
        _, std_far = gp.predict(np.array([[5.0]]), return_std=True)
        assert std_far[0] > std_train.mean()

    def test_unfitted_gp_returns_prior(self):
        gp = GaussianProcessRegressor(seed=2)
        mean, std = gp.predict(np.zeros((3, 2)), return_std=True)
        assert np.allclose(mean, 0.0)
        assert np.allclose(std, 1.0)

    def test_fit_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((3, 1)), np.zeros(2))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((0, 1)), np.zeros(0))

    def test_invalid_noise_raises(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=0.0)

    def test_hyperparameter_optimisation_improves_likelihood(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 5, size=(40, 1))
        y = np.sin(x[:, 0]) + 0.05 * rng.standard_normal(40)
        fixed = GaussianProcessRegressor(optimize_hyperparameters=False, seed=3).fit(x, y)
        fitted = GaussianProcessRegressor(optimize_hyperparameters=True, seed=3).fit(x, y)
        fixed_error = np.mean((fixed.predict(x) - y) ** 2)
        fitted_error = np.mean((fitted.predict(x) - y) ** 2)
        assert fitted_error <= fixed_error * 1.5
        assert fitted.log_marginal_likelihood_ is not None

    def test_sample_y_shape_and_consistency_with_posterior(self):
        x = np.linspace(0, 1, 8).reshape(-1, 1)
        y = x[:, 0] ** 2
        gp = GaussianProcessRegressor(seed=4).fit(x, y)
        draws = gp.sample_y(x, n_samples=20, seed=7)
        assert draws.shape == (20, 8)
        mean = gp.predict(x)
        assert np.mean(np.abs(draws.mean(axis=0) - mean)) < 0.3

    def test_sample_y_from_prior(self):
        gp = GaussianProcessRegressor(seed=5)
        draws = gp.sample_y(np.zeros((4, 2)), n_samples=3, seed=1)
        assert draws.shape == (3, 4)

    def test_normalised_targets_recover_offset(self):
        x = np.linspace(0, 1, 15).reshape(-1, 1)
        y = 100.0 + np.sin(3 * x[:, 0])
        gp = GaussianProcessRegressor(seed=6).fit(x, y)
        prediction = gp.predict(np.array([[0.5]]))
        assert 99.0 < prediction[0] < 101.5

    def test_noisy_data_does_not_crash_and_stays_calibrated(self):
        rng = np.random.default_rng(8)
        x = rng.uniform(0, 1, size=(60, 2))
        y = x[:, 0] + 0.2 * rng.standard_normal(60)
        gp = GaussianProcessRegressor(noise=1e-2, seed=8).fit(x, y)
        mean, std = gp.predict(x, return_std=True)
        assert np.all(np.isfinite(mean)) and np.all(std > 0)
