"""Integration tests of the end-to-end simulator facade."""

import numpy as np

from repro.sim.config import SliceConfig
from repro.sim.imperfections import Imperfections
from repro.sim.network import NetworkSimulator
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario


class TestNetworkSimulatorRuns:
    def test_run_produces_latency_samples(self, simulator, default_config):
        result = simulator.run(default_config, traffic=1, duration=15.0, seed=1)
        assert result.frames_completed > 10
        assert result.latencies_ms.shape == (result.frames_completed,)
        assert np.all(result.latencies_ms > 0)

    def test_same_seed_is_reproducible(self, simulator, default_config):
        first = simulator.run(default_config, traffic=1, duration=10.0, seed=7)
        second = simulator.run(default_config, traffic=1, duration=10.0, seed=7)
        assert np.allclose(first.latencies_ms, second.latencies_ms)

    def test_different_seeds_differ(self, simulator, default_config):
        first = simulator.run(default_config, traffic=1, duration=10.0, seed=1)
        second = simulator.run(default_config, traffic=1, duration=10.0, seed=2)
        assert not np.array_equal(first.latencies_ms, second.latencies_ms)

    def test_latency_increases_with_traffic(self, simulator, default_config):
        light = simulator.run(default_config, traffic=1, duration=20.0, seed=3)
        heavy = simulator.run(default_config, traffic=4, duration=20.0, seed=3)
        assert heavy.mean_latency_ms > light.mean_latency_ms

    def test_throughput_increases_with_traffic(self, simulator, default_config):
        light = simulator.run(default_config, traffic=1, duration=20.0, seed=4)
        heavy = simulator.run(default_config, traffic=4, duration=20.0, seed=4)
        assert heavy.frames_completed > light.frames_completed

    def test_more_resources_reduce_latency(self, simulator):
        lean = SliceConfig(bandwidth_ul=6, bandwidth_dl=3, backhaul_bw=3, cpu_ratio=0.3)
        rich = SliceConfig(bandwidth_ul=45, bandwidth_dl=45, backhaul_bw=80, cpu_ratio=1.0)
        lean_result = simulator.run(lean, traffic=1, duration=20.0, seed=5)
        rich_result = simulator.run(rich, traffic=1, duration=20.0, seed=5)
        assert rich_result.mean_latency_ms < lean_result.mean_latency_ms

    def test_cpu_ratio_dominates_compute_stage(self, simulator, default_config):
        starved = simulator.run(default_config.replace(cpu_ratio=0.2), traffic=1, duration=20.0, seed=6)
        full = simulator.run(default_config.replace(cpu_ratio=1.0), traffic=1, duration=20.0, seed=6)
        assert starved.stage_breakdown_ms["compute"] > 2.0 * full.stage_breakdown_ms["compute"]

    def test_qoe_monotone_in_threshold(self, simulator, default_config):
        result = simulator.run(default_config, traffic=1, duration=20.0, seed=7)
        assert result.qoe(200.0) <= result.qoe(300.0) <= result.qoe(500.0)

    def test_qoe_of_empty_result(self, simulator, default_config):
        result = simulator.run(default_config, traffic=1, duration=20.0, seed=8)
        result.latencies_ms = np.zeros(0)
        result.frames_completed = 0
        assert result.qoe(300.0) == 0.0

    def test_table1_metrics_are_reported(self, simulator, default_config):
        result = simulator.run(default_config, traffic=1, duration=20.0, seed=9)
        assert 15.0 < result.ul_throughput_mbps < 25.0
        assert 25.0 < result.dl_throughput_mbps < 38.0
        assert 0.0 <= result.ul_packet_error_rate < 0.1
        assert 10.0 < result.ping_delay_ms < 80.0

    def test_stage_breakdown_contains_all_stages(self, simulator, default_config):
        result = simulator.run(default_config, traffic=1, duration=20.0, seed=10)
        assert {"loading", "uplink", "backhaul_ul", "compute", "downlink"} <= set(result.stage_breakdown_ms)

    def test_collect_latencies_matches_run(self, simulator, default_config):
        latencies = simulator.collect_latencies(default_config, traffic=1, duration=10.0, seed=11)
        result = simulator.run(default_config, traffic=1, duration=10.0, seed=11)
        assert np.allclose(latencies, result.latencies_ms)


class TestParameterSensitivity:
    def test_loading_time_parameter_shifts_latency(self, default_config):
        base = NetworkSimulator(seed=0).run(default_config, traffic=1, duration=20.0, seed=1)
        shifted_params = SimulationParameters(loading_time=30.0)
        shifted = NetworkSimulator(params=shifted_params, seed=0).run(
            default_config, traffic=1, duration=20.0, seed=1
        )
        assert shifted.mean_latency_ms > base.mean_latency_ms + 15.0

    def test_backhaul_bw_parameter_speeds_up_transport(self, default_config):
        lean_config = default_config.replace(backhaul_bw=3.0)
        base = NetworkSimulator(seed=0).run(lean_config, traffic=1, duration=20.0, seed=2)
        boosted = NetworkSimulator(params=SimulationParameters(backhaul_bw=20.0), seed=0).run(
            lean_config, traffic=1, duration=20.0, seed=2
        )
        assert boosted.mean_latency_ms < base.mean_latency_ms

    def test_with_params_returns_independent_copy(self, simulator):
        augmented = simulator.with_params(SimulationParameters(compute_time=20.0))
        assert augmented is not simulator
        assert simulator.params.compute_time == 0.0
        assert augmented.params.compute_time == 20.0
        assert augmented.scenario == simulator.scenario

    def test_with_scenario_returns_independent_copy(self, simulator):
        moved = simulator.with_scenario(Scenario(traffic=3, distance_m=5.0))
        assert moved.scenario.traffic == 3
        assert simulator.scenario.traffic == 1


class TestImperfectionsInSimulator:
    def test_spikes_create_heavier_tail(self, default_config):
        clean = NetworkSimulator(seed=0).run(default_config, traffic=1, duration=30.0, seed=3)
        spiky = NetworkSimulator(
            imperfections=Imperfections(spike_probability=0.3, spike_ms_range=(200.0, 400.0)), seed=0
        ).run(default_config, traffic=1, duration=30.0, seed=3)
        assert np.percentile(spiky.latencies_ms, 95) > np.percentile(clean.latencies_ms, 95) + 50.0

    def test_overheads_shift_mean_latency(self, default_config):
        clean = NetworkSimulator(seed=0).run(default_config, traffic=1, duration=20.0, seed=4)
        overhead = NetworkSimulator(
            imperfections=Imperfections(per_frame_overhead_ms=40.0), seed=0
        ).run(default_config, traffic=1, duration=20.0, seed=4)
        assert overhead.mean_latency_ms > clean.mean_latency_ms + 20.0

    def test_error_floor_scale_raises_packet_error_rate(self, default_config):
        clean = NetworkSimulator(seed=0).run(default_config, traffic=4, duration=60.0, seed=5)
        noisy = NetworkSimulator(
            imperfections=Imperfections(error_floor_scale=30.0), seed=0
        ).run(default_config, traffic=4, duration=60.0, seed=5)
        assert noisy.ul_packet_error_rate >= clean.ul_packet_error_rate
