"""Tests for the configuration (Table 2) and simulation-parameter (Table 3) types."""

import numpy as np
import pytest

from repro.sim.config import (
    CONFIG_BOUNDS,
    CONFIG_NAMES,
    MIN_DOWNLINK_PRBS,
    MIN_UPLINK_PRBS,
    SliceConfig,
)
from repro.sim.parameters import PARAMETER_BOUNDS, PARAMETER_NAMES, SimulationParameters
from repro.sim.scenario import Scenario


class TestSliceConfig:
    def test_round_trip_through_array(self):
        config = SliceConfig(bandwidth_ul=12, bandwidth_dl=7, mcs_offset_ul=3,
                             mcs_offset_dl=1, backhaul_bw=22.5, cpu_ratio=0.35)
        assert SliceConfig.from_array(config.to_array()) == config

    def test_array_order_matches_table2(self):
        config = SliceConfig(bandwidth_ul=1, bandwidth_dl=2, mcs_offset_ul=3,
                             mcs_offset_dl=4, backhaul_bw=5, cpu_ratio=0.6)
        assert list(config.to_array()) == [1, 2, 3, 4, 5, 0.6]
        assert CONFIG_NAMES[0] == "bandwidth_ul" and CONFIG_NAMES[-1] == "cpu_ratio"

    def test_out_of_range_construction_raises(self):
        with pytest.raises(ValueError):
            SliceConfig(bandwidth_ul=60)
        with pytest.raises(ValueError):
            SliceConfig(cpu_ratio=-0.1)
        with pytest.raises(ValueError):
            SliceConfig(backhaul_bw=float("nan"))

    def test_from_array_clips_to_bounds(self):
        config = SliceConfig.from_array([999, -5, 20, 3, 500, 2.0])
        assert config.bandwidth_ul == CONFIG_BOUNDS["bandwidth_ul"][1]
        assert config.bandwidth_dl == 0.0
        assert config.mcs_offset_ul == CONFIG_BOUNDS["mcs_offset_ul"][1]
        assert config.cpu_ratio == 1.0

    def test_from_array_wrong_length_raises(self):
        with pytest.raises(ValueError):
            SliceConfig.from_array([1, 2, 3])

    def test_normalized_round_trip(self):
        config = SliceConfig(bandwidth_ul=25, bandwidth_dl=25, mcs_offset_ul=5,
                             mcs_offset_dl=5, backhaul_bw=50, cpu_ratio=0.5)
        normalized = config.to_normalized()
        assert np.allclose(normalized, 0.5)
        assert SliceConfig.from_normalized(normalized) == config

    def test_maximum_configuration_usage(self):
        maximum = SliceConfig.maximum()
        # MCS offsets are zero in the maximum config, so usage is 4/6.
        assert maximum.resource_usage() == pytest.approx(4.0 / 6.0)

    def test_effective_prbs_enforce_connectivity_minimum(self):
        config = SliceConfig(bandwidth_ul=0, bandwidth_dl=0)
        assert config.effective_uplink_prbs() == MIN_UPLINK_PRBS
        assert config.effective_downlink_prbs() == MIN_DOWNLINK_PRBS

    def test_replace_returns_modified_copy(self):
        config = SliceConfig()
        changed = config.replace(cpu_ratio=0.9)
        assert changed.cpu_ratio == 0.9
        assert config.cpu_ratio != 0.9

    def test_resource_usage_bounds(self):
        zero = SliceConfig(bandwidth_ul=0, bandwidth_dl=0, mcs_offset_ul=0,
                           mcs_offset_dl=0, backhaul_bw=0, cpu_ratio=0)
        assert zero.resource_usage() == 0.0
        assert 0.0 <= SliceConfig().resource_usage() <= 1.0


class TestSimulationParameters:
    def test_defaults_match_table4_original_row(self):
        defaults = SimulationParameters.defaults()
        assert list(defaults.to_array()) == pytest.approx([38.57, 5.0, 9.0, 0.0, 0.0, 0.0, 0.0])

    def test_round_trip_through_array(self):
        params = SimulationParameters(39.0, 2.0, 8.0, 5.0, 9.0, 6.0, 6.5)
        assert SimulationParameters.from_array(params.to_array()) == params

    def test_order_matches_table3(self):
        assert PARAMETER_NAMES[0] == "baseline_loss"
        assert PARAMETER_NAMES[-1] == "loading_time"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SimulationParameters(baseline_loss=10.0)
        with pytest.raises(ValueError):
            SimulationParameters(compute_time=-1.0)

    def test_from_array_clips(self):
        params = SimulationParameters.from_array([100, -5, 50, 100, 100, 100, 100])
        for name in PARAMETER_NAMES:
            lo, hi = PARAMETER_BOUNDS[name]
            assert lo <= getattr(params, name) <= hi

    def test_from_array_wrong_length_raises(self):
        with pytest.raises(ValueError):
            SimulationParameters.from_array([1.0, 2.0])

    def test_bounds_arrays_are_consistent(self):
        lows, highs = SimulationParameters.bounds_arrays()
        assert np.all(highs > lows)
        assert len(lows) == len(PARAMETER_NAMES)

    def test_distance_to_is_zero_for_identical(self):
        params = SimulationParameters.defaults()
        assert params.distance_to(params) == 0.0

    def test_distance_is_symmetric_and_positive(self):
        a = SimulationParameters.defaults()
        b = SimulationParameters(39.0, 2.0, 8.0, 5.0, 9.0, 6.0, 6.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
        assert a.distance_to(b) > 0

    def test_replace(self):
        params = SimulationParameters.defaults().replace(compute_time=12.0)
        assert params.compute_time == 12.0
        assert params.baseline_loss == 38.57


class TestScenario:
    def test_defaults_match_prototype(self):
        scenario = Scenario()
        assert scenario.traffic == 1
        assert scenario.distance_m == 1.0
        assert scenario.frame_size_mean_bytes == pytest.approx(28_800.0)
        assert scenario.compute_time_mean_ms == pytest.approx(81.0)

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            Scenario(traffic=0)
        with pytest.raises(ValueError):
            Scenario(distance_m=0.0)
        with pytest.raises(ValueError):
            Scenario(mobility="teleport")
        with pytest.raises(ValueError):
            Scenario(extra_users=-1)
        with pytest.raises(ValueError):
            Scenario(duration_s=0.0)

    def test_replace_and_state_vector(self):
        scenario = Scenario().replace(traffic=3, extra_users=2)
        assert scenario.traffic == 3
        assert scenario.state_vector() == (3.0, 1.0, 2.0)
