"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.penalty import AdaptiveMultiplier
from repro.core.spaces import ConfigurationSpace, SimulationParameterSpace
from repro.metrics.kl import histogram_kl_divergence, jensen_shannon_divergence
from repro.metrics.qoe import qoe_from_latencies
from repro.metrics.regret import cumulative_qoe_regret
from repro.models.scaler import StandardScaler
from repro.scenarios.traces import RampTrace
from repro.sim.config import CONFIG_BOUNDS, CONFIG_NAMES, SliceConfig
from repro.sim.faults import DriftRamp, DropoutWindow, FaultSchedule, RandomDropout, StormWindow
from repro.sim.lte import MAX_MCS, expected_transmissions, select_mcs, spectral_efficiency
from repro.sim.parameters import SimulationParameters


latency_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=0.1, max_value=5000.0, allow_nan=False),
)


@given(latency_arrays, latency_arrays)
@settings(max_examples=50, deadline=None)
def test_kl_divergence_is_non_negative_and_finite(p, q):
    value = histogram_kl_divergence(p, q)
    assert np.isfinite(value)
    assert value >= -1e-12


@given(latency_arrays)
@settings(max_examples=30, deadline=None)
def test_kl_divergence_of_collection_with_itself_is_zero(samples):
    assert histogram_kl_divergence(samples, samples) < 1e-9


@given(latency_arrays, latency_arrays)
@settings(max_examples=30, deadline=None)
def test_jensen_shannon_is_symmetric_and_bounded(p, q):
    forward = jensen_shannon_divergence(p, q)
    backward = jensen_shannon_divergence(q, p)
    assert abs(forward - backward) < 1e-9
    assert -1e-12 <= forward <= np.log(2.0) + 1e-9


@given(latency_arrays, st.floats(min_value=1.0, max_value=2000.0))
@settings(max_examples=50, deadline=None)
def test_qoe_is_a_probability_and_monotone_in_threshold(latencies, threshold):
    qoe = qoe_from_latencies(latencies, threshold)
    assert 0.0 <= qoe <= 1.0
    assert qoe <= qoe_from_latencies(latencies, threshold * 2.0) + 1e-12


@given(
    hnp.arrays(dtype=float, shape=st.integers(1, 50),
               elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_qoe_regret_is_monotone_and_non_negative(qoes, optimal):
    regret = cumulative_qoe_regret(qoes, optimal)
    assert np.all(regret >= -1e-12)
    assert np.all(np.diff(regret) >= -1e-12)


@given(hnp.arrays(dtype=float, shape=st.tuples(st.integers(2, 40), st.integers(1, 5)),
                  elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)))
@settings(max_examples=50, deadline=None)
def test_scaler_round_trip(data):
    scaler = StandardScaler().fit(data)
    recovered = scaler.inverse_transform(scaler.transform(data))
    assert np.allclose(recovered, data, atol=1e-6 * (1 + np.abs(data).max()))


config_vectors = hnp.arrays(
    dtype=float, shape=6,
    elements=st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False),
)


@given(config_vectors)
@settings(max_examples=100, deadline=None)
def test_slice_config_from_array_always_within_bounds(vector):
    config = SliceConfig.from_array(vector)
    for name in CONFIG_NAMES:
        lo, hi = CONFIG_BOUNDS[name]
        assert lo <= getattr(config, name) <= hi
    assert 0.0 <= config.resource_usage() <= 1.0


@given(hnp.arrays(dtype=float, shape=7,
                  elements=st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False)))
@settings(max_examples=100, deadline=None)
def test_simulation_parameters_from_array_always_valid(vector):
    params = SimulationParameters.from_array(vector)
    assert params.distance_to(SimulationParameters.defaults()) >= 0.0


@given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=1, max_value=64))
@settings(max_examples=30, deadline=None)
def test_configuration_space_sampling_and_normalisation(seed, count):
    space = ConfigurationSpace()
    rng = np.random.default_rng(seed)
    samples = space.sample(count, rng)
    unit = space.normalize(samples)
    assert np.all((unit >= -1e-12) & (unit <= 1 + 1e-12))
    assert np.allclose(space.denormalize(unit), samples)
    usage = space.resource_usage(samples)
    assert np.all((usage >= 0) & (usage <= 1))


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_parameter_space_feasible_sampling_respects_constraint(seed):
    space = SimulationParameterSpace(distance_threshold=0.12)
    samples = space.sample_feasible(20, np.random.default_rng(seed))
    assert np.all(space.parameter_distance(samples) <= 0.12 + 1e-9)
    lows, highs = SimulationParameters.bounds_arrays()
    assert np.all(samples >= lows - 1e-9) and np.all(samples <= highs + 1e-9)


@given(st.floats(min_value=-50.0, max_value=80.0), st.integers(min_value=0, max_value=10))
@settings(max_examples=100, deadline=None)
def test_mcs_selection_is_within_range_and_monotone_in_offset(sinr, offset):
    mcs = select_mcs(sinr, offset)
    assert 0 <= mcs <= MAX_MCS
    assert mcs <= select_mcs(sinr, 0)
    assert spectral_efficiency(mcs) >= 0.0


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_expected_transmissions_bounded_between_one_and_max(bler):
    value = expected_transmissions(bler, max_attempts=4)
    assert 1.0 - 1e-9 <= value <= 4.0 + 1e-9


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50),
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_multiplier_stays_non_negative_under_any_update_sequence(qoes, requirement, step):
    multiplier = AdaptiveMultiplier(step_size=step)
    for qoe in qoes:
        value = multiplier.update(qoe, requirement)
        assert value >= 0.0
    assert len(multiplier.history) == len(qoes) + 1


# ----------------------------------------------------------- fault schedules
drift_ramps = st.builds(
    DriftRamp,
    start=st.integers(min_value=0, max_value=10),
    steps=st.integers(min_value=1, max_value=10),
    multiplier=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    hold=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
)

storm_windows = st.builds(
    StormWindow,
    start=st.integers(min_value=0, max_value=10),
    steps=st.integers(min_value=1, max_value=10),
    extra_traffic=st.integers(min_value=0, max_value=5),
    severity=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
)

dropout_masks = st.one_of(
    st.builds(
        DropoutWindow,
        start=st.integers(min_value=0, max_value=6),
        steps=st.integers(min_value=1, max_value=4),
        period=st.sampled_from([0, 10, 16]),
    ),
    st.builds(
        RandomDropout,
        rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    ),
)

fault_schedules = st.builds(
    FaultSchedule,
    drifts=st.lists(drift_ramps, max_size=2).map(tuple),
    storms=st.lists(storm_windows, max_size=2).map(tuple),
    dropouts=st.lists(dropout_masks, max_size=2).map(tuple),
)


@given(fault_schedules, st.integers(min_value=0, max_value=64), st.integers(min_value=1, max_value=8))
@settings(max_examples=100, deadline=None)
def test_fault_schedule_is_a_pure_function_of_the_step(schedule, step, base):
    """Two queries of the same step agree exactly — no hidden random state."""
    replay = FaultSchedule(
        drifts=schedule.drifts, storms=schedule.storms, dropouts=schedule.dropouts
    )
    assert schedule.traffic_at(step, base) == replay.traffic_at(step, base)
    assert schedule.dropped(step) == replay.dropped(step)
    assert schedule.storm_severity(step) == replay.storm_severity(step)
    assert schedule.affects(step) == replay.affects(step)
    assert schedule.traffic_at(step, base) >= 1
    assert schedule.storm_severity(step) >= 1.0


@given(fault_schedules, st.integers(min_value=0, max_value=64), st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_without_dropouts_changes_nothing_but_the_dropout_mask(schedule, step, base):
    stripped = schedule.without_dropouts()
    assert not stripped.dropped(step)
    assert stripped.traffic_at(step, base) == schedule.traffic_at(step, base)
    assert stripped.storm_severity(step) == schedule.storm_severity(step)


@given(drift_ramps, st.integers(min_value=0, max_value=80))
@settings(max_examples=100, deadline=None)
def test_drift_factor_stays_between_one_and_the_multiplier(ramp, step):
    factor = ramp.factor(step)
    lo, hi = sorted((1.0, ramp.multiplier))
    assert lo - 1e-12 <= factor <= hi + 1e-12
    assert ramp.factor(max(0, ramp.start - 1)) == 1.0 if ramp.start > 0 else True
    peak = ramp.start + ramp.steps - 1
    assert abs(ramp.factor(peak) - ramp.multiplier) < 1e-12
    if ramp.hold is None:
        # A permanent plateau never releases.
        assert abs(ramp.factor(peak + 100) - ramp.multiplier) < 1e-12
    else:
        # An excursion fully recedes one ramp-length after the hold ends.
        assert ramp.factor(peak + ramp.hold + ramp.steps) == 1.0


@given(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_random_dropout_is_deterministic_under_seed(rate, seed, step):
    mask = RandomDropout(rate=rate, seed=seed)
    assert mask.dropped(step) == RandomDropout(rate=rate, seed=seed).dropped(step)
    if rate == 0.0:
        assert not mask.dropped(step)
    if rate == 1.0:
        assert mask.dropped(step)


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=40),
)
@settings(max_examples=100, deadline=None)
def test_ramp_trace_level_agrees_with_levels_at_every_boundary(
    low, swing, ramp_start, ramp_steps, horizon
):
    """``level(step)`` and ``levels(n)`` agree, including at window boundaries."""
    high = low + swing
    trace = RampTrace(low=low, high=high, ramp_start=ramp_start, ramp_steps=ramp_steps)
    levels = trace.levels(horizon)
    assert len(levels) == horizon
    for step, level in enumerate(levels):
        assert level == trace.level(step)
        assert low <= level <= high
    # Before the ramp the trace sits at ``low``; after it, at ``high`` —
    # the level is monotone non-decreasing throughout.
    if ramp_start > 0:
        assert trace.level(0) == low
    assert trace.level(ramp_start + ramp_steps + 10) == high
    series = trace.levels(ramp_start + ramp_steps + 2)
    assert all(a <= b for a, b in zip(series, series[1:]))
