"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.penalty import AdaptiveMultiplier
from repro.core.spaces import ConfigurationSpace, SimulationParameterSpace
from repro.metrics.kl import histogram_kl_divergence, jensen_shannon_divergence
from repro.metrics.qoe import qoe_from_latencies
from repro.metrics.regret import cumulative_qoe_regret
from repro.models.scaler import StandardScaler
from repro.sim.config import CONFIG_BOUNDS, CONFIG_NAMES, SliceConfig
from repro.sim.lte import MAX_MCS, expected_transmissions, select_mcs, spectral_efficiency
from repro.sim.parameters import SimulationParameters


latency_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=0.1, max_value=5000.0, allow_nan=False),
)


@given(latency_arrays, latency_arrays)
@settings(max_examples=50, deadline=None)
def test_kl_divergence_is_non_negative_and_finite(p, q):
    value = histogram_kl_divergence(p, q)
    assert np.isfinite(value)
    assert value >= -1e-12


@given(latency_arrays)
@settings(max_examples=30, deadline=None)
def test_kl_divergence_of_collection_with_itself_is_zero(samples):
    assert histogram_kl_divergence(samples, samples) < 1e-9


@given(latency_arrays, latency_arrays)
@settings(max_examples=30, deadline=None)
def test_jensen_shannon_is_symmetric_and_bounded(p, q):
    forward = jensen_shannon_divergence(p, q)
    backward = jensen_shannon_divergence(q, p)
    assert abs(forward - backward) < 1e-9
    assert -1e-12 <= forward <= np.log(2.0) + 1e-9


@given(latency_arrays, st.floats(min_value=1.0, max_value=2000.0))
@settings(max_examples=50, deadline=None)
def test_qoe_is_a_probability_and_monotone_in_threshold(latencies, threshold):
    qoe = qoe_from_latencies(latencies, threshold)
    assert 0.0 <= qoe <= 1.0
    assert qoe <= qoe_from_latencies(latencies, threshold * 2.0) + 1e-12


@given(
    hnp.arrays(dtype=float, shape=st.integers(1, 50),
               elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_qoe_regret_is_monotone_and_non_negative(qoes, optimal):
    regret = cumulative_qoe_regret(qoes, optimal)
    assert np.all(regret >= -1e-12)
    assert np.all(np.diff(regret) >= -1e-12)


@given(hnp.arrays(dtype=float, shape=st.tuples(st.integers(2, 40), st.integers(1, 5)),
                  elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)))
@settings(max_examples=50, deadline=None)
def test_scaler_round_trip(data):
    scaler = StandardScaler().fit(data)
    recovered = scaler.inverse_transform(scaler.transform(data))
    assert np.allclose(recovered, data, atol=1e-6 * (1 + np.abs(data).max()))


config_vectors = hnp.arrays(
    dtype=float, shape=6,
    elements=st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False),
)


@given(config_vectors)
@settings(max_examples=100, deadline=None)
def test_slice_config_from_array_always_within_bounds(vector):
    config = SliceConfig.from_array(vector)
    for name in CONFIG_NAMES:
        lo, hi = CONFIG_BOUNDS[name]
        assert lo <= getattr(config, name) <= hi
    assert 0.0 <= config.resource_usage() <= 1.0


@given(hnp.arrays(dtype=float, shape=7,
                  elements=st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False)))
@settings(max_examples=100, deadline=None)
def test_simulation_parameters_from_array_always_valid(vector):
    params = SimulationParameters.from_array(vector)
    assert params.distance_to(SimulationParameters.defaults()) >= 0.0


@given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=1, max_value=64))
@settings(max_examples=30, deadline=None)
def test_configuration_space_sampling_and_normalisation(seed, count):
    space = ConfigurationSpace()
    rng = np.random.default_rng(seed)
    samples = space.sample(count, rng)
    unit = space.normalize(samples)
    assert np.all((unit >= -1e-12) & (unit <= 1 + 1e-12))
    assert np.allclose(space.denormalize(unit), samples)
    usage = space.resource_usage(samples)
    assert np.all((usage >= 0) & (usage <= 1))


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_parameter_space_feasible_sampling_respects_constraint(seed):
    space = SimulationParameterSpace(distance_threshold=0.12)
    samples = space.sample_feasible(20, np.random.default_rng(seed))
    assert np.all(space.parameter_distance(samples) <= 0.12 + 1e-9)
    lows, highs = SimulationParameters.bounds_arrays()
    assert np.all(samples >= lows - 1e-9) and np.all(samples <= highs + 1e-9)


@given(st.floats(min_value=-50.0, max_value=80.0), st.integers(min_value=0, max_value=10))
@settings(max_examples=100, deadline=None)
def test_mcs_selection_is_within_range_and_monotone_in_offset(sinr, offset):
    mcs = select_mcs(sinr, offset)
    assert 0 <= mcs <= MAX_MCS
    assert mcs <= select_mcs(sinr, 0)
    assert spectral_efficiency(mcs) >= 0.0


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_expected_transmissions_bounded_between_one_and_max(bler):
    value = expected_transmissions(bler, max_attempts=4)
    assert 1.0 - 1e-9 <= value <= 4.0 + 1e-9


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50),
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_multiplier_stays_non_negative_under_any_update_sequence(qoes, requirement, step):
    multiplier = AdaptiveMultiplier(step_size=step)
    for qoe in qoes:
        value = multiplier.update(qoe, requirement)
        assert value >= 0.0
    assert len(multiplier.history) == len(qoes) + 1
