"""The evaluation harness: dataset, replay runner, layout, determinism.

The cross-executor classes reuse the byte-identity contract from
``tests/test_engine_sharded.py``: the runner pins every measurement to the
vectorized numerics family, so the *same* metric bytes must come out of the
serial, vectorized, sharded and auto executor kinds.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine.engine import MeasurementEngine
from repro.engine.protocol import MeasurementRequest
from repro.engine.replay import VectorReplayEnvironment
from repro.evalharness import (
    DEFAULT_CASES_PATH,
    METRIC_NAMES,
    Envelope,
    EvalCase,
    EvalDatasetError,
    EvalRunner,
    canonical_metrics_bytes,
    check_coverage,
    load_cases,
    parse_cases_yaml,
    scaled_config,
)
from repro.prototype.testbed import RealNetwork
from repro.scenarios import get_scenario, scenario_names
from repro.sim.config import CONFIG_BOUNDS, SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.parameters import SimulationParameters
from repro.sim.scenario import Scenario

WIDE = {
    "latency_p95_ms": Envelope(0.0, 100000.0),
    "sla_violation_rate": Envelope(0.0, 1.0),
    "avg_usage_regret": Envelope(-10.0, 10.0),
    "avg_qoe_regret": Envelope(-10.0, 10.0),
    "sim_real_symmetric_kl": Envelope(0.0, 1000.0),
}


def small_case(scenario: str = "urllc-control", **changes) -> EvalCase:
    """A fast replay case with envelopes no sane metric can escape."""
    base = EvalCase(
        group="test",
        scenario=scenario,
        seeds=(0,),
        measurements=2,
        duration_s=3.0,
        usage_ladder=(0.9, 1.0),
        envelopes=dict(WIDE),
    )
    return base.replace(**changes) if changes else base


class TestMiniYamlParser:
    def test_scalars_lists_and_nesting(self):
        document = parse_cases_yaml(
            "\n".join(
                [
                    "# a comment",
                    "defaults:",
                    "  seeds: [0, 1]",
                    "  duration_s: 6.0",
                    "cases:",
                    "  - group: static",
                    "    scenario: embb-video",
                    "    envelopes:",
                    "      latency_p95_ms: [10, 20.5]",
                    "  - group: dynamic",
                    "    scenario: flash-crowd",
                    "    envelopes:",
                    "      sla_violation_rate: [0, 1]",
                ]
            )
        )
        assert document["defaults"] == {"seeds": [0, 1], "duration_s": 6.0}
        assert len(document["cases"]) == 2
        assert document["cases"][0]["envelopes"]["latency_p95_ms"] == [10, 20.5]
        assert document["cases"][1]["group"] == "dynamic"

    def test_quoted_strings_and_booleans(self):
        document = parse_cases_yaml('flag: true\nname: "hello world"\n')
        assert document == {"flag": True, "name": "hello world"}

    def test_tab_indentation_is_rejected(self):
        with pytest.raises(EvalDatasetError, match="indentation"):
            parse_cases_yaml("cases:\n\t- group: x\n")

    def test_odd_indentation_is_rejected(self):
        with pytest.raises(EvalDatasetError, match="even number"):
            parse_cases_yaml("cases:\n   odd: 1\n")

    def test_duplicate_keys_are_rejected(self):
        with pytest.raises(EvalDatasetError, match="duplicate key"):
            parse_cases_yaml("a: 1\na: 2\n")

    def test_empty_document_parses_to_empty_mapping(self):
        assert parse_cases_yaml("# only a comment\n") == {}


class TestDataset:
    def test_checked_in_registry_loads_and_is_unique(self):
        cases = load_cases()
        ids = [case.case_id for case in cases]
        assert len(ids) == len(set(ids))
        assert all(case.envelopes for case in cases)

    def test_checked_in_registry_covers_every_catalog_scenario(self):
        covered = {case.scenario for case in load_cases()}
        assert covered == set(scenario_names())

    def test_group_filter(self):
        cases = load_cases(group="multislice")
        assert cases and all(case.group == "multislice" for case in cases)

    def test_scenario_filter(self):
        cases = load_cases(scenario="urllc-control")
        assert len(cases) == 1

    def test_filter_miss_names_registered_groups(self):
        with pytest.raises(EvalDatasetError, match="registered groups"):
            load_cases(group="nope")

    def test_filter_miss_names_covered_scenarios(self):
        with pytest.raises(EvalDatasetError, match="urllc-control"):
            load_cases(scenario="nope")

    def test_case_requires_usage_ladder_with_deployed_factor(self):
        with pytest.raises(EvalDatasetError, match="1.0"):
            small_case(usage_ladder=(0.9, 1.1))

    def test_case_rejects_unknown_metric(self):
        with pytest.raises(EvalDatasetError, match="unknown metric"):
            small_case(envelopes={"nonsense": Envelope(0.0, 1.0)})

    def test_case_requires_seeds_and_envelopes(self):
        with pytest.raises(EvalDatasetError, match="seed"):
            small_case(seeds=())
        with pytest.raises(EvalDatasetError, match="bound at least one metric"):
            small_case(envelopes={})

    def test_envelope_rejects_inverted_and_non_finite_bounds(self):
        with pytest.raises(EvalDatasetError, match="exceeds"):
            Envelope(2.0, 1.0)
        with pytest.raises(EvalDatasetError, match="finite"):
            Envelope(0.0, float("inf"))

    def test_envelope_never_contains_nan(self):
        assert not Envelope(0.0, 1.0).contains(float("nan"))
        assert Envelope(0.0, 1.0).contains(0.0) and Envelope(0.0, 1.0).contains(1.0)

    def test_duplicate_case_ids_in_registry_are_rejected(self, tmp_path):
        registry = tmp_path / "cases.yaml"
        entry = (
            "  - group: g\n"
            "    scenario: urllc-control\n"
            "    envelopes:\n"
            "      latency_p95_ms: [0, 100]\n"
        )
        registry.write_text("cases:\n" + entry + entry)
        with pytest.raises(EvalDatasetError, match="duplicate case id"):
            load_cases(path=registry)


class TestCoverageGuard:
    def test_checked_in_registry_passes_coverage(self):
        assert check_coverage(load_cases()) == []

    def test_missing_scenario_fails_with_actionable_message(self):
        partial = [case for case in load_cases() if case.scenario != "flash-crowd"]
        failures = check_coverage(partial)
        assert len(failures) == 1
        assert failures[0].kind == "coverage"
        assert "flash-crowd" in failures[0].message
        assert "cases.yaml" in failures[0].message

    def test_default_registry_file_is_the_checked_in_one(self):
        assert DEFAULT_CASES_PATH.name == "cases.yaml"
        assert DEFAULT_CASES_PATH.exists()


class TestVectorReplayEnvironment:
    def test_scalar_run_equals_one_lane_batch(self):
        simulator = NetworkSimulator(seed=3)
        wrapped = VectorReplayEnvironment(NetworkSimulator(seed=3))
        request = MeasurementRequest(config=SliceConfig(), traffic=5, duration=4.0, seed=11)
        direct = simulator.run_requests([request])[0]
        via_run = wrapped.run(SliceConfig(), traffic=5, duration=4.0, seed=11)
        np.testing.assert_array_equal(direct.latencies_ms, via_run.latencies_ms)

    def test_one_lane_equals_lane_of_larger_batch(self):
        wrapped = VectorReplayEnvironment(NetworkSimulator(seed=3))
        requests = [
            MeasurementRequest(config=SliceConfig(), traffic=5, duration=4.0, seed=seed)
            for seed in (7, 8, 9)
        ]
        batched = wrapped.run_requests(requests)
        for request, expected in zip(requests, batched):
            solo = wrapped.run_requests([request])[0]
            np.testing.assert_array_equal(solo.latencies_ms, expected.latencies_ms)

    def test_real_network_resolves_through_prepare_batch(self):
        wrapped = VectorReplayEnvironment(RealNetwork(seed=5))
        result = wrapped.run(SliceConfig(), traffic=5, duration=4.0, seed=13)
        assert result.latencies_ms.size > 0

    def test_rejects_environments_without_batch_hooks(self):
        with pytest.raises(TypeError, match="not vector-capable"):
            VectorReplayEnvironment(object())

    def test_fingerprint_is_namespaced(self):
        simulator = NetworkSimulator(seed=0)
        wrapped = VectorReplayEnvironment(simulator)
        assert wrapped.fingerprint()[0] == "vector-replay"
        assert wrapped.fingerprint() != simulator.fingerprint()

    def test_with_params_and_scenario_rewrap(self):
        wrapped = VectorReplayEnvironment(NetworkSimulator(seed=0))
        assert isinstance(wrapped.with_params(SimulationParameters()), VectorReplayEnvironment)
        assert isinstance(wrapped.with_scenario(Scenario(traffic=9)), VectorReplayEnvironment)
        assert wrapped.with_scenario(Scenario(traffic=9)).scenario.traffic == 9

    def test_engine_accepts_wrapped_environment_under_all_kinds(self):
        request = MeasurementRequest(config=SliceConfig(), traffic=5, duration=3.0, seed=2)
        baseline = None
        for kind in ("serial", "vectorized", "auto"):
            engine = MeasurementEngine(
                VectorReplayEnvironment(NetworkSimulator(seed=1)), executor=kind, cache=False
            )
            result = engine.run_batch([request])[0]
            if baseline is None:
                baseline = result.latencies_ms
            else:
                np.testing.assert_array_equal(result.latencies_ms, baseline)


class TestScaledConfig:
    def test_scales_only_contended_dimensions(self):
        config = SliceConfig(mcs_offset_ul=3, mcs_offset_dl=2)
        scaled = scaled_config(config, 0.5)
        assert scaled.mcs_offset_ul == 3 and scaled.mcs_offset_dl == 2
        assert scaled.bandwidth_ul == pytest.approx(config.bandwidth_ul * 0.5)

    def test_clamps_to_config_bounds(self):
        config = SliceConfig()
        huge = scaled_config(config, 1000.0)
        for name in ("bandwidth_ul", "bandwidth_dl", "backhaul_bw", "cpu_ratio"):
            assert getattr(huge, name) <= CONFIG_BOUNDS[name][1]

    def test_identity_factor_is_identity(self):
        config = SliceConfig()
        assert scaled_config(config, 1.0) == config


class TestRunnerLayout:
    def test_run_layout_and_result_schema(self, tmp_path):
        case = small_case()
        runner = EvalRunner(out_dir=tmp_path)
        runner.run_case(case)
        run_dir = tmp_path / "test" / "urllc-control" / "seed=0"
        payload = json.loads((run_dir / "result.json").read_text())
        assert payload["schema"] == "atlas-eval-run/1"
        assert payload["case"] == "test/urllc-control"
        assert payload["seed"] == 0
        assert set(payload["metrics"]) == set(METRIC_NAMES)
        assert payload["executor"]["resolved"] in (
            "serial", "thread", "process", "vectorized", "sharded", "auto",
        )

    def test_events_jsonl_lines_are_parseable_and_complete(self, tmp_path):
        case = small_case()
        EvalRunner(out_dir=tmp_path).run_case(case)
        lines = (
            (tmp_path / "test" / "urllc-control" / "seed=0" / "events.jsonl")
            .read_text()
            .splitlines()
        )
        events = [json.loads(line) for line in lines]
        # two environments x two ladder variants x two measurements
        assert len(events) == 2 * len(case.usage_ladder) * case.measurements
        assert {event["env"] for event in events} == {"sim", "real"}
        assert all(event["kind"] == "measurement" for event in events)

    def test_multislice_events_carry_slice_names(self, tmp_path):
        case = small_case(scenario="mixed-enterprise", measurements=1, usage_ladder=(1.0,))
        EvalRunner(out_dir=tmp_path).run_case(case)
        lines = (
            (tmp_path / "test" / "mixed-enterprise" / "seed=0" / "events.jsonl")
            .read_text()
            .splitlines()
        )
        names = {json.loads(line)["slice"] for line in lines}
        assert names == {w.name for w in get_scenario("mixed-enterprise").slices}

    def test_in_memory_mode_writes_nothing(self, tmp_path):
        runner = EvalRunner()
        result = runner.run_case(small_case())
        assert result.seed_results and not list(tmp_path.iterdir())


class TestRunnerDeterminism:
    def test_same_seed_reproduces_identical_metric_bytes(self):
        case = small_case()
        first = EvalRunner().run_seed(case, 0)
        second = EvalRunner().run_seed(case, 0)
        assert canonical_metrics_bytes(first.metrics) == canonical_metrics_bytes(second.metrics)

    def test_different_seeds_change_the_metrics(self):
        case = small_case()
        runner = EvalRunner()
        a = runner.run_seed(case, 0)
        b = runner.run_seed(case, 7)
        assert canonical_metrics_bytes(a.metrics) != canonical_metrics_bytes(b.metrics)

    def test_latency_bias_shifts_p95_by_its_offset(self):
        case = small_case()
        clean = EvalRunner().run_seed(case, 0)
        biased = EvalRunner(latency_bias_ms=100.0).run_seed(case, 0)
        assert biased.metrics["latency_p95_ms"] == pytest.approx(
            clean.metrics["latency_p95_ms"] + 100.0
        )
        assert biased.latency_bias_ms == 100.0


class TestCrossExecutorIdentity:
    """The satellite contract: identical metrics under every executor kind."""

    EXECUTORS = ("serial", "vectorized", "sharded", "auto")

    @pytest.mark.parametrize("scenario", ["urllc-control", "embb-bursty", "mixed-enterprise"])
    def test_metrics_identical_across_executors(self, scenario):
        case = small_case(scenario=scenario, measurements=1, usage_ladder=(1.0,))
        blobs = {}
        records = {}
        for kind in self.EXECUTORS:
            run = EvalRunner(executor=kind).run_seed(case, 0)
            blobs[kind] = canonical_metrics_bytes(run.metrics)
            records[kind] = run.executor
        baseline = blobs["serial"]
        assert all(blob == baseline for blob in blobs.values()), blobs
        # The report must record which executor produced each run.
        assert records["serial"]["kind"] == "serial"
        assert records["sharded"]["kind"] == "sharded"
        assert records["auto"]["kind"] == "auto"
        assert records["auto"]["resolved"] in ("serial", "vectorized", "sharded")
