"""Tests for the baseline learners: GP-BO, DLDA and VirtualEdge."""

import numpy as np
import pytest

from repro.baselines.base import BaselineIterationRecord, BaselineResult
from repro.baselines.dlda import DLDA, DLDAConfig
from repro.baselines.gp_bo import GPConfigurationOptimizer, GPOptimizerConfig
from repro.baselines.virtualedge import VirtualEdge, VirtualEdgeConfig
from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario

SCENARIO = Scenario(traffic=1, duration_s=8.0)
SLA_DEFAULT = SLA(latency_threshold_ms=300.0, availability=0.9)


def _simulator():
    return NetworkSimulator(scenario=SCENARIO, seed=0)


def _real_network(seed=1):
    return RealNetwork(scenario=SCENARIO, seed=seed)


class TestBaselineResult:
    def test_series_extraction_and_best_feasible(self):
        result = BaselineResult(method="test")
        result.history = [
            BaselineIterationRecord(1, tuple(SliceConfig().to_array()), 0.5, 0.95, True),
            BaselineIterationRecord(2, tuple(SliceConfig().to_array()), 0.3, 0.92, True),
            BaselineIterationRecord(3, tuple(SliceConfig().to_array()), 0.2, 0.5, False),
        ]
        assert np.allclose(result.usages(), [0.5, 0.3, 0.2])
        assert np.allclose(result.qoes(), [0.95, 0.92, 0.5])
        assert result.best_feasible().resource_usage == 0.3
        assert result.sla_violation_rate() == pytest.approx(1 / 3)

    def test_best_feasible_none_when_all_violate(self):
        result = BaselineResult(method="test")
        result.history = [
            BaselineIterationRecord(1, tuple(SliceConfig().to_array()), 0.5, 0.1, False)
        ]
        assert result.best_feasible() is None

    def test_record_round_trip_to_config(self):
        config = SliceConfig(bandwidth_ul=20)
        record = BaselineIterationRecord(1, tuple(config.to_array()), 0.3, 0.9, True)
        assert record.to_slice_config() == config

    def test_empty_result_statistics(self):
        result = BaselineResult(method="empty")
        assert result.sla_violation_rate() == 0.0
        assert result.usages().size == 0


class TestGPConfigurationOptimizer:
    def _run(self, environment, acquisition="ei", iterations=5):
        optimizer = GPConfigurationOptimizer(
            environment=environment,
            sla=SLA_DEFAULT,
            traffic=1,
            config=GPOptimizerConfig(
                iterations=iterations,
                initial_random=2,
                candidate_pool=150,
                acquisition=acquisition,
                measurement_duration_s=8.0,
                seed=0,
            ),
        )
        return optimizer.run()

    def test_runs_against_the_simulator(self):
        result = self._run(_simulator())
        assert result.method == "GP-EI"
        assert len(result.history) == 5
        assert np.all((result.qoes() >= 0) & (result.qoes() <= 1))

    def test_runs_against_the_real_network(self):
        result = self._run(_real_network())
        assert len(result.history) == 5

    @pytest.mark.parametrize("acquisition, name", [("pi", "GP-PI"), ("ucb", "GP-UCB")])
    def test_alternative_acquisitions(self, acquisition, name):
        result = self._run(_simulator(), acquisition=acquisition, iterations=4)
        assert result.method == name
        assert len(result.history) == 4

    def test_initial_config_is_applied_first(self):
        start = SliceConfig(bandwidth_ul=40, bandwidth_dl=40, backhaul_bw=80, cpu_ratio=1.0)
        optimizer = GPConfigurationOptimizer(
            environment=_simulator(),
            sla=SLA_DEFAULT,
            config=GPOptimizerConfig(
                iterations=2, initial_random=1, candidate_pool=100,
                measurement_duration_s=8.0, initial_config=start, seed=0,
            ),
        )
        result = optimizer.run()
        assert result.history[0].to_slice_config() == start

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            GPOptimizerConfig(iterations=0)
        with pytest.raises(ValueError):
            GPOptimizerConfig(acquisition="random")


class TestDLDA:
    def _dlda(self, simulator=None, grid=2):
        return DLDA(
            simulator=simulator if simulator is not None else _simulator(),
            sla=SLA_DEFAULT,
            traffic=1,
            config=DLDAConfig(
                grid_points_per_dim=grid,
                selection_pool=400,
                online_iterations=3,
                teacher_epochs=60,
                student_epochs=15,
                measurement_duration_s=8.0,
                seed=0,
            ),
        )

    def test_offline_dataset_covers_the_grid(self):
        dlda = self._dlda()
        inputs, qoes = dlda.collect_offline_dataset()
        assert inputs.shape == (2**6, 6)
        assert np.all((qoes >= 0) & (qoes <= 1))

    def test_teacher_training_and_selection(self):
        dlda = self._dlda()
        dlda.train_offline()
        config = dlda.best_offline_config()
        assert isinstance(config, SliceConfig)

    def test_selection_prefers_feasible_predictions(self):
        dlda = self._dlda()
        dlda.train_offline()
        chosen = dlda.select_config()
        pool_unit = dlda.space.normalize(dlda.space.sample(500, np.random.default_rng(9)))
        predictions = np.clip(dlda.teacher.predict(pool_unit), 0.0, 1.0)
        chosen_prediction = float(
            np.clip(dlda.teacher.predict(dlda.space.normalize(chosen.to_array())), 0.0, 1.0)[0]
        )
        # The chosen action is either predicted to meet the requirement or is
        # (close to) the best prediction available anywhere in the space.
        assert (
            chosen_prediction >= dlda.sla.availability - 0.05
            or chosen_prediction >= predictions.max() - 0.1
        )

    def test_select_before_training_raises(self):
        with pytest.raises(RuntimeError):
            self._dlda().select_config()

    def test_online_fine_tuning_produces_history(self):
        dlda = self._dlda()
        result = dlda.run_online(_real_network(), iterations=3)
        assert result.method == "DLDA"
        assert len(result.history) == 3
        assert dlda.student is not None

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            DLDAConfig(grid_points_per_dim=1)
        with pytest.raises(ValueError):
            DLDAConfig(selection_pool=5)


class TestVirtualEdge:
    def _run(self, iterations=5):
        learner = VirtualEdge(
            environment=_real_network(),
            sla=SLA_DEFAULT,
            traffic=1,
            config=VirtualEdgeConfig(
                iterations=iterations,
                initial_random=2,
                measurement_duration_s=8.0,
                seed=0,
            ),
        )
        return learner.run()

    def test_runs_and_records_history(self):
        result = self._run()
        assert result.method == "VirtualEdge"
        assert len(result.history) == 5

    def test_configurations_stay_within_bounds(self):
        result = self._run(iterations=6)
        for record in result.history:
            config = record.to_slice_config()
            assert 0 <= config.bandwidth_ul <= 50
            assert 0 <= config.cpu_ratio <= 1

    def test_gradient_step_moves_toward_lower_objective(self):
        learner = VirtualEdge(
            environment=_simulator(),
            sla=SLA_DEFAULT,
            config=VirtualEdgeConfig(iterations=3, initial_random=1, measurement_duration_s=8.0, seed=1),
        )
        learner.run()
        current = np.full(6, 0.5)
        stepped = learner._gradient_step(current)
        assert stepped.shape == (6,)
        assert np.all((stepped >= 0) & (stepped <= 1))

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            VirtualEdgeConfig(iterations=0)
        with pytest.raises(ValueError):
            VirtualEdgeConfig(step_size=0.0)
