"""Tests for the KL-divergence estimators (stage-1 discrepancy measure)."""

import numpy as np
import pytest

from repro.metrics.kl import (
    histogram_kl_divergence,
    jensen_shannon_divergence,
    symmetric_kl_divergence,
)


class TestHistogramKL:
    def test_identical_collections_have_near_zero_divergence(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(100.0, 10.0, size=5000)
        assert histogram_kl_divergence(samples, samples) < 1e-9

    def test_same_distribution_different_samples_small_divergence(self):
        rng = np.random.default_rng(1)
        p = rng.normal(100.0, 10.0, size=5000)
        q = rng.normal(100.0, 10.0, size=5000)
        assert histogram_kl_divergence(p, q) < 0.05

    def test_shifted_distribution_has_larger_divergence(self):
        rng = np.random.default_rng(2)
        p = rng.normal(100.0, 10.0, size=3000)
        q_near = rng.normal(105.0, 10.0, size=3000)
        q_far = rng.normal(160.0, 10.0, size=3000)
        assert histogram_kl_divergence(p, q_far) > histogram_kl_divergence(p, q_near)

    def test_divergence_is_non_negative(self):
        rng = np.random.default_rng(3)
        p = rng.exponential(50.0, size=1000)
        q = rng.normal(200.0, 30.0, size=1000)
        assert histogram_kl_divergence(p, q) >= 0.0

    def test_divergence_is_asymmetric_in_general(self):
        rng = np.random.default_rng(4)
        p = rng.normal(100.0, 5.0, size=2000)
        q = rng.normal(100.0, 40.0, size=2000)
        forward = histogram_kl_divergence(p, q)
        backward = histogram_kl_divergence(q, p)
        assert forward != pytest.approx(backward, rel=0.05)

    def test_nan_and_inf_samples_are_ignored(self):
        p = np.array([100.0, 110.0, 120.0, np.nan, np.inf])
        q = np.array([100.0, 110.0, 120.0])
        value = histogram_kl_divergence(p, q)
        assert np.isfinite(value)

    def test_empty_collection_raises(self):
        with pytest.raises(ValueError):
            histogram_kl_divergence([], [1.0, 2.0])
        with pytest.raises(ValueError):
            histogram_kl_divergence([1.0], [np.nan])

    def test_invalid_bins_and_smoothing_raise(self):
        with pytest.raises(ValueError):
            histogram_kl_divergence([1.0, 2.0], [1.0, 2.0], bins=1)
        with pytest.raises(ValueError):
            histogram_kl_divergence([1.0, 2.0], [1.0, 2.0], smoothing=0.0)

    def test_degenerate_identical_point_masses(self):
        # Both collections are a point mass at the same value; only the
        # Laplace smoothing (spread over different sample counts) separates
        # them, so the divergence must be essentially zero.
        value = histogram_kl_divergence([5.0, 5.0, 5.0], [5.0, 5.0])
        assert value == pytest.approx(0.0, abs=5e-3)

    def test_explicit_support_clips_outliers(self):
        p = np.array([10.0, 20.0, 30.0, 5000.0])
        q = np.array([10.0, 20.0, 30.0])
        bounded = histogram_kl_divergence(p, q, support=(0.0, 100.0))
        unbounded = histogram_kl_divergence(p, q)
        assert bounded <= unbounded + 1e-9

    def test_more_bins_resolve_finer_differences(self):
        rng = np.random.default_rng(5)
        p = rng.normal(100.0, 10.0, size=5000)
        q = rng.normal(103.0, 10.0, size=5000)
        coarse = histogram_kl_divergence(p, q, bins=5)
        fine = histogram_kl_divergence(p, q, bins=40)
        assert fine >= coarse - 0.05


class TestSymmetricAndJS:
    def test_symmetric_kl_is_symmetric(self):
        rng = np.random.default_rng(6)
        p = rng.normal(100.0, 10.0, size=2000)
        q = rng.normal(130.0, 25.0, size=2000)
        assert symmetric_kl_divergence(p, q) == pytest.approx(symmetric_kl_divergence(q, p), rel=1e-9)

    def test_jensen_shannon_is_bounded_by_log2(self):
        rng = np.random.default_rng(7)
        p = rng.normal(0.0, 1.0, size=2000)
        q = rng.normal(1000.0, 1.0, size=2000)
        value = jensen_shannon_divergence(p, q)
        assert 0.0 <= value <= np.log(2.0) + 1e-9

    def test_jensen_shannon_zero_for_identical(self):
        samples = np.linspace(0.0, 100.0, 500)
        assert jensen_shannon_divergence(samples, samples) == pytest.approx(0.0, abs=1e-9)


class TestKLDegenerateInputs:
    """Empty collections raise errors naming the offending side."""

    def test_empty_p_collection_names_p_samples(self):
        with pytest.raises(ValueError, match="p_samples"):
            histogram_kl_divergence([], [1.0, 2.0])

    def test_empty_q_collection_names_q_samples(self):
        with pytest.raises(ValueError, match="q_samples"):
            histogram_kl_divergence([1.0, 2.0], [])

    def test_all_nan_collection_raises_like_empty(self):
        with pytest.raises(ValueError, match="p_samples"):
            symmetric_kl_divergence([np.nan, np.nan], [1.0, 2.0])

    def test_jensen_shannon_empty_collection_raises(self):
        with pytest.raises(ValueError, match="q_samples"):
            jensen_shannon_divergence([1.0], [np.inf])

    def test_identical_degenerate_point_mass_is_zero(self):
        # All samples identical: degenerate support, still defined (zero).
        assert symmetric_kl_divergence([5.0, 5.0], [5.0, 5.0]) == pytest.approx(0.0, abs=1e-6)
