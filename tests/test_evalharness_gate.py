"""The regression gate and the atlas-eval/1 report.

Includes the mutation smoke tests the gate owes its existence to: a gate
that only ever passes proves nothing, so these tests perturb an envelope,
inject a biased latency offset, and break determinism on purpose — and
assert the gate fails each time with an actionable message.
"""

from __future__ import annotations

import json

import pytest

import repro.evalharness.gate as gate_module
from repro.evalharness import (
    REPORT_SCHEMA,
    Envelope,
    EvalCase,
    EvalRunner,
    build_report,
    canonical_results_bytes,
    check_determinism,
    check_envelopes,
    evaluate,
    render_report,
    run_gate,
    write_report,
)
from repro.evalharness.runner import SeedRunResult

WIDE = {
    "latency_p95_ms": Envelope(0.0, 100000.0),
    "sla_violation_rate": Envelope(0.0, 1.0),
    "avg_usage_regret": Envelope(-10.0, 10.0),
    "avg_qoe_regret": Envelope(-10.0, 10.0),
    "sim_real_symmetric_kl": Envelope(0.0, 1000.0),
}


def small_case(**changes) -> EvalCase:
    base = EvalCase(
        group="test",
        scenario="urllc-control",
        seeds=(0,),
        measurements=2,
        duration_s=3.0,
        usage_ladder=(0.9, 1.0),
        envelopes=dict(WIDE),
    )
    return base.replace(**changes) if changes else base


class TestEnvelopeCheck:
    def test_passes_inside_wide_envelopes(self):
        runner = EvalRunner()
        results = runner.run_cases([small_case()])
        assert check_envelopes(results) == []

    def test_mutated_envelope_fails_with_actionable_message(self):
        """Mutation smoke: perturb one expected envelope, the gate must fail."""
        mutated = small_case(
            envelopes={**WIDE, "latency_p95_ms": Envelope(0.0, 0.001)}
        )
        results = EvalRunner().run_cases([mutated])
        failures = check_envelopes(results)
        assert len(failures) == 1
        failure = failures[0]
        assert failure.kind == "envelope"
        assert failure.metric == "latency_p95_ms"
        assert "test/urllc-control" in failure.message
        assert "[0.0, 0.001]" in failure.message

    def test_injected_latency_bias_fails_the_gate(self):
        """Mutation smoke: a biased system must breach calibrated envelopes."""
        clean_runner = EvalRunner()
        case = small_case()
        clean = clean_runner.run_cases([case])[0]
        p95 = clean.metrics["latency_p95_ms"]
        calibrated = case.replace(
            envelopes={**WIDE, "latency_p95_ms": Envelope(p95 * 0.7, p95 * 1.3)}
        )
        assert check_envelopes(EvalRunner().run_cases([calibrated])) == []
        biased_results = EvalRunner(latency_bias_ms=p95).run_cases([calibrated])
        failures = check_envelopes(biased_results)
        assert any(f.metric == "latency_p95_ms" for f in failures)


class TestDeterminismCheck:
    def test_passes_on_a_deterministic_pipeline(self):
        runner = EvalRunner()
        results = runner.run_cases([small_case()])
        assert check_determinism(runner, results) == []

    def test_detects_a_nondeterministic_replay(self, monkeypatch):
        """Mutation smoke: break replay determinism, the gate must notice."""

        class DriftingRunner(EvalRunner):
            def run_seed(self, case, seed):
                result = super().run_seed(case, seed)
                drifted = dict(result.metrics)
                drifted["latency_p95_ms"] += 0.5  # numerics drift on rerun
                return SeedRunResult(
                    case_id=result.case_id,
                    group=result.group,
                    scenario=result.scenario,
                    seed=result.seed,
                    executor=result.executor,
                    metrics=drifted,
                    events=result.events,
                    latency_bias_ms=result.latency_bias_ms,
                )

        runner = EvalRunner()
        results = runner.run_cases([small_case()])
        monkeypatch.setattr(gate_module, "EvalRunner", DriftingRunner)
        failures = check_determinism(runner, results)
        assert len(failures) == 1
        assert failures[0].kind == "determinism"
        assert "no longer deterministic" in failures[0].message


class TestRunGate:
    def test_gate_passes_and_lists_checks(self):
        runner = EvalRunner()
        cases = [small_case()]
        results = runner.run_cases(cases)
        verdict = run_gate(runner, results, cases=cases, determinism=True, coverage=False)
        assert verdict.passed
        assert verdict.checks == ["envelope", "determinism"]
        assert verdict.as_dict()["failures"] == []

    def test_gate_collects_failures_across_checks(self):
        runner = EvalRunner()
        mutated = small_case(envelopes={**WIDE, "sla_violation_rate": Envelope(0.999, 1.0)})
        results = runner.run_cases([mutated])
        verdict = run_gate(runner, results, cases=[mutated], determinism=False, coverage=True)
        assert not verdict.passed
        kinds = {failure.kind for failure in verdict.failures}
        assert "envelope" in kinds
        assert "coverage" in kinds  # a single test case cannot cover the catalog


class TestReport:
    def test_report_schema_and_summary(self):
        runner = EvalRunner()
        cases = [small_case()]
        results = runner.run_cases(cases)
        verdict = run_gate(runner, results, cases=cases, determinism=False, coverage=False)
        report = build_report(results, executor=None, gate=verdict.as_dict())
        assert report["schema"] == REPORT_SCHEMA
        assert report["summary"]["cases"] == 1
        assert report["summary"]["runs"] == 1
        assert report["summary"]["gate_passed"] is True
        entry = report["results"][0]
        assert entry["case"] == "test/urllc-control"
        assert entry["passed"] is True
        assert entry["envelopes"]["latency_p95_ms"]["pass"] is True
        assert report["provenance"]["executor"]["runs"]

    def test_nan_metrics_are_sanitised_to_null(self):
        run = SeedRunResult(
            case_id="test/urllc-control",
            group="test",
            scenario="urllc-control",
            seed=0,
            executor={"kind": "serial", "resolved": "serial"},
            metrics={"latency_p95_ms": float("nan")},
            events=(),
        )
        payload = run.result_payload()
        assert payload["metrics"]["latency_p95_ms"] is None
        json.dumps(payload)  # strict JSON, no NaN tokens

    def test_write_report_is_deterministic(self, tmp_path):
        runner = EvalRunner()
        results = runner.run_cases([small_case()])
        report = build_report(results, gate=None)
        first = write_report(report, tmp_path / "a.json").read_text()
        second = write_report(report, tmp_path / "b.json").read_text()
        assert first == second
        assert first.endswith("\n")
        assert json.loads(first)["schema"] == REPORT_SCHEMA

    def test_canonical_results_bytes_exclude_provenance(self):
        runner = EvalRunner()
        results = runner.run_cases([small_case()])
        report_a = build_report(results, executor="serial", gate=None)
        report_b = build_report(results, executor="sharded", gate=None)
        assert report_a["provenance"] != report_b["provenance"]
        assert canonical_results_bytes(report_a) == canonical_results_bytes(report_b)

    def test_render_report_marks_breaches_and_gate_failures(self):
        runner = EvalRunner()
        mutated = small_case(envelopes={**WIDE, "avg_qoe_regret": Envelope(5.0, 6.0)})
        results = runner.run_cases([mutated])
        verdict = run_gate(runner, results, determinism=False, coverage=False)
        text = render_report(build_report(results, gate=verdict.as_dict()))
        assert "[FAIL] test/urllc-control" in text
        assert "BREACH" in text
        assert "gate: FAIL" in text
        assert "[envelope]" in text

    def test_render_report_passing_gate(self):
        runner = EvalRunner()
        results = runner.run_cases([small_case()])
        verdict = run_gate(runner, results, determinism=False, coverage=False)
        text = render_report(build_report(results, gate=verdict.as_dict()))
        assert "[PASS] test/urllc-control" in text
        assert "gate: PASS" in text


class TestEvaluate:
    def test_explicit_cases_disable_coverage(self):
        report, verdict, results = evaluate(cases=[small_case()], determinism=False)
        assert verdict.passed
        assert "coverage" not in verdict.checks
        assert report["summary"]["cases"] == 1

    def test_seed_override_applies_to_every_case(self):
        _, _, results = evaluate(
            cases=[small_case()], seeds=[3, 4], determinism=False
        )
        assert [run.seed for run in results[0].seed_results] == [3, 4]

    def test_fault_injection_is_recorded_and_fails(self):
        # Calibrate the p95 envelope on a clean run, then inject a 500 ms
        # real-network bias: the shifted tail latency must breach it.
        probe = small_case()
        _, _, probe_results = evaluate(cases=[probe], determinism=False)
        p95 = probe_results[0].metrics["latency_p95_ms"]
        case = probe.replace(
            envelopes={**WIDE, "latency_p95_ms": Envelope(p95 * 0.6, p95 * 1.4)}
        )
        _, clean_verdict, _ = evaluate(cases=[case], determinism=False)
        assert clean_verdict.passed
        report, verdict, _ = evaluate(
            cases=[case], determinism=False, latency_bias_ms=500.0
        )
        assert not verdict.passed
        assert report["provenance"]["latency_bias_ms"] == 500.0
