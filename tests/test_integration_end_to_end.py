"""End-to-end integration tests: the full Atlas workflow on tiny budgets.

These tests tie the whole system together — real-network collection,
parameter search, offline training, online learning — and assert the
high-level properties the paper's evaluation is about:

* the augmented simulator is closer to the real network than the original,
* the offline policy finds a configuration that satisfies the SLA in the
  simulator with far less than full resource usage,
* online learning improves the real-network QoE over blindly replaying the
  offline policy.
"""

import numpy as np
import pytest

from repro.core.atlas import Atlas, AtlasConfig
from repro.core.offline_training import OfflineTrainingConfig
from repro.core.online_learning import OnlineLearningConfig
from repro.core.simulator_learning import ParameterSearchConfig
from repro.metrics.kl import histogram_kl_divergence
from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario


@pytest.fixture(scope="module")
def atlas_run():
    """One full Atlas pipeline run shared by the assertions below."""
    scenario = Scenario(traffic=1, duration_s=12.0)
    simulator = NetworkSimulator(scenario=scenario, seed=0)
    real_network = RealNetwork(scenario=scenario, seed=1)
    config = AtlasConfig(
        sla=SLA(latency_threshold_ms=300.0, availability=0.9),
        traffic=1,
        deployed_config=SliceConfig(bandwidth_ul=10, bandwidth_dl=5, backhaul_bw=10, cpu_ratio=0.8),
        online_collection_runs=2,
        online_collection_duration_s=15.0,
        stage1=ParameterSearchConfig(
            iterations=8, initial_random=3, parallel_queries=3, candidate_pool=400,
            measurement_duration_s=15.0, surrogate_epochs=30, seed=0,
        ),
        stage2=OfflineTrainingConfig(
            iterations=12, initial_random=4, parallel_queries=3, candidate_pool=400,
            measurement_duration_s=15.0, surrogate_epochs=30, seed=0,
        ),
        stage3=OnlineLearningConfig(
            iterations=8, offline_queries_per_step=4, candidate_pool=400,
            measurement_duration_s=15.0, simulator_duration_s=12.0, seed=0,
        ),
    )
    atlas = Atlas(simulator, real_network, config)
    result = atlas.run_all()
    return atlas, result


class TestEndToEnd:
    def test_all_stages_completed(self, atlas_run):
        _, result = atlas_run
        assert result.stage1 is not None
        assert result.stage2 is not None
        assert result.stage3 is not None

    def test_stage1_does_not_increase_discrepancy(self, atlas_run):
        _, result = atlas_run
        assert result.stage1.best_weighted_discrepancy <= (
            result.stage1.original_discrepancy + 1e-9
        )

    def test_augmented_simulator_is_closer_to_reality(self, atlas_run):
        atlas, result = atlas_run
        config = atlas.config.deployed_config
        real = atlas.real_network.collect_latencies(config, traffic=1, duration=20.0, seed=777)
        original = atlas.simulator.collect_latencies(config, traffic=1, duration=20.0, seed=777)
        augmented = atlas.augmented_simulator.collect_latencies(config, traffic=1, duration=20.0, seed=777)
        original_kl = histogram_kl_divergence(real, original)
        augmented_kl = histogram_kl_divergence(real, augmented)
        # The search ran on a tiny budget, so allow slack — but the augmented
        # simulator must not be substantially worse than the original one.
        assert augmented_kl <= original_kl * 1.3

    def test_offline_policy_is_resource_efficient_in_simulator(self, atlas_run):
        _, result = atlas_run
        policy = result.offline_policy
        assert policy.best_usage < 0.66  # far below the full allocation
        assert policy.best_qoe >= 0.6

    def test_online_learning_raises_real_qoe_over_time(self, atlas_run):
        _, result = atlas_run
        qoes = result.stage3.qoes()
        first_half = qoes[: len(qoes) // 2].mean()
        second_half = qoes[len(qoes) // 2:].mean()
        assert second_half >= first_half - 0.1

    def test_online_policy_predicts_qoe_with_residual(self, atlas_run):
        _, result = atlas_run
        policy = result.stage3.policy
        predictions = policy.predict_qoe(np.full((5, 6), 0.5))
        assert np.all((predictions >= 0.0) & (predictions <= 1.0))

    def test_regret_metrics_are_finite(self, atlas_run):
        _, result = atlas_run
        assert np.isfinite(result.stage3.average_usage_regret())
        assert np.isfinite(result.stage3.average_qoe_regret())

    def test_real_network_history_logged_every_online_iteration(self, atlas_run):
        atlas, result = atlas_run
        # D_r collection (2 runs) + online iterations are all routed through
        # the domain managers.
        assert len(atlas.real_network.applied_history) >= 2 + len(result.stage3.history)
