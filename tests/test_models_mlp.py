"""Tests for the deterministic MLP regressor (DLDA's teacher/student model)."""

import numpy as np
import pytest

from repro.models.mlp import MLPRegressor, relu, relu_grad


class TestActivations:
    def test_relu_clips_negative_values(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0]))

    def test_relu_grad_is_indicator(self):
        grad = relu_grad(np.array([-1.0, 0.5]))
        assert np.array_equal(grad, np.array([0.0, 1.0]))


class TestMLPRegressor:
    def test_fits_a_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(300, 2))
        y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + 1.0
        model = MLPRegressor(input_dim=2, hidden_layers=(32,), seed=0)
        model.fit(x, y, epochs=300)
        prediction = model.predict(x)
        error = np.mean((prediction - y) ** 2)
        assert error < 0.05

    def test_fits_a_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(400, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2
        model = MLPRegressor(input_dim=2, hidden_layers=(48, 48), seed=1)
        model.fit(x, y, epochs=400)
        prediction = model.predict(x)
        assert np.corrcoef(prediction, y)[0, 1] > 0.95

    def test_predict_before_fit_raises(self):
        model = MLPRegressor(input_dim=2)
        with pytest.raises(RuntimeError):
            model.predict([[0.0, 0.0]])

    def test_input_dimension_mismatch_raises(self):
        model = MLPRegressor(input_dim=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 2)), np.zeros(10))

    def test_invalid_constructor_arguments_raise(self):
        with pytest.raises(ValueError):
            MLPRegressor(input_dim=0)
        with pytest.raises(ValueError):
            MLPRegressor(input_dim=2, output_dim=0)

    def test_loss_history_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(200, 1))
        y = 2.0 * x[:, 0]
        model = MLPRegressor(input_dim=1, hidden_layers=(16,), seed=2)
        model.fit(x, y, epochs=100)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_clone_copies_weights_and_predictions(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(100, 2))
        y = x.sum(axis=1)
        model = MLPRegressor(input_dim=2, hidden_layers=(16,), seed=3)
        model.fit(x, y, epochs=100)
        twin = model.clone()
        assert np.allclose(model.predict(x), twin.predict(x))

    def test_clone_is_independent_after_further_training(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(100, 2))
        y = x.sum(axis=1)
        model = MLPRegressor(input_dim=2, hidden_layers=(16,), seed=4)
        model.fit(x, y, epochs=50)
        twin = model.clone()
        twin.fit(x, -y, epochs=200, reset_scalers=False)
        assert not np.allclose(model.predict(x), twin.predict(x))

    def test_continue_training_without_resetting_scalers(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, size=(100, 1))
        y = x[:, 0]
        model = MLPRegressor(input_dim=1, hidden_layers=(16,), seed=5)
        model.fit(x, y, epochs=50)
        before_mean = model._x_scaler.mean_.copy()
        model.fit(x[:10], y[:10], epochs=10, reset_scalers=False)
        assert np.allclose(model._x_scaler.mean_, before_mean)

    def test_multi_output_regression_shape(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(-1, 1, size=(150, 2))
        y = np.column_stack([x[:, 0], -x[:, 1]])
        model = MLPRegressor(input_dim=2, output_dim=2, hidden_layers=(24,), seed=6)
        model.fit(x, y, epochs=150)
        assert model.predict(x).shape == (150, 2)
