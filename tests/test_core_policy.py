"""Tests for the offline/online policy containers and feature construction."""

import numpy as np
import pytest

from repro.core.policy import OfflinePolicy, OnlinePolicy, build_features
from repro.models.bnn import BayesianNeuralNetwork
from repro.models.gp import GaussianProcessRegressor
from repro.prototype.slice_manager import SLA
from repro.sim.config import SliceConfig


@pytest.fixture(scope="module")
def offline_policy():
    """A small offline policy trained on a synthetic QoE function."""
    sla = SLA(latency_threshold_ms=300.0, availability=0.9)
    state = (1.0, 1.0, 0.0)
    rng = np.random.default_rng(0)
    actions = rng.uniform(0.0, 1.0, size=(200, 6))
    # Synthetic QoE grows with mean resource allocation.
    qoes = np.clip(actions.mean(axis=1) * 1.4, 0.0, 1.0)
    model = BayesianNeuralNetwork(input_dim=3 + 1 + 6, hidden_layers=(32,), seed=0)
    model.fit(build_features(state, sla, actions), qoes, epochs=150)
    return OfflinePolicy(
        qoe_model=model,
        sla=sla,
        state=state,
        best_config=SliceConfig(bandwidth_ul=9, bandwidth_dl=3, backhaul_bw=6.2, cpu_ratio=0.8),
        best_qoe=0.9,
        best_usage=0.2,
        multiplier=0.8,
    )


class TestBuildFeatures:
    def test_feature_layout(self):
        sla = SLA(latency_threshold_ms=500.0)
        features = build_features((2.0, 1.0, 0.0), sla, np.zeros((3, 6)))
        assert features.shape == (3, 3 + 1 + 6)
        assert np.allclose(features[:, :3], [2.0, 1.0, 0.0])
        assert np.allclose(features[:, 3], 0.5)

    def test_single_action_is_promoted_to_batch(self):
        features = build_features((1.0, 1.0, 0.0), SLA(), np.zeros(6))
        assert features.shape == (1, 10)

    def test_threshold_is_normalised(self):
        base = build_features((1.0, 1.0, 0.0), SLA(latency_threshold_ms=300.0), np.zeros(6))
        loose = build_features((1.0, 1.0, 0.0), SLA(latency_threshold_ms=600.0), np.zeros(6))
        assert loose[0, 3] == pytest.approx(2.0 * base[0, 3])


class TestOfflinePolicy:
    def test_predictions_are_clipped_to_unit_interval(self, offline_policy):
        actions = np.random.default_rng(1).uniform(0, 1, size=(50, 6))
        qoe = offline_policy.predict_qoe(actions)
        assert np.all((qoe >= 0.0) & (qoe <= 1.0))

    def test_predictions_track_the_learned_trend(self, offline_policy):
        low = offline_policy.predict_qoe(np.full((1, 6), 0.1))[0]
        high = offline_policy.predict_qoe(np.full((1, 6), 0.9))[0]
        assert high > low

    def test_sample_qoe_varies_between_draws(self, offline_policy):
        actions = np.random.default_rng(2).uniform(0, 1, size=(30, 6))
        first = offline_policy.sample_qoe(actions)
        second = offline_policy.sample_qoe(actions)
        assert not np.allclose(first, second)

    def test_predict_with_uncertainty_shapes(self, offline_policy):
        actions = np.random.default_rng(3).uniform(0, 1, size=(10, 6))
        mean, std = offline_policy.predict_qoe_with_uncertainty(actions, n_samples=8)
        assert mean.shape == (10,) and std.shape == (10,)
        assert np.all(std >= 0)


class TestOnlinePolicy:
    def test_residual_shifts_offline_estimate(self, offline_policy):
        policy = OnlinePolicy(offline=offline_policy, residual_model=GaussianProcessRegressor(seed=0))
        actions = np.random.default_rng(4).uniform(0, 1, size=(20, 6))
        before = policy.predict_qoe(actions)
        # Observe a consistently negative sim-to-real difference.
        for action in actions[:6]:
            policy.record_observation(action, -0.3)
        after = policy.predict_qoe(actions)
        assert after.mean() < before.mean()

    def test_predictions_remain_in_unit_interval(self, offline_policy):
        policy = OnlinePolicy(offline=offline_policy, residual_model=GaussianProcessRegressor(seed=1))
        for action in np.random.default_rng(5).uniform(0, 1, size=(5, 6)):
            policy.record_observation(action, -0.9)
        qoe = policy.predict_qoe(np.random.default_rng(6).uniform(0, 1, size=(40, 6)))
        assert np.all((qoe >= 0.0) & (qoe <= 1.0))

    def test_predict_with_std_returns_residual_uncertainty(self, offline_policy):
        policy = OnlinePolicy(offline=offline_policy, residual_model=GaussianProcessRegressor(seed=2))
        qoe, std = policy.predict_qoe(np.zeros((3, 6)), return_std=True)
        assert qoe.shape == (3,) and std.shape == (3,)

    def test_predict_residual_before_observations_is_prior(self, offline_policy):
        policy = OnlinePolicy(offline=offline_policy, residual_model=GaussianProcessRegressor(seed=3))
        residual = policy.predict_residual(np.zeros((2, 6)))
        assert np.allclose(residual, 0.0)

    def test_observations_accumulate(self, offline_policy):
        policy = OnlinePolicy(offline=offline_policy, residual_model=GaussianProcessRegressor(seed=4))
        policy.record_observation(np.zeros(6), -0.1)
        policy.record_observation(np.ones(6), -0.2)
        assert len(policy.observations) == 2
