"""Shared fixtures for the Atlas reproduction test suite.

Learning components are configured with deliberately tiny budgets so the full
suite runs in a couple of minutes; the benchmarks exercise the realistic
budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def scenario() -> Scenario:
    """Short-duration single-user scenario."""
    return Scenario(traffic=1, duration_s=10.0)


@pytest.fixture
def simulator(scenario) -> NetworkSimulator:
    """Original simulator with a short measurement duration."""
    return NetworkSimulator(scenario=scenario, seed=0)


@pytest.fixture
def real_network(scenario) -> RealNetwork:
    """Real-network substitute with a short measurement duration."""
    return RealNetwork(scenario=scenario, seed=1)


@pytest.fixture
def default_config() -> SliceConfig:
    """Mid-range slice configuration used across tests."""
    return SliceConfig(
        bandwidth_ul=10.0,
        bandwidth_dl=5.0,
        mcs_offset_ul=0.0,
        mcs_offset_dl=0.0,
        backhaul_bw=10.0,
        cpu_ratio=0.8,
    )


@pytest.fixture
def sla() -> SLA:
    """The paper's default SLA (300 ms, 0.9 availability)."""
    return SLA(latency_threshold_ms=300.0, availability=0.9)
