"""Crash recovery: SIGKILL a writer mid-``put``, reopen, reproduce bytes.

The helper process (``service_crash_helper.py``) writes store entries in a
tight loop when it is killed, so the kill lands either between puts or mid
``put`` — both must leave the store reopenable with zero corruption.  A
deliberately torn temp file named with the helper's pid stands in for the
worst-case mid-write state deterministically.
"""

import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine.cache import MeasurementCache
from repro.engine.engine import MeasurementEngine
from repro.engine.replay import VectorReplayEnvironment
from repro.scenarios import get_scenario
from repro.service.store import ResultStore

_HELPER = Path(__file__).resolve().parent / "service_crash_helper.py"
_REPO_ROOT = _HELPER.parent.parent


def _kill_helper_mid_put(store_dir: Path) -> None:
    proc = subprocess.Popen(
        [sys.executable, str(_HELPER), str(store_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=_REPO_ROOT,
        env={"PYTHONPATH": "src"},
    )
    try:
        line = proc.stdout.readline()
        assert line.strip() == "READY", (line, proc.stderr.read() if proc.poll() else "")
        time.sleep(0.5)  # let it get deep into the put loop
    finally:
        proc.kill()
        proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL


def test_sigkill_mid_put_reopens_clean_and_reproduces_bytes(tmp_path):
    store_dir = tmp_path / "store"
    _kill_helper_mid_put(store_dir)

    # The helper planted one torn temp file and may have left a real one.
    debris = list((store_dir / "tmp").iterdir())
    assert debris, "helper failed to leave its torn temp file"

    store = ResultStore(store_dir, reap=True)
    assert store.stats.reaped_temp >= 1
    assert list((store_dir / "tmp").iterdir()) == [], "dead writer's temp files not reaped"

    outcome = store.verify()
    assert outcome["corrupt"] == [], "published blobs must survive a writer SIGKILL"
    assert outcome["ok"] == outcome["checked"] >= 1

    # Recover the known entry through the store (zero recompute) and rerun
    # it fresh; the VectorReplayEnvironment pin makes both byte-identical.
    workload = get_scenario("frame-offloading").primary
    cache = MeasurementCache(store=store)
    warm = MeasurementEngine(
        VectorReplayEnvironment(workload.make_simulator(seed=0)),
        executor="auto",
        cache=cache,
    )
    recovered = warm.run(workload.deployed_config, traffic=3, duration=2.0, seed=1234)
    assert warm.executed_requests == 0, "known entry should be served from the store"
    assert cache.stats.store_hits == 1

    fresh = MeasurementEngine(
        VectorReplayEnvironment(workload.make_simulator(seed=0)),
        executor="vectorized",
        cache=False,
    )
    recomputed = fresh.run(workload.deployed_config, traffic=3, duration=2.0, seed=1234)
    assert recovered.latencies_ms.tobytes() == recomputed.latencies_ms.tobytes()
    assert recovered.stage_breakdown_ms == recomputed.stage_breakdown_ms


def test_reap_keeps_live_writers_temp_files(tmp_path):
    store_dir = tmp_path / "store"
    store = ResultStore(store_dir)
    import os

    own = store_dir / "tmp" / f"{'1' * 64}.{os.getpid()}.0.part"
    own.write_bytes(b"half-written by a live writer (this process)")
    dead = store_dir / "tmp" / f"{'2' * 64}.999999999.0.part"
    dead.write_bytes(b"debris from a pid that cannot exist")
    unparsable = store_dir / "tmp" / "garbage-name.part"
    unparsable.write_bytes(b"no pid in the name: always debris")
    reaped = store.reap_temp()
    assert reaped == 2
    assert own.exists()
    assert not dead.exists()
    assert not unparsable.exists()
