"""Tests for the online-learning regret metrics (Eqs. 10–11)."""

import numpy as np
import pytest

from repro.metrics.regret import (
    RegretTracker,
    average_qoe_regret,
    average_usage_regret,
    cumulative_qoe_regret,
    cumulative_usage_regret,
)


class TestCumulativeRegrets:
    def test_usage_regret_accumulates_excess_usage(self):
        regret = cumulative_usage_regret([0.3, 0.4, 0.5], optimal_usage=0.2)
        assert regret == pytest.approx([0.1, 0.3, 0.6])

    def test_usage_regret_can_be_negative(self):
        regret = cumulative_usage_regret([0.1], optimal_usage=0.2)
        assert regret[0] == pytest.approx(-0.1)

    def test_qoe_regret_counts_only_shortfalls(self):
        regret = cumulative_qoe_regret([0.8, 0.95, 0.7], optimal_qoe=0.9)
        assert regret == pytest.approx([0.1, 0.1, 0.3])

    def test_qoe_regret_is_monotone_non_decreasing(self):
        rng = np.random.default_rng(0)
        qoes = rng.uniform(0, 1, size=100)
        regret = cumulative_qoe_regret(qoes, optimal_qoe=0.9)
        assert np.all(np.diff(regret) >= -1e-12)

    def test_empty_series_give_empty_arrays(self):
        assert cumulative_usage_regret([], 0.2).size == 0
        assert cumulative_qoe_regret([], 0.9).size == 0

    def test_average_regrets_match_cumulative(self):
        usages = [0.3, 0.5, 0.4]
        qoes = [0.85, 0.95, 0.6]
        assert average_usage_regret(usages, 0.2) == pytest.approx(
            cumulative_usage_regret(usages, 0.2)[-1] / 3
        )
        assert average_qoe_regret(qoes, 0.9) == pytest.approx(
            cumulative_qoe_regret(qoes, 0.9)[-1] / 3
        )

    def test_average_regret_of_empty_series_is_zero(self):
        assert average_usage_regret([], 0.2) == 0.0
        assert average_qoe_regret([], 0.9) == 0.0


class TestRegretTracker:
    def test_record_and_len(self):
        tracker = RegretTracker()
        tracker.record(0.3, 0.9)
        tracker.record(0.4, 0.8)
        assert len(tracker) == 2

    def test_set_optimum_prefers_feasible_minimum_usage(self):
        tracker = RegretTracker(qoe_requirement=0.9)
        tracker.record(0.2, 0.5)   # infeasible but cheap
        tracker.record(0.4, 0.95)  # feasible
        tracker.record(0.6, 0.99)  # feasible but expensive
        tracker.set_optimum_from_best()
        assert tracker.optimal_usage == pytest.approx(0.4)
        assert tracker.optimal_qoe == pytest.approx(0.95)

    def test_set_optimum_falls_back_to_best_qoe_when_nothing_feasible(self):
        tracker = RegretTracker(qoe_requirement=0.9)
        tracker.record(0.2, 0.5)
        tracker.record(0.3, 0.7)
        tracker.set_optimum_from_best()
        assert tracker.optimal_qoe == pytest.approx(0.7)

    def test_set_optimum_without_requirement_uses_global_minimum_usage(self):
        tracker = RegretTracker()
        tracker.record(0.5, 0.3)
        tracker.record(0.2, 0.1)
        tracker.set_optimum_from_best()
        assert tracker.optimal_usage == pytest.approx(0.2)

    def test_set_optimum_on_empty_tracker_raises(self):
        with pytest.raises(ValueError):
            RegretTracker().set_optimum_from_best()

    def test_regret_series_lengths_match_records(self):
        tracker = RegretTracker(optimal_usage=0.2, optimal_qoe=0.9)
        for _ in range(5):
            tracker.record(0.3, 0.8)
        assert len(tracker.usage_regret()) == 5
        assert len(tracker.qoe_regret()) == 5

    def test_average_regrets_are_scalars(self):
        tracker = RegretTracker(optimal_usage=0.2, optimal_qoe=0.9)
        tracker.record(0.3, 0.8)
        assert tracker.average_usage_regret() == pytest.approx(0.1)
        assert tracker.average_qoe_regret() == pytest.approx(0.1)


class TestRegretDegenerateInputs:
    """Zero-optimal baselines and non-finite records have defined behaviour."""

    def test_zero_optimal_baseline_is_defined(self):
        usages = [0.2, 0.4]
        assert average_usage_regret(usages, optimal_usage=0.0) == pytest.approx(0.3)
        assert cumulative_usage_regret(usages, optimal_usage=0.0).tolist() == [
            pytest.approx(0.2),
            pytest.approx(0.6),
        ]

    def test_empty_series_average_regret_is_zero(self):
        assert average_usage_regret([], optimal_usage=0.0) == 0.0
        assert average_qoe_regret([], optimal_qoe=1.0) == 0.0

    def test_empty_series_cumulative_regret_is_empty(self):
        assert cumulative_usage_regret([], optimal_usage=0.5).size == 0
        assert cumulative_qoe_regret([], optimal_qoe=1.0).size == 0

    def test_set_optimum_skips_non_finite_records(self):
        tracker = RegretTracker()
        tracker.record(float("nan"), 0.9)   # crashed measurement: never optimal
        tracker.record(0.1, float("inf"))   # corrupt QoE: never optimal
        tracker.record(0.4, 0.8)
        tracker.set_optimum_from_best()
        assert tracker.optimal_usage == pytest.approx(0.4)
        assert tracker.optimal_qoe == pytest.approx(0.8)

    def test_set_optimum_fallback_ignores_non_finite_qoe(self):
        tracker = RegretTracker(qoe_requirement=0.99)  # nothing feasible
        tracker.record(0.2, float("nan"))
        tracker.record(0.3, 0.5)
        tracker.set_optimum_from_best()
        assert tracker.optimal_qoe == pytest.approx(0.5)

    def test_set_optimum_with_only_non_finite_records_raises(self):
        tracker = RegretTracker()
        tracker.record(float("nan"), float("nan"))
        with pytest.raises(ValueError, match="non-finite"):
            tracker.set_optimum_from_best()
