"""Tests for the sharded parallel-vectorized executor and adaptive selection.

Four contracts are pinned here:

* **Shard equivalence** — a sharded batch is *byte-identical* to the
  whole-batch vectorized pass, on every catalog scenario (the per-lane
  seed-stream slicing contract of :mod:`repro.sim.batch`).
* **Shard-count determinism** — results do not depend on how many shards
  the batch is split into (1, 2, 3, or one per request).
* **Cache composition** — partial cache hits shrink the dispatched shards,
  and fully-cached batches never touch (or spawn) a process pool; sharded
  and vectorized results share one cache family and serve each other.
* **Adaptive selection** — :func:`choose_executor` and the ``auto`` kind
  pick serial/vectorized for tiny batches and sharded/process for large
  batches on multi-core machines, and the persistent worker pools are
  reused across batches and engines rather than respawned.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    MeasurementCache,
    MeasurementEngine,
    MeasurementRequest,
    choose_executor,
    pool_diagnostics,
    shutdown_worker_pools,
)
from repro.engine import executors as executors_module
from repro.engine.executors import AutoExecutor, ShardedExecutor
from repro.scenarios import list_scenarios
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario

DURATION = 6.0


def _requests(config, n=6, duration=DURATION, base_seed=0):
    return [
        MeasurementRequest(config=config, traffic=1, duration=duration, seed=base_seed + seed)
        for seed in range(n)
    ]


def _results_identical(a, b) -> bool:
    return (
        np.array_equal(a.latencies_ms, b.latencies_ms)
        and a.frames_generated == b.frames_generated
        and a.frames_completed == b.frames_completed
        and a.duration_s == b.duration_s
        and a.config == b.config
        and a.traffic == b.traffic
        and a.ul_throughput_mbps == b.ul_throughput_mbps
        and a.dl_throughput_mbps == b.dl_throughput_mbps
        and a.ul_packet_error_rate == b.ul_packet_error_rate
        and a.dl_packet_error_rate == b.dl_packet_error_rate
        and a.ping_delay_ms == b.ping_delay_ms
        and a.stage_breakdown_ms == b.stage_breakdown_ms
    )


def _sharded_engine(environment, shards, max_workers=None, cache=False):
    """An engine whose sharded executor is forced to use exactly ``shards``."""
    engine = MeasurementEngine(
        environment,
        executor="sharded",
        max_workers=max_workers if max_workers is not None else max(1, shards),
        cache=cache,
    )
    engine.executor.shards = shards
    return engine


class TestShardedEquivalence:
    @pytest.mark.parametrize(
        "spec", list_scenarios(), ids=lambda spec: spec.name
    )
    def test_byte_identical_to_vectorized_on_every_catalog_scenario(self, spec):
        simulator = spec.primary.make_simulator(seed=3)
        config = spec.primary.deployed_config
        requests = [
            MeasurementRequest(config=config, duration=DURATION, seed=seed) for seed in range(6)
        ]
        vectorized = MeasurementEngine(simulator, executor="vectorized", cache=False)
        sharded = _sharded_engine(simulator, shards=3)
        for a, b in zip(vectorized.run_batch(requests), sharded.run_batch(requests)):
            assert _results_identical(a, b)

    def test_request_overrides_cross_the_shard_boundary(self, simulator, default_config):
        # traffic/duration/scenario overrides resolve inside the worker's
        # vectorized pass exactly as they do in the whole-batch pass.
        other = Scenario(traffic=2, duration_s=DURATION)
        requests = [
            MeasurementRequest(config=default_config, traffic=1, duration=DURATION, seed=1),
            MeasurementRequest(config=default_config, traffic=2, duration=DURATION, seed=2),
            MeasurementRequest(config=default_config, duration=DURATION / 2, seed=3),
            MeasurementRequest(config=default_config, duration=DURATION, seed=4, scenario=other),
        ]
        vectorized = MeasurementEngine(simulator, executor="vectorized", cache=False)
        sharded = _sharded_engine(simulator, shards=2)
        for a, b in zip(vectorized.run_batch(requests), sharded.run_batch(requests)):
            assert _results_identical(a, b)

    def test_real_network_batches_shard_through_prepare_batch(self, default_config):
        from repro.prototype.testbed import RealNetwork

        scenario = Scenario(traffic=1, duration_s=10.0)
        requests = _requests(default_config)
        vectorized = MeasurementEngine(
            RealNetwork(scenario=scenario, seed=1), executor="vectorized", cache=False
        )
        real = RealNetwork(scenario=scenario, seed=1)
        sharded = _sharded_engine(real, shards=3)
        for a, b in zip(vectorized.run_batch(requests), sharded.run_batch(requests)):
            assert _results_identical(a, b)
        # Domain-manager history is still recorded in the parent process.
        assert len(real.applied_history) == len(requests)


class TestShardCountDeterminism:
    def test_any_shard_count_yields_identical_results(self, simulator, default_config):
        requests = _requests(default_config, n=7)
        reference = _sharded_engine(simulator, shards=1).run_batch(requests)
        for shards in (2, 3, len(requests)):
            results = _sharded_engine(simulator, shards=shards).run_batch(requests)
            for a, b in zip(reference, results):
                assert _results_identical(a, b)

    def test_single_shard_runs_inline_without_pool(self, simulator, default_config, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - assertion helper
            raise AssertionError("single-shard batches must not touch the process pool")

        monkeypatch.setattr(executors_module, "_dispatch_to_pool", no_pool)
        engine = _sharded_engine(simulator, shards=1)
        engine.run_batch(_requests(default_config, n=4))
        assert engine.executor.last_shards == 1

    def test_plan_degenerates_on_single_core(self, monkeypatch):
        monkeypatch.setattr(executors_module, "available_parallelism", lambda: 1)
        assert ShardedExecutor(max_workers=4).plan_shards(64) == 1

    def test_plan_scales_with_cores_and_lane_floor(self, monkeypatch):
        monkeypatch.setattr(executors_module, "available_parallelism", lambda: 8)
        executor = ShardedExecutor(max_workers=4)
        assert executor.plan_shards(64) == 4  # capped by max_workers
        assert executor.plan_shards(8) == 2  # lane floor: >= 4 lanes per shard
        assert executor.plan_shards(3) == 1  # too small to amortise dispatch


class TestShardedCacheComposition:
    def test_partial_hits_shrink_the_dispatched_shards(self, simulator, default_config):
        cache = MeasurementCache()
        engine = _sharded_engine(simulator, shards=2, cache=cache)
        requests = _requests(default_config, n=8)
        engine.run_batch(requests[:4])  # prime half the batch
        dispatched: list[int] = []
        original = engine.executor.map_requests

        def recording(environment, pending):
            pending = list(pending)
            dispatched.append(len(pending))
            return original(environment, pending)

        engine.executor.map_requests = recording
        results = engine.run_batch(requests)
        assert dispatched == [4]  # only the misses reached the executor
        assert cache.stats.hits == 4
        assert engine.executed_requests == 8
        fresh = _sharded_engine(simulator, shards=2).run_batch(requests)
        for a, b in zip(results, fresh):
            assert _results_identical(a, b)

    def test_sharded_and_vectorized_share_one_cache_family(self, simulator, default_config):
        cache = MeasurementCache()
        requests = _requests(default_config, n=4)
        _sharded_engine(simulator, shards=2, cache=cache).run_batch(requests)
        assert cache.stats.misses == 4
        vectorized = MeasurementEngine(simulator, executor="vectorized", cache=cache)
        vectorized.run_batch(requests)
        assert cache.stats.hits == 4  # every request served from the sharded entries

    @pytest.mark.parametrize("kind", ["process", "sharded"])
    def test_fully_cached_batches_never_touch_the_pool(
        self, simulator, default_config, kind, monkeypatch
    ):
        cache = MeasurementCache()
        requests = _requests(default_config, n=4)
        # Prime through an in-process executor of the same numerics family.
        primer = "serial" if kind == "process" else "vectorized"
        MeasurementEngine(simulator, executor=primer, cache=cache).run_batch(requests)

        def no_pool(*args, **kwargs):  # pragma: no cover - assertion helper
            raise AssertionError("fully-cached batches must not touch the process pool")

        monkeypatch.setattr(executors_module, "_acquire_process_pool", no_pool)
        engine = MeasurementEngine(simulator, executor=kind, max_workers=2, cache=cache)
        if kind == "sharded":
            engine.executor.shards = 2
        results = engine.run_batch(requests)
        assert len(results) == len(requests)
        assert engine.executed_requests == 0

    def test_empty_and_single_request_fast_paths(self, simulator, default_config, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - assertion helper
            raise AssertionError("empty/single batches must not touch the process pool")

        monkeypatch.setattr(executors_module, "_acquire_process_pool", no_pool)
        for kind in ("process", "sharded"):
            engine = MeasurementEngine(simulator, executor=kind, max_workers=2, cache=False)
            assert engine.run_batch([]) == []
            [result] = engine.run_batch(_requests(default_config, n=1))
            assert result.latencies_ms.size > 0


class TestAdaptiveSelection:
    def test_policy_table(self, simulator):
        scalar_only = object()
        # vector-capable environments
        assert choose_executor(1, cores=8, environment=simulator) == "vectorized"
        assert choose_executor(7, cores=8, environment=simulator) == "vectorized"
        assert choose_executor(8, cores=8, environment=simulator) == "sharded"
        assert choose_executor(256, cores=1, environment=simulator) == "vectorized"
        # scalar-only environments
        assert choose_executor(2, cores=8, environment=scalar_only) == "serial"
        assert choose_executor(4, cores=8, environment=scalar_only) == "process"
        assert choose_executor(64, cores=1, environment=scalar_only) == "serial"
        # no environment: assume vector-capable
        assert choose_executor(16, cores=4) == "sharded"

    def test_auto_picks_serial_for_tiny_and_sharded_for_large(
        self, simulator, default_config, monkeypatch
    ):
        monkeypatch.setattr(executors_module, "available_parallelism", lambda: 4)
        engine = MeasurementEngine(simulator, executor="auto", max_workers=4, cache=False)
        engine.executor.delegate("sharded").shards = 2  # force the pool on any host
        engine.run_batch(_requests(default_config, n=2))
        assert engine.executor.last_choice == "vectorized"
        engine.run_batch(_requests(default_config, n=8, base_seed=50))
        assert engine.executor.last_choice == "sharded"

        class ScalarOnly:
            scenario = Scenario()

            def __init__(self, inner):
                self._inner = inner

            def run(self, config, traffic=None, duration=None, seed=None):
                return self._inner.run(config, traffic=traffic, duration=duration, seed=seed)

            def collect_latencies(self, config, **kwargs):
                return self._inner.collect_latencies(config, **kwargs)

            def fingerprint(self):
                return ("scalar-only",) + self._inner.fingerprint()

        scalar_engine = MeasurementEngine(
            ScalarOnly(simulator), executor="auto", max_workers=4, cache=False
        )
        scalar_engine.run_batch(_requests(default_config, n=2, base_seed=90))
        assert scalar_engine.executor.last_choice == "serial"

    def test_auto_results_match_vectorized_family(self, simulator, default_config):
        cache = MeasurementCache()
        requests = _requests(default_config, n=4)
        MeasurementEngine(simulator, executor="vectorized", cache=cache).run_batch(requests)
        auto = MeasurementEngine(simulator, executor="auto", cache=cache)
        auto.run_batch(requests)
        assert cache.stats.hits == 4  # auto shares the vectorized family

    def test_auto_numerics_depends_on_environment_only(self, simulator):
        executor = AutoExecutor(max_workers=2)
        assert executor.numerics(simulator) == "vectorized"
        assert executor.numerics(object()) == "scalar"

    def test_default_engine_kind_is_auto(self, simulator, monkeypatch):
        monkeypatch.delenv("ATLAS_ENGINE_EXECUTOR", raising=False)
        assert MeasurementEngine(simulator, cache=False).executor_kind == "auto"


class TestPersistentPools:
    def test_pools_survive_batches_engines_and_shutdown(self, default_config):
        shutdown_worker_pools()
        scenario = Scenario(traffic=1, duration_s=10.0)
        simulator = NetworkSimulator(scenario=scenario, seed=7)
        created_before = pool_diagnostics()["pools_created"]
        engine = _sharded_engine(simulator, shards=2, max_workers=2)
        engine.run_batch(_requests(default_config, n=4))
        engine.run_batch(_requests(default_config, n=4, base_seed=100))
        engine.shutdown()  # engine-level shutdown must leave the pool warm
        # A different engine (and executor kind) with the same worker count
        # and an equal-content environment reuses the very same pool.
        process = MeasurementEngine(
            NetworkSimulator(scenario=scenario, seed=7),
            executor="process",
            max_workers=2,
            cache=False,
        )
        process.run_batch(_requests(default_config, n=4, base_seed=200))
        diagnostics = pool_diagnostics()
        assert diagnostics["pools_created"] == created_before + 1
        assert diagnostics["live_pools"] >= 1
        shutdown_worker_pools()
        assert pool_diagnostics()["live_pools"] == 0

    def test_environment_change_reinitializes_the_pool_once(self, default_config):
        shutdown_worker_pools()
        scenario = Scenario(traffic=1, duration_s=10.0)
        first = NetworkSimulator(scenario=scenario, seed=1)
        second = NetworkSimulator(scenario=scenario, seed=2)
        serial = MeasurementEngine(second, executor="serial", cache=False)
        expected = serial.run_batch(_requests(default_config, n=4))
        before = pool_diagnostics()["pools_reinitialized"]
        MeasurementEngine(first, executor="process", max_workers=2, cache=False).run_batch(
            _requests(default_config, n=4)
        )
        engine = MeasurementEngine(second, executor="process", max_workers=2, cache=False)
        results = engine.run_batch(_requests(default_config, n=4))
        assert pool_diagnostics()["pools_reinitialized"] == before + 1
        # The re-initialised workers hold the *new* environment: results are
        # byte-identical to serial execution against it.
        for a, b in zip(expected, results):
            assert _results_identical(a, b)
        shutdown_worker_pools()

    def test_process_executor_still_byte_identical_after_initializer_move(
        self, simulator, default_config
    ):
        requests = _requests(default_config, n=5)
        serial = MeasurementEngine(simulator, executor="serial", cache=False).run_batch(requests)
        process = MeasurementEngine(
            simulator, executor="process", max_workers=2, cache=False
        ).run_batch(requests)
        for a, b in zip(serial, process):
            assert _results_identical(a, b)


class TestResultPacking:
    def test_pack_unpack_round_trip(self, simulator, default_config):
        requests = _requests(default_config, n=3)
        results = simulator.run_requests(requests)
        payload = executors_module._pack_results(results)
        assert payload[0] == "packed"
        rebuilt = executors_module._unpack_results(payload, requests)
        for a, b in zip(results, rebuilt):
            assert _results_identical(a, b)

    def test_unknown_breakdown_falls_back_to_pickle(self, simulator, default_config):
        results = simulator.run_requests(_requests(default_config, n=1))
        results[0].stage_breakdown_ms["warp_drive"] = 1.0
        payload = executors_module._pack_results(results)
        assert payload[0] == "pickled"
        assert executors_module._unpack_results(payload, [None]) is payload[1]
