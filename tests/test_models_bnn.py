"""Tests for the Bayesian neural network (Bayes-by-Backprop) surrogate."""

import numpy as np
import pytest

from repro.models.bnn import BayesianNeuralNetwork, softplus, softplus_grad


class TestSoftplus:
    def test_softplus_is_positive_and_monotone(self):
        values = np.array([-10.0, -1.0, 0.0, 1.0, 10.0])
        result = softplus(values)
        assert np.all(result > 0)
        assert np.all(np.diff(result) > 0)

    def test_softplus_grad_is_sigmoid(self):
        assert softplus_grad(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_softplus_large_input_is_stable(self):
        assert np.isfinite(softplus(np.array([500.0]))[0])


@pytest.fixture(scope="module")
def trained_bnn():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(250, 2))
    y = np.sin(2.0 * x[:, 0]) + 0.5 * x[:, 1]
    model = BayesianNeuralNetwork(input_dim=2, hidden_layers=(32, 32), seed=0)
    model.fit(x, y, epochs=250)
    return model, x, y


class TestBayesianNeuralNetwork:
    def test_fit_and_predict_accuracy(self, trained_bnn):
        model, x, y = trained_bnn
        mean, _ = model.predict(x, n_samples=25)
        assert np.corrcoef(mean, y)[0, 1] > 0.9

    def test_predict_returns_positive_std(self, trained_bnn):
        model, x, _ = trained_bnn
        _, std = model.predict(x[:20], n_samples=25)
        assert std.shape == (20,)
        assert np.all(std >= 0)

    def test_uncertainty_larger_away_from_data(self, trained_bnn):
        model, x, _ = trained_bnn
        _, std_in = model.predict(x[:50], n_samples=30)
        far = np.full((50, 2), 5.0)
        _, std_out = model.predict(far, n_samples=30)
        assert std_out.mean() > std_in.mean()

    def test_sample_function_is_deterministic_once_drawn(self, trained_bnn):
        model, x, _ = trained_bnn
        draw = model.sample_function()
        assert np.allclose(draw(x[:10]), draw(x[:10]))

    def test_different_samples_differ(self, trained_bnn):
        model, x, _ = trained_bnn
        first = model.sample_predict(x[:30])
        second = model.sample_predict(x[:30])
        assert not np.allclose(first, second)

    def test_mean_predict_close_to_mc_mean(self, trained_bnn):
        model, x, _ = trained_bnn
        mc_mean, _ = model.predict(x[:40], n_samples=60)
        point_mean = model.mean_predict(x[:40])
        assert np.mean(np.abs(mc_mean - point_mean)) < 0.25

    def test_use_before_fit_raises(self):
        model = BayesianNeuralNetwork(input_dim=2)
        with pytest.raises(RuntimeError):
            model.predict([[0.0, 0.0]])
        with pytest.raises(RuntimeError):
            model.sample_function()

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            BayesianNeuralNetwork(input_dim=0)
        with pytest.raises(ValueError):
            BayesianNeuralNetwork(input_dim=2, prior_sigma=0.0)
        with pytest.raises(ValueError):
            BayesianNeuralNetwork(input_dim=2, noise_sigma=-1.0)

    def test_input_dimension_mismatch_raises(self):
        model = BayesianNeuralNetwork(input_dim=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.zeros(5))

    def test_loss_history_decreases(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(150, 1))
        y = 2.0 * x[:, 0]
        model = BayesianNeuralNetwork(input_dim=1, hidden_layers=(16,), seed=1)
        model.fit(x, y, epochs=120)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_continual_fit_refines_predictions(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(120, 1))
        y = x[:, 0] ** 2
        model = BayesianNeuralNetwork(input_dim=1, hidden_layers=(24,), seed=2)
        model.fit(x, y, epochs=60)
        first_error = np.mean((model.mean_predict(x) - y) ** 2)
        model.fit(x, y, epochs=200)
        second_error = np.mean((model.mean_predict(x) - y) ** 2)
        assert second_error <= first_error * 1.5

    def test_is_fitted_flag(self):
        model = BayesianNeuralNetwork(input_dim=1, hidden_layers=(8,), seed=3)
        assert not model.is_fitted
        model.fit(np.zeros((4, 1)), np.zeros(4), epochs=2)
        assert model.is_fitted
