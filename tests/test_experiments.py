"""Smoke tests of the experiment runners (the figure/table reproduction code).

These run at the "smoke" scale — the goal is to verify every runner produces
well-formed results; the benchmarks run them at a meaningful scale.
"""

import numpy as np
import pytest

from repro.experiments import motivation, stage1, stage2, stage3
from repro.experiments.scale import SCALES, ExperimentScale, get_scale
from repro.sim.parameters import SimulationParameters

SMOKE = SCALES["smoke"]


class TestScale:
    def test_get_scale_reads_environment(self, monkeypatch):
        monkeypatch.setenv("ATLAS_BENCH_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_get_scale_by_name_and_default(self, monkeypatch):
        monkeypatch.delenv("ATLAS_BENCH_SCALE", raising=False)
        assert get_scale().name == "small"
        assert get_scale("paper").name == "paper"

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            get_scale("enormous")

    def test_scales_are_ordered_by_budget(self):
        assert SCALES["smoke"].stage2_iterations < SCALES["small"].stage2_iterations
        assert SCALES["small"].stage2_iterations < SCALES["paper"].stage2_iterations
        assert SCALES["paper"].stage3_iterations == 100

    def test_scale_is_a_frozen_dataclass(self):
        with pytest.raises(Exception):
            SMOKE.stage1_iterations = 5  # type: ignore[misc]
        assert isinstance(SMOKE, ExperimentScale)


class TestCollectOnlineDataset:
    def test_zero_runs_returns_empty_float64(self, real_network):
        from repro.experiments.scenarios import collect_online_dataset
        from repro.models.scaler import StandardScaler

        collection = collect_online_dataset(real_network, runs=0)
        assert collection.dtype == np.float64
        assert collection.size == 0
        # The empty collection must not break downstream scaler plumbing.
        scaler = StandardScaler()
        scaler.fit(np.concatenate([collection, np.array([1.0, 2.0, 3.0])]).reshape(-1, 1))

    def test_negative_runs_raises(self, real_network):
        from repro.experiments.scenarios import collect_online_dataset

        with pytest.raises(ValueError):
            collect_online_dataset(real_network, runs=-1)

    def test_positive_runs_concatenates_measurements(self, real_network):
        from repro.experiments.scenarios import collect_online_dataset

        collection = collect_online_dataset(real_network, runs=2, duration_s=6.0)
        assert collection.dtype == np.float64
        assert collection.size > 0


class TestMotivationRunners:
    def test_table1_rows(self):
        rows = motivation.table1_network_performance(SMOKE)
        assert len(rows) == 5
        by_metric = {row.metric: row for row in rows}
        assert by_metric["UL Throughput (Mbps)"].system < by_metric["UL Throughput (Mbps)"].simulator

    def test_fig2_latency_cdf(self):
        result = motivation.fig2_latency_cdf(SMOKE)
        values, probabilities = result.system_cdf()
        assert probabilities[-1] == pytest.approx(1.0)
        assert result.mean_latency_increase() > 0.0

    def test_fig3_latency_vs_traffic(self):
        result = motivation.fig3_latency_vs_traffic(SMOKE, traffic_levels=(1, 3))
        assert result.traffic_levels == [1, 3]
        assert len(result.simulator_summaries) == 2
        assert np.all(result.mean_gap_ms() > 0)

    def test_fig4_kl_heatmap(self):
        result = motivation.fig4_kl_heatmap(SMOKE)
        assert result.kl_matrix.shape == (SMOKE.heatmap_resolution, SMOKE.heatmap_resolution)
        assert result.min_divergence() >= 0.0
        assert result.max_divergence() > result.min_divergence()

    def test_fig5_online_footprint(self):
        result = motivation.fig5_online_footprint(SMOKE)
        assert set(result.methods) == {"BO", "DLDA"}
        for series in result.methods.values():
            assert len(series["usage"]) == SMOKE.baseline_iterations
        assert 0.0 <= result.violation_rate("BO") <= 1.0


class TestStage1Runners:
    def test_fig8_table4(self):
        comparison = stage1.fig8_table4_parameter_search(SMOKE)
        rows = comparison.table4_rows()
        assert [r["method"] for r in rows] == [
            "Original Simulator", "Aug. Simulator, GP", "Aug. Simulator, Ours",
        ]
        assert rows[0]["parameter_distance"] == 0.0
        assert rows[2]["discrepancy"] <= rows[0]["discrepancy"] + 1e-9

    def test_fig10_mobility(self):
        result = stage1.fig10_mobility_discrepancy(SMOKE, distances=(1.0, 10.0))
        assert len(result.discrepancies) == 2
        assert all(d >= 0 for d in result.discrepancies)

    def test_fig11_isolation(self):
        result = stage1.fig11_isolation(SMOKE, extra_users=(0, 2))
        assert len(result.mean_latencies_ms) == 2
        assert result.max_latency_shift() < 0.5

    def test_fig14_discrepancy_under_traffic(self):
        best = SimulationParameters(38.9, 2.0, 9.2, 4.0, 8.0, 10.0, 14.0)
        result = stage1.fig14_discrepancy_under_traffic(best, SMOKE, traffic_levels=(1, 2))
        assert len(result.original) == 2
        reductions = result.reductions()
        assert reductions.shape == (2,)

    def test_fig15_discrepancy_under_resources(self):
        best = SimulationParameters(38.9, 2.0, 9.2, 4.0, 8.0, 10.0, 14.0)
        result = stage1.fig15_discrepancy_under_resources(best, SMOKE)
        assert len(result.labels) == SMOKE.heatmap_resolution**2


class TestStage2Runners:
    def test_fig16_offline_progress(self):
        result = stage2.fig16_offline_progress(SMOKE)
        assert len(result.usage_per_iteration()) == SMOKE.stage2_iterations
        assert 0.0 <= result.policy.best_qoe <= 1.0

    def test_fig17_offline_comparison_subset(self):
        points = stage2.fig17_offline_comparison(SMOKE, methods=("ours", "gp-ei"))
        assert [p.method for p in points] == ["ours", "gp-ei"]
        for point in points:
            assert 0.0 <= point.qoe <= 1.0
            assert 0.0 <= point.resource_usage <= 1.0

    def test_fig17_unknown_method_raises(self):
        with pytest.raises(ValueError):
            stage2.fig17_offline_comparison(SMOKE, methods=("simulated-annealing",))

    def test_fig19_threshold_sweep(self):
        result = stage2.fig19_threshold_sweep(SMOKE, thresholds_ms=(300.0, 500.0), methods=("ours",))
        assert result.thresholds_ms == [300.0, 500.0]
        assert len(result.usage["ours"]) == 2


class TestStage3Runners:
    def test_online_comparison_subset(self):
        result = stage3.fig20_21_table5_online_comparison(SMOKE, methods=("ours", "baseline"))
        assert set(result.runs) == {"ours", "baseline"}
        rows = result.table5_rows()
        assert len(rows) == 2
        for run in result.runs.values():
            assert len(run.usages) == SMOKE.stage3_iterations
        assert result.optimal_usage > 0.0

    def test_unknown_online_method_raises(self):
        with pytest.raises(ValueError):
            stage3.fig20_21_table5_online_comparison(SMOKE, methods=("alphazero",))

    def test_acquisition_ablation(self):
        result = stage3.fig22_acquisition_ablation(SMOKE, acquisitions=("crgp_ucb", "ei"))
        assert set(result.footprints) == {"crgp_ucb", "ei"}
        assert 0.0 <= result.violation_rate("ei") <= 1.0

    def test_model_ablation(self):
        result = stage3.fig23_online_model_ablation(SMOKE, variants=("ours", "no_offline_acceleration"))
        assert set(result.regrets) == {"ours", "no_offline_acceleration"}
        for metrics in result.regrets.values():
            assert set(metrics) == {"avg_usage_regret", "avg_qoe_regret", "sla_violation_rate"}

    def test_stage_ablation(self):
        result = stage3.fig24_stage_ablation(SMOKE, variants=("ours", "no_stage3"))
        assert set(result.footprints) == {"ours", "no_stage3"}
        assert result.mean_usage["no_stage3"] > 0.0

    def test_dynamic_traffic(self):
        result = stage3.fig25_26_dynamic_traffic(
            SMOKE, traffic_levels=(2,), methods=("ours", "dlda")
        )
        assert result.traffic_levels == [2]
        assert len(result.usage_regret["ours"]) == 1
        assert len(result.qoe_regret["dlda"]) == 1
