"""Trend tracking across eval runs: append, reload, drift flagging."""

import json

from repro.evalharness.trend import (
    ABS_FLOOR,
    TREND_SCHEMA,
    append_trend,
    detect_drift,
    load_trend,
    render_drift,
)


def _report(latency: float, kl: float = 0.1, cases_passed: int = 1) -> dict:
    """A minimal synthetic ``atlas-eval/1`` report (the fields trend uses)."""
    return {
        "schema": "atlas-eval/1",
        "summary": {
            "cases": 1,
            "runs": 2,
            "cases_passed": cases_passed,
            "cases_failed": 1 - cases_passed,
            "gate_passed": True,
        },
        "results": [
            {
                "case": "static/frame-offloading",
                "metrics": {"latency_p95_ms": latency, "sim_real_symmetric_kl": kl},
            }
        ],
    }


def test_trend_file_round_trips(tmp_path):
    first = append_trend(_report(120.0), tmp_path)
    second = append_trend(_report(121.0), tmp_path)
    assert first["record"]["run"] == 0 and second["record"]["run"] == 1
    reloaded = load_trend(tmp_path)
    assert len(reloaded) == 2
    assert reloaded[0] == first["record"]
    assert reloaded[1] == second["record"]
    assert all(record["schema"] == TREND_SCHEMA for record in reloaded)
    assert reloaded[1]["summary"]["cases_passed"] == 1
    assert reloaded[1]["metrics"]["static/frame-offloading"]["latency_p95_ms"] == 121.0


def test_drift_flagged_across_two_synthetic_reports(tmp_path):
    append_trend(_report(100.0, kl=0.10), tmp_path)
    outcome = append_trend(_report(140.0, kl=0.11), tmp_path)  # +40% latency
    assert len(outcome["drift"]) == 1
    drift = outcome["drift"][0]
    assert drift["case"] == "static/frame-offloading"
    assert drift["metric"] == "latency_p95_ms"
    assert drift["previous"] == 100.0 and drift["current"] == 140.0
    text = render_drift(outcome["drift"])
    assert "latency_p95_ms" in text and "100" in text and "140" in text


def test_small_changes_are_not_drift(tmp_path):
    append_trend(_report(100.0), tmp_path)
    outcome = append_trend(_report(110.0), tmp_path)  # +10% < 25% band
    assert outcome["drift"] == []
    assert render_drift([]) == ""


def test_absolute_floor_suppresses_noise_near_zero():
    previous = {"metrics": {"c": {"m": 0.001}}}
    current = {"metrics": {"c": {"m": 0.001 + ABS_FLOOR * 0.9}}}
    assert detect_drift(previous, current) == []
    current = {"metrics": {"c": {"m": 0.001 + ABS_FLOOR * 1.5}}}
    assert len(detect_drift(previous, current)) == 1


def test_coverage_changes_are_not_drift():
    previous = {"metrics": {"old-case": {"m": 1.0}, "both": {"m": 1.0, "gone": 2.0}}}
    current = {"metrics": {"new-case": {"m": 9.0}, "both": {"m": 1.0}}}
    assert detect_drift(previous, current) == []


def test_load_trend_skips_torn_and_foreign_lines(tmp_path):
    append_trend(_report(100.0), tmp_path)
    with open(tmp_path / "trend.jsonl", "a") as handle:
        handle.write('{"schema": "other/1", "run": 99}\n')
        handle.write('{"schema": "atlas-eval-trend/1", "run":')  # torn append
    records = load_trend(tmp_path)
    assert len(records) == 1
    # The next append still gets a consistent run index (valid records only).
    outcome = append_trend(_report(101.0), tmp_path)
    assert outcome["record"]["run"] == 1


def test_real_report_shape_appends(tmp_path):
    """An actual harness report (synthetic cases) feeds the trend cleanly."""
    from repro.evalharness import build_report
    from repro.evalharness.dataset import Envelope, EvalCase
    from repro.evalharness.runner import CaseResult, SeedRunResult

    case = EvalCase(
        group="g",
        scenario="frame-offloading",
        seeds=(0,),
        measurements=1,
        duration_s=1.0,
        usage_ladder=(1.0,),
        envelopes={"latency_p95_ms": Envelope(lo=0.0, hi=1000.0)},
    )
    run = SeedRunResult(
        case_id=case.case_id,
        group="g",
        scenario="frame-offloading",
        seed=0,
        executor={"kind": "auto", "resolved": "vectorized"},
        metrics={"latency_p95_ms": 250.0},
        events=(),
    )
    report = build_report([CaseResult(case=case, seed_results=[run])])
    outcome = append_trend(report, tmp_path)
    assert outcome["record"]["metrics"][case.case_id]["latency_p95_ms"] == 250.0
    line = (tmp_path / "trend.jsonl").read_text().strip()
    assert json.loads(line)["summary"]["cases"] == 1
