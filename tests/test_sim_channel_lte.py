"""Tests for the radio channel models and the LTE PHY/MAC abstraction."""

import numpy as np
import pytest

from repro.sim.channel import (
    PRB_BANDWIDTH_HZ,
    LogDistancePathloss,
    ShadowFading,
    sinr_db,
    thermal_noise_dbm,
)
from repro.sim.lte import (
    MAX_MCS,
    LinkAdaptation,
    block_error_rate,
    cqi_from_sinr,
    expected_transmissions,
    mcs_from_cqi,
    prb_rate_bps,
    select_mcs,
    spectral_efficiency,
)


class TestPathloss:
    def test_reference_distance_gives_reference_loss(self):
        model = LogDistancePathloss(reference_loss_db=38.57, exponent=3.0)
        assert model.loss_db(1.0) == pytest.approx(38.57)

    def test_loss_increases_with_distance(self):
        model = LogDistancePathloss()
        assert model.loss_db(10.0) > model.loss_db(2.0) > model.loss_db(1.0)

    def test_ten_times_distance_adds_10n_db(self):
        model = LogDistancePathloss(reference_loss_db=40.0, exponent=3.0)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(30.0)

    def test_distance_below_reference_is_clamped(self):
        model = LogDistancePathloss()
        assert model.loss_db(0.5) == pytest.approx(model.loss_db(1.0))

    def test_non_positive_distance_raises(self):
        with pytest.raises(ValueError):
            LogDistancePathloss().loss_db(0.0)


class TestShadowFading:
    def test_zero_std_returns_zero(self):
        fading = ShadowFading(std_db=0.0)
        assert fading.sample_db() == 0.0

    def test_samples_have_requested_spread(self):
        fading = ShadowFading(std_db=3.0, rng=np.random.default_rng(0))
        samples = np.array([fading.sample_db() for _ in range(2000)])
        assert 2.5 < samples.std() < 3.5

    def test_deep_fades_add_extra_loss(self):
        always = ShadowFading(std_db=0.0, deep_fade_probability=1.0, deep_fade_db=12.0,
                              rng=np.random.default_rng(1))
        assert always.sample_db() == pytest.approx(12.0)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            ShadowFading(std_db=-1.0)
        with pytest.raises(ValueError):
            ShadowFading(deep_fade_probability=1.5)


class TestSinr:
    def test_thermal_noise_grows_with_bandwidth_and_noise_figure(self):
        narrow = thermal_noise_dbm(PRB_BANDWIDTH_HZ, 5.0)
        wide = thermal_noise_dbm(50 * PRB_BANDWIDTH_HZ, 5.0)
        noisy = thermal_noise_dbm(PRB_BANDWIDTH_HZ, 9.0)
        assert wide > narrow
        assert noisy == pytest.approx(narrow + 4.0)

    def test_sinr_decreases_with_pathloss_and_fading(self):
        base = sinr_db(23.0, 40.0, 0.0, 10 * PRB_BANDWIDTH_HZ, 5.0)
        faded = sinr_db(23.0, 40.0, 6.0, 10 * PRB_BANDWIDTH_HZ, 5.0)
        far = sinr_db(23.0, 80.0, 0.0, 10 * PRB_BANDWIDTH_HZ, 5.0)
        assert faded == pytest.approx(base - 6.0)
        assert far < base

    def test_interference_lowers_sinr(self):
        clean = sinr_db(23.0, 40.0, 0.0, 10 * PRB_BANDWIDTH_HZ, 5.0)
        interfered = sinr_db(23.0, 40.0, 0.0, 10 * PRB_BANDWIDTH_HZ, 5.0, interference_dbm=-90.0)
        assert interfered < clean

    def test_invalid_bandwidth_raises(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0, 5.0)


class TestLinkAdaptation:
    def test_cqi_increases_with_sinr(self):
        assert cqi_from_sinr(-10.0) == 0
        assert cqi_from_sinr(0.0) > cqi_from_sinr(-5.0)
        assert cqi_from_sinr(30.0) == 15

    def test_mcs_from_cqi_covers_full_range(self):
        assert mcs_from_cqi(0) == 0
        assert mcs_from_cqi(15) == MAX_MCS
        assert mcs_from_cqi(8) < mcs_from_cqi(12)

    def test_select_mcs_applies_offset(self):
        high = select_mcs(40.0, mcs_offset=0)
        reduced = select_mcs(40.0, mcs_offset=5)
        assert high == MAX_MCS
        assert reduced == MAX_MCS - 5
        assert select_mcs(40.0, mcs_offset=100) == 0

    def test_spectral_efficiency_monotone_in_mcs(self):
        efficiencies = [spectral_efficiency(m) for m in range(MAX_MCS + 1)]
        assert all(b >= a - 1e-9 for a, b in zip(efficiencies, efficiencies[1:]))
        assert efficiencies[-1] == pytest.approx(5.5547, rel=1e-3)

    def test_prb_rate_scales_linearly_with_prbs(self):
        rate_10 = prb_rate_bps(10, MAX_MCS, 0.4)
        rate_50 = prb_rate_bps(50, MAX_MCS, 0.4)
        assert rate_50 == pytest.approx(5 * rate_10)

    def test_full_carrier_matches_table1_throughput(self):
        """50 PRBs at top MCS should give roughly the paper's 10 MHz throughput."""
        ul = prb_rate_bps(50, MAX_MCS, 0.40) / 1e6
        dl = prb_rate_bps(50, MAX_MCS, 0.65) / 1e6
        assert 18.0 < ul < 22.0
        assert 30.0 < dl < 35.0

    def test_prb_rate_edge_cases(self):
        assert prb_rate_bps(0, 10) == 0.0
        with pytest.raises(ValueError):
            prb_rate_bps(10, 10, efficiency_factor=0.0)

    def test_bler_decreases_with_sinr_and_has_floor(self):
        high_sinr = block_error_rate(60.0, 20, floor=4e-3)
        low_sinr = block_error_rate(-5.0, 20, floor=4e-3)
        assert low_sinr > high_sinr
        assert high_sinr == pytest.approx(4e-3, rel=0.2)

    def test_bler_increases_with_mcs_at_fixed_sinr(self):
        assert block_error_rate(8.0, 25) > block_error_rate(8.0, 5)

    def test_expected_transmissions_bounds(self):
        assert expected_transmissions(0.0) == pytest.approx(1.0)
        assert expected_transmissions(1.0) == pytest.approx(4.0)
        mid = expected_transmissions(0.5)
        assert 1.0 < mid < 4.0
        with pytest.raises(ValueError):
            expected_transmissions(1.5)

    def test_residual_error_rate_is_bler_to_the_fourth(self):
        link = LinkAdaptation(sinr_db=10.0, mcs=10, n_prbs=10, rate_bps=1e6, bler=0.1)
        assert link.residual_error_rate == pytest.approx(1e-4)
