"""Tests for the latency summary statistics and empirical CDF helpers."""

import warnings

import numpy as np
import pytest

from repro.metrics.stats import empirical_cdf, summarize_latencies


class TestEmpiricalCdf:
    def test_cdf_is_sorted_and_reaches_one(self):
        values, probabilities = empirical_cdf([30.0, 10.0, 20.0])
        assert list(values) == [10.0, 20.0, 30.0]
        assert probabilities[-1] == pytest.approx(1.0)

    def test_cdf_is_monotone(self):
        rng = np.random.default_rng(0)
        values, probabilities = empirical_cdf(rng.normal(100, 20, size=500))
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probabilities) > 0)

    def test_non_finite_samples_are_excluded(self):
        values, probabilities = empirical_cdf([10.0, np.nan, np.inf, 20.0])
        assert len(values) == 2

    def test_empty_input_gives_empty_curve(self):
        values, probabilities = empirical_cdf([])
        assert values.size == 0 and probabilities.size == 0


class TestSummarizeLatencies:
    def test_basic_statistics(self):
        summary = summarize_latencies([100.0, 200.0, 300.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(200.0)
        assert summary.median == pytest.approx(200.0)
        assert summary.minimum == 100.0
        assert summary.maximum == 300.0
        assert summary.drop_rate == 0.0

    def test_percentiles_are_ordered(self):
        rng = np.random.default_rng(1)
        summary = summarize_latencies(rng.exponential(100.0, size=1000))
        assert summary.median <= summary.p90 <= summary.p95 <= summary.p99 <= summary.maximum

    def test_drop_rate_counts_non_finite(self):
        summary = summarize_latencies([100.0, np.nan, np.inf, 200.0])
        assert summary.count == 2
        assert summary.drop_rate == pytest.approx(0.5)

    def test_all_dropped_collection(self):
        summary = summarize_latencies([np.nan, np.inf])
        assert summary.count == 0
        assert summary.drop_rate == 1.0
        assert np.isnan(summary.mean)

    def test_empty_collection(self):
        summary = summarize_latencies([])
        assert summary.count == 0
        assert summary.drop_rate == 0.0

    def test_as_dict_round_trip(self):
        summary = summarize_latencies([50.0, 150.0])
        payload = summary.as_dict()
        assert payload["count"] == 2
        assert payload["mean"] == pytest.approx(100.0)
        assert set(payload) >= {"mean", "std", "median", "p90", "p95", "p99", "min", "max"}


class TestDegenerateCollections:
    """Empty / all-dropped collections return defined values, never warnings."""

    def test_empty_collection_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            summary = summarize_latencies([])
        assert summary.count == 0
        for name in ("mean", "std", "median", "p90", "p95", "p99", "min", "max"):
            assert np.isnan(summary.as_dict()[name])

    def test_all_nan_collection_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            summary = summarize_latencies([np.nan, np.nan, np.nan])
        assert summary.count == 0
        assert summary.drop_rate == 1.0
        assert np.isnan(summary.p95)

    def test_empirical_cdf_of_empty_collection_is_empty(self):
        values, probabilities = empirical_cdf([])
        assert values.size == 0 and probabilities.size == 0

    def test_empirical_cdf_drops_non_finite(self):
        values, probabilities = empirical_cdf([np.nan, 10.0, np.inf])
        assert values.tolist() == [10.0]
        assert probabilities.tolist() == [1.0]
