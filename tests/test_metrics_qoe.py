"""Tests for the QoE and resource-usage metrics (Eqs. 5–6)."""

import numpy as np
import pytest

from repro.metrics.qoe import qoe_from_latencies, resource_usage
from repro.sim.config import SliceConfig


class TestQoE:
    def test_all_samples_below_threshold_gives_one(self):
        assert qoe_from_latencies([100.0, 200.0, 299.9], 300.0) == 1.0

    def test_all_samples_above_threshold_gives_zero(self):
        assert qoe_from_latencies([301.0, 400.0], 300.0) == 0.0

    def test_fraction_is_exact(self):
        latencies = [100.0, 200.0, 400.0, 500.0]
        assert qoe_from_latencies(latencies, 300.0) == pytest.approx(0.5)

    def test_boundary_sample_counts_as_satisfied(self):
        assert qoe_from_latencies([300.0], 300.0) == 1.0

    def test_dropped_frames_count_against_qoe(self):
        latencies = [100.0, np.nan, np.inf, 200.0]
        assert qoe_from_latencies(latencies, 300.0) == pytest.approx(0.5)

    def test_empty_collection_gives_zero(self):
        assert qoe_from_latencies([], 300.0) == 0.0

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            qoe_from_latencies([100.0], 0.0)

    def test_qoe_in_unit_interval(self):
        rng = np.random.default_rng(0)
        latencies = rng.exponential(200.0, size=500)
        value = qoe_from_latencies(latencies, 300.0)
        assert 0.0 <= value <= 1.0


class TestResourceUsage:
    def test_zero_action_gives_zero(self):
        assert resource_usage([0, 0, 0], [10, 10, 10]) == 0.0

    def test_full_action_gives_one(self):
        assert resource_usage([10, 20, 30], [10, 20, 30]) == 1.0

    def test_is_mean_of_fractions(self):
        assert resource_usage([5, 0], [10, 10]) == pytest.approx(0.25)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            resource_usage([1, 2], [1, 2, 3])

    def test_non_positive_maximum_raises(self):
        with pytest.raises(ValueError):
            resource_usage([1], [0])

    def test_values_above_maximum_are_clipped(self):
        assert resource_usage([20], [10]) == 1.0

    def test_paper_best_configuration_usage_matches_fig17(self):
        """The paper's best offline action evaluates to ~19.8% usage."""
        config = SliceConfig(
            bandwidth_ul=9, bandwidth_dl=3, mcs_offset_ul=0, mcs_offset_dl=0,
            backhaul_bw=6.2, cpu_ratio=0.8,
        )
        assert config.resource_usage() == pytest.approx(0.198, abs=0.02)

    def test_slice_config_usage_is_monotone_in_resources(self):
        lean = SliceConfig(bandwidth_ul=5, bandwidth_dl=5, backhaul_bw=5, cpu_ratio=0.2)
        rich = SliceConfig(bandwidth_ul=40, bandwidth_dl=40, backhaul_bw=80, cpu_ratio=0.9)
        assert rich.resource_usage() > lean.resource_usage()


class TestQoEDegenerateInputs:
    """Empty / all-dropped collections and bad thresholds are defined."""

    def test_all_nan_collection_scores_zero(self):
        assert qoe_from_latencies([np.nan, np.nan], 300.0) == 0.0

    def test_all_inf_collection_scores_zero(self):
        assert qoe_from_latencies([np.inf, np.inf, np.inf], 300.0) == 0.0

    def test_empty_collection_scores_zero_without_warnings(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert qoe_from_latencies([], 300.0) == 0.0

    def test_nan_threshold_raises(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            qoe_from_latencies([100.0], float("nan"))

    def test_inf_threshold_raises(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            qoe_from_latencies([100.0], float("inf"))
