"""Tests for the three Atlas stages and the end-to-end orchestration.

The stages run with tiny budgets here: the goal is to verify the algorithmic
plumbing (selection, penalisation, model updates, result bookkeeping), not
convergence quality, which the benchmarks cover.
"""

import numpy as np
import pytest

from repro.core.atlas import Atlas, AtlasConfig
from repro.core.offline_training import OfflineConfigurationTrainer, OfflineTrainingConfig
from repro.core.online_learning import OnlineConfigurationLearner, OnlineLearningConfig
from repro.core.simulator_learning import ParameterSearchConfig, SimulatorParameterSearch
from repro.core.spaces import SimulationParameterSpace
from repro.prototype.slice_manager import SLA
from repro.prototype.testbed import RealNetwork
from repro.sim.config import SliceConfig
from repro.sim.network import NetworkSimulator
from repro.sim.scenario import Scenario


SCENARIO = Scenario(traffic=1, duration_s=8.0)
CONFIG = SliceConfig(bandwidth_ul=10, bandwidth_dl=5, backhaul_bw=10, cpu_ratio=0.8)
SLA_DEFAULT = SLA(latency_threshold_ms=300.0, availability=0.9)


def _simulator(seed=0):
    return NetworkSimulator(scenario=SCENARIO, seed=seed)


def _real_network(seed=1):
    return RealNetwork(scenario=SCENARIO, seed=seed)


def _real_collection():
    network = _real_network()
    return np.concatenate([
        network.collect_latencies(CONFIG, traffic=1, duration=10.0, seed=s) for s in (1, 2)
    ])


class TestSimulatorParameterSearch:
    def _search(self, surrogate="bnn", **overrides):
        defaults = dict(
            iterations=3,
            initial_random=2,
            parallel_queries=2,
            candidate_pool=100,
            measurement_duration_s=8.0,
            surrogate=surrogate,
            surrogate_epochs=15,
            seed=0,
        )
        defaults.update(overrides)
        return SimulatorParameterSearch(
            simulator=_simulator(),
            real_collection=_real_collection(),
            deployed_config=CONFIG,
            space=SimulationParameterSpace(),
            config=ParameterSearchConfig(**defaults),
        )

    def test_run_returns_history_and_best(self):
        result = self._search().run()
        # iteration 0 (original) + 3 iterations x 2 parallel queries
        assert len(result.history) == 1 + 3 * 2
        assert result.best_weighted_discrepancy <= result.history[0].weighted_discrepancy + 1e-9
        assert result.best_discrepancy >= 0
        assert result.best_distance >= 0

    def test_gp_surrogate_variant_runs(self):
        result = self._search(surrogate="gp").run()
        assert len(result.history) == 7

    def test_progress_curves_have_one_point_per_iteration(self):
        result = self._search().run()
        assert len(result.weighted_discrepancy_per_iteration()) == 4
        best = result.best_so_far()
        assert np.all(np.diff(best) <= 1e-12)

    def test_evaluate_returns_finite_values_and_distance(self):
        search = self._search()
        discrepancy, distance = search.evaluate(search.space.original, seed=1)
        assert np.isfinite(discrepancy) and discrepancy >= 0
        assert distance == pytest.approx(0.0)

    def test_empty_real_collection_raises(self):
        with pytest.raises(ValueError):
            SimulatorParameterSearch(
                simulator=_simulator(), real_collection=[], deployed_config=CONFIG
            )

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            ParameterSearchConfig(iterations=0)
        with pytest.raises(ValueError):
            ParameterSearchConfig(surrogate="forest")
        with pytest.raises(ValueError):
            ParameterSearchConfig(candidate_pool=1, parallel_queries=4)


class TestOfflineTraining:
    def _trainer(self, **overrides):
        defaults = dict(
            iterations=4,
            initial_random=2,
            parallel_queries=2,
            candidate_pool=150,
            measurement_duration_s=8.0,
            surrogate_epochs=15,
            seed=0,
        )
        defaults.update(overrides)
        return OfflineConfigurationTrainer(
            simulator=_simulator(),
            sla=SLA_DEFAULT,
            traffic=1,
            config=OfflineTrainingConfig(**defaults),
        )

    def test_run_produces_policy_and_history(self):
        result = self._trainer().run()
        assert len(result.history) == 4 * 2
        policy = result.policy
        assert isinstance(policy.best_config, SliceConfig)
        assert 0.0 <= policy.best_qoe <= 1.0
        assert 0.0 <= policy.best_usage <= 1.0
        assert policy.multiplier >= 0.0

    def test_policy_qoe_model_is_fitted(self):
        result = self._trainer().run()
        prediction = result.policy.predict_qoe(np.full((2, 6), 0.5))
        assert prediction.shape == (2,)

    def test_progress_series_have_one_point_per_iteration(self):
        result = self._trainer().run()
        assert len(result.usage_per_iteration()) == 4
        assert len(result.qoe_per_iteration()) == 4

    def test_best_config_is_feasible_if_any_feasible_query_exists(self):
        result = self._trainer(iterations=5).run()
        feasible = [r for r in result.history if r.qoe >= SLA_DEFAULT.availability]
        if feasible:
            assert result.policy.best_qoe >= SLA_DEFAULT.availability

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            OfflineTrainingConfig(iterations=0)
        with pytest.raises(ValueError):
            OfflineTrainingConfig(parallel_queries=0)


@pytest.fixture(scope="module")
def offline_policy():
    trainer = OfflineConfigurationTrainer(
        simulator=_simulator(),
        sla=SLA_DEFAULT,
        traffic=1,
        config=OfflineTrainingConfig(
            iterations=6, initial_random=3, parallel_queries=2, candidate_pool=200,
            measurement_duration_s=8.0, surrogate_epochs=20, seed=0,
        ),
    )
    return trainer.run().policy


class TestOnlineLearning:
    def _learner(self, policy, **overrides):
        defaults = dict(
            iterations=4,
            offline_queries_per_step=2,
            candidate_pool=150,
            measurement_duration_s=8.0,
            simulator_duration_s=8.0,
            seed=0,
        )
        defaults.update(overrides)
        return OnlineConfigurationLearner(
            offline_policy=policy,
            simulator=_simulator(),
            real_network=_real_network(),
            sla=SLA_DEFAULT,
            traffic=1,
            config=OnlineLearningConfig(**defaults),
        )

    def test_run_produces_history_and_regrets(self, offline_policy):
        result = self._learner(offline_policy).run()
        assert len(result.history) == 4
        assert result.usages().shape == (4,)
        assert result.qoes().shape == (4,)
        assert np.isfinite(result.average_usage_regret())
        assert result.average_qoe_regret() >= 0
        assert 0.0 <= result.sla_violation_rate() <= 1.0

    def test_first_action_is_the_offline_best(self, offline_policy):
        result = self._learner(offline_policy).run()
        assert result.history[0].config == tuple(offline_policy.best_config.to_array())

    def test_residual_observations_feed_the_gp(self, offline_policy):
        learner = self._learner(offline_policy)
        result = learner.run()
        assert len(learner._residual_targets) == len(result.history)
        assert all(np.isfinite(r.residual) for r in result.history)

    def test_multiplier_starts_from_offline_value_with_floor(self, offline_policy):
        learner = self._learner(offline_policy)
        assert learner.multiplier.value >= max(offline_policy.multiplier, 1.0) - 1e-9

    @pytest.mark.parametrize("acquisition", ["gp_ucb", "ei", "pi", "thompson"])
    def test_alternative_acquisitions_run(self, offline_policy, acquisition):
        result = self._learner(offline_policy, acquisition=acquisition, iterations=3).run()
        assert len(result.history) == 3

    @pytest.mark.parametrize("residual_model", ["bnn", "bnn_contd", "none"])
    def test_alternative_residual_models_run(self, offline_policy, residual_model):
        result = self._learner(offline_policy, residual_model=residual_model, iterations=3).run()
        assert len(result.history) == 3

    def test_disabling_offline_acceleration_runs(self, offline_policy):
        result = self._learner(offline_policy, offline_acceleration=False, iterations=3).run()
        assert len(result.history) == 3

    def test_policy_contains_best_observed_configuration(self, offline_policy):
        result = self._learner(offline_policy).run()
        assert result.policy.best_config is not None
        assert 0.0 <= result.policy.best_qoe <= 1.0

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            OnlineLearningConfig(iterations=0)
        with pytest.raises(ValueError):
            OnlineLearningConfig(acquisition="random")
        with pytest.raises(ValueError):
            OnlineLearningConfig(residual_model="tree")


class TestAtlasOrchestration:
    def _atlas(self, **config_overrides):
        defaults = dict(
            sla=SLA_DEFAULT,
            traffic=1,
            deployed_config=CONFIG,
            online_collection_runs=1,
            online_collection_duration_s=8.0,
            stage1=ParameterSearchConfig(
                iterations=2, initial_random=1, parallel_queries=2, candidate_pool=80,
                measurement_duration_s=8.0, surrogate_epochs=10, seed=0,
            ),
            stage2=OfflineTrainingConfig(
                iterations=3, initial_random=2, parallel_queries=2, candidate_pool=100,
                measurement_duration_s=8.0, surrogate_epochs=10, seed=0,
            ),
            stage3=OnlineLearningConfig(
                iterations=2, offline_queries_per_step=1, candidate_pool=100,
                measurement_duration_s=8.0, simulator_duration_s=8.0, seed=0,
            ),
        )
        defaults.update(config_overrides)
        return Atlas(_simulator(), _real_network(), AtlasConfig(**defaults))

    def test_full_pipeline_runs_all_three_stages(self):
        atlas = self._atlas()
        result = atlas.run_all()
        assert result.stage1 is not None
        assert result.stage2 is not None
        assert result.stage3 is not None
        assert result.augmented_parameters is not None
        assert result.offline_policy is not None
        assert atlas.augmented_simulator.params == result.stage1.best_parameters

    def test_stage1_can_be_disabled(self):
        atlas = self._atlas(enable_stage1=False)
        result = atlas.run_all()
        assert result.stage1 is None
        assert atlas.augmented_simulator.params == atlas.simulator.params

    def test_stage2_ablation_uses_uninformed_policy(self):
        atlas = self._atlas(enable_stage1=False, enable_stage2=False)
        result = atlas.run_all()
        assert result.stage2 is None
        assert result.stage3 is not None

    def test_stage3_can_be_disabled(self):
        atlas = self._atlas(enable_stage1=False, enable_stage3=False)
        result = atlas.run_all()
        assert result.stage3 is None

    def test_learn_online_before_offline_raises(self):
        atlas = self._atlas()
        with pytest.raises(RuntimeError):
            atlas.learn_online()

    def test_online_collection_is_built_once(self):
        atlas = self._atlas(enable_stage2=False, enable_stage3=False)
        atlas.run_all()
        assert len(atlas.online_collection) > 0
