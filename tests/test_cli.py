"""The ``python -m repro`` command line: listing, showing and running scenarios.

Pipeline runs use the smoke scale with an aggressively short ``--duration``
so the whole module stays cheap; the full smoke-scale acceptance runs live
in CI and the examples.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.scenarios import scenario_names


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    """Invoke the CLI in-process and return (exit code, stdout)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestListAndShow:
    def test_list_scenarios_shows_every_entry(self, capsys):
        code, out = run_cli(capsys, "list-scenarios")
        assert code == 0
        for name in scenario_names():
            assert name in out
        assert f"{len(scenario_names())} scenarios registered" in out

    def test_list_scenarios_has_at_least_six_entries(self, capsys):
        _, out = run_cli(capsys, "list-scenarios")
        count = int(out.strip().splitlines()[-1].split()[0])
        assert count >= 6

    def test_show_single_slice_entry(self, capsys):
        code, out = run_cli(capsys, "show", "urllc-control")
        assert code == 0
        assert "100ms @ 95%" in out
        assert "deployed:" in out

    def test_show_multislice_entry_prints_budget_and_slices(self, capsys):
        code, out = run_cli(capsys, "show", "mixed-enterprise")
        assert code == 0
        assert "shared budget" in out
        for slice_name in ("frame-offloading", "embb-video", "urllc-control", "mmtc-telemetry"):
            assert slice_name in out

    def test_show_dynamic_entry_prints_trace(self, capsys):
        _, out = run_cli(capsys, "show", "frame-offloading-diurnal")
        assert "trace:" in out and "DiurnalTrace" in out

    def test_unknown_scenario_exits_2_with_message(self, capsys):
        code = main(["show", "not-a-scenario"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown scenario" in captured.err
        assert "frame-offloading" in captured.err  # lists what IS available

    def test_parser_rejects_bad_stage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "embb-video", "--stage", "4"])


class TestRun:
    def test_run_stage2_single_slice(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--scenario",
            "embb-video",
            "--stage",
            "2",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
        )
        assert code == 0
        assert "stage 2: best offline config" in out
        assert "done" in out

    def test_run_stage3_trains_prerequisite_policy(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--scenario",
            "frame-offloading-diurnal",
            "--stage",
            "3",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
        )
        assert code == 0
        assert "prerequisite offline policy" in out
        # The diurnal trace spans several traffic levels within the smoke
        # budget, so online learning must have segmented.
        assert "traffic segment(s)" in out

    def test_run_multislice_prints_contended_rounds(self, capsys, tmp_path):
        json_path = tmp_path / "summary.json"
        code, out = run_cli(
            capsys,
            "run",
            "--scenario",
            "mixed-enterprise",
            "--stage",
            "2",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
            "--json",
            str(json_path),
        )
        assert code == 0
        assert "contended round (deployed configurations):" in out
        assert "contended round (optimised configurations):" in out
        assert "allocated totals:" in out
        payload = json.loads(json_path.read_text())
        assert payload["scenario"] == "mixed-enterprise"
        assert len(payload["slices"]) == 4
        assert payload["multislice_before"] is not None
        assert payload["multislice_after"] is not None
        # Private (underscore) keys carrying live objects never reach JSON.
        assert "_policy" not in json.dumps(payload)

    def test_run_unknown_scenario_exits_2(self, capsys):
        code = main(["run", "--scenario", "nope", "--stage", "1", "--scale", "smoke"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown scenario" in captured.err

    def test_run_executor_flag_restores_environment(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("ATLAS_ENGINE_EXECUTOR", raising=False)
        code, _ = run_cli(
            capsys,
            "run",
            "--scenario",
            "urllc-control",
            "--stage",
            "2",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
            "--executor",
            "thread",
        )
        assert code == 0
        assert "ATLAS_ENGINE_EXECUTOR" not in os.environ


SMALL_REGISTRY = """\
defaults:
  seeds: [0]
  measurements: 2
  duration_s: 3.0
  usage_ladder: [0.9, 1.0]
cases:
  - group: test
    scenario: urllc-control
    envelopes:
      latency_p95_ms: [0, 100000]
      sla_violation_rate: [0, 1]
      avg_usage_regret: [-10, 10]
      avg_qoe_regret: [-10, 10]
      sim_real_symmetric_kl: [0, 1000]
"""


class TestEval:
    """The `eval` subcommand: report, run layout, gate exit codes."""

    def write_registry(self, tmp_path, text=SMALL_REGISTRY):
        registry = tmp_path / "cases.yaml"
        registry.write_text(text)
        return registry

    def test_eval_writes_report_and_layout(self, capsys, tmp_path):
        registry = self.write_registry(tmp_path)
        out = tmp_path / "eval_out"
        code, text = run_cli(
            capsys,
            "eval",
            "--cases",
            str(registry),
            "--group",
            "test",
            "--out",
            str(out),
            "--no-determinism",
        )
        assert code == 0
        assert "[PASS] test/urllc-control" in text
        assert "gate: PASS" in text
        report = json.loads((out / "EVAL_report.json").read_text())
        assert report["schema"] == "atlas-eval/1"
        assert (out / "test" / "urllc-control" / "seed=0" / "result.json").exists()
        assert (out / "test" / "urllc-control" / "seed=0" / "events.jsonl").exists()

    def test_eval_json_prints_the_report(self, capsys, tmp_path):
        registry = self.write_registry(tmp_path)
        code, text = run_cli(
            capsys,
            "eval",
            "--cases",
            str(registry),
            "--group",
            "test",
            "--out",
            str(tmp_path / "out"),
            "--no-determinism",
            "--json",
        )
        assert code == 0
        report = json.loads(text)
        assert report["schema"] == "atlas-eval/1"
        assert report["gate"]["passed"] is True

    def test_eval_gate_failure_exits_1(self, capsys, tmp_path):
        registry = self.write_registry(
            tmp_path,
            SMALL_REGISTRY.replace("latency_p95_ms: [0, 100000]", "latency_p95_ms: [0, 0.001]"),
        )
        code, text = run_cli(
            capsys,
            "eval",
            "--cases",
            str(registry),
            "--group",
            "test",
            "--out",
            str(tmp_path / "out"),
            "--no-determinism",
        )
        assert code == 1
        assert "BREACH" in text
        assert "gate: FAIL" in text

    def test_eval_seeds_override(self, capsys, tmp_path):
        registry = self.write_registry(tmp_path)
        out = tmp_path / "out"
        code, _ = run_cli(
            capsys,
            "eval",
            "--cases",
            str(registry),
            "--group",
            "test",
            "--out",
            str(out),
            "--seeds",
            "5",
            "--no-determinism",
        )
        assert code == 0
        assert (out / "test" / "urllc-control" / "seed=5" / "result.json").exists()

    def test_eval_unknown_scenario_filter_exits_2(self, capsys, tmp_path):
        registry = self.write_registry(tmp_path)
        code = main(
            [
                "eval",
                "--cases",
                str(registry),
                "--scenario",
                "not-a-scenario",
                "--out",
                str(tmp_path / "out"),
                "--no-determinism",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "not-a-scenario" in captured.err

    def test_eval_executor_flag_is_recorded_but_metric_neutral(self, capsys, tmp_path):
        registry = self.write_registry(tmp_path)
        reports = {}
        for kind in ("serial", "sharded"):
            out = tmp_path / f"out-{kind}"
            code, _ = run_cli(
                capsys,
                "eval",
                "--cases",
                str(registry),
                "--group",
                "test",
                "--out",
                str(out),
                "--executor",
                kind,
                "--no-determinism",
            )
            assert code == 0
            reports[kind] = json.loads((out / "EVAL_report.json").read_text())
        assert reports["serial"]["provenance"]["executor"]["requested"] == "serial"
        assert reports["sharded"]["provenance"]["executor"]["requested"] == "sharded"
        # The numerics pin makes the results section executor-independent.
        assert reports["serial"]["results"] == reports["sharded"]["results"]
