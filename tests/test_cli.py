"""The ``python -m repro`` command line: listing, showing and running scenarios.

Pipeline runs use the smoke scale with an aggressively short ``--duration``
so the whole module stays cheap; the full smoke-scale acceptance runs live
in CI and the examples.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.scenarios import scenario_names


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    """Invoke the CLI in-process and return (exit code, stdout)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestListAndShow:
    def test_list_scenarios_shows_every_entry(self, capsys):
        code, out = run_cli(capsys, "list-scenarios")
        assert code == 0
        for name in scenario_names():
            assert name in out
        assert f"{len(scenario_names())} scenarios registered" in out

    def test_list_scenarios_has_at_least_six_entries(self, capsys):
        _, out = run_cli(capsys, "list-scenarios")
        count = int(out.strip().splitlines()[-1].split()[0])
        assert count >= 6

    def test_show_single_slice_entry(self, capsys):
        code, out = run_cli(capsys, "show", "urllc-control")
        assert code == 0
        assert "100ms @ 95%" in out
        assert "deployed:" in out

    def test_show_multislice_entry_prints_budget_and_slices(self, capsys):
        code, out = run_cli(capsys, "show", "mixed-enterprise")
        assert code == 0
        assert "shared budget" in out
        for slice_name in ("frame-offloading", "embb-video", "urllc-control", "mmtc-telemetry"):
            assert slice_name in out

    def test_show_dynamic_entry_prints_trace(self, capsys):
        _, out = run_cli(capsys, "show", "frame-offloading-diurnal")
        assert "trace:" in out and "DiurnalTrace" in out

    def test_unknown_scenario_exits_2_with_message(self, capsys):
        code = main(["show", "not-a-scenario"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown scenario" in captured.err
        assert "frame-offloading" in captured.err  # lists what IS available

    def test_parser_rejects_bad_stage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "embb-video", "--stage", "4"])


class TestRun:
    def test_run_stage2_single_slice(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--scenario",
            "embb-video",
            "--stage",
            "2",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
        )
        assert code == 0
        assert "stage 2: best offline config" in out
        assert "done" in out

    def test_run_stage3_trains_prerequisite_policy(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--scenario",
            "frame-offloading-diurnal",
            "--stage",
            "3",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
        )
        assert code == 0
        assert "prerequisite offline policy" in out
        # The diurnal trace spans several traffic levels within the smoke
        # budget, so online learning must have segmented.
        assert "traffic segment(s)" in out

    def test_run_multislice_prints_contended_rounds(self, capsys, tmp_path):
        json_path = tmp_path / "summary.json"
        code, out = run_cli(
            capsys,
            "run",
            "--scenario",
            "mixed-enterprise",
            "--stage",
            "2",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
            "--json",
            str(json_path),
        )
        assert code == 0
        assert "contended round (deployed configurations):" in out
        assert "contended round (optimised configurations):" in out
        assert "allocated totals:" in out
        payload = json.loads(json_path.read_text())
        assert payload["scenario"] == "mixed-enterprise"
        assert len(payload["slices"]) == 4
        assert payload["multislice_before"] is not None
        assert payload["multislice_after"] is not None
        # Private (underscore) keys carrying live objects never reach JSON.
        assert "_policy" not in json.dumps(payload)

    def test_run_unknown_scenario_exits_2(self, capsys):
        code = main(["run", "--scenario", "nope", "--stage", "1", "--scale", "smoke"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown scenario" in captured.err

    def test_run_executor_flag_restores_environment(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("ATLAS_ENGINE_EXECUTOR", raising=False)
        code, _ = run_cli(
            capsys,
            "run",
            "--scenario",
            "urllc-control",
            "--stage",
            "2",
            "--scale",
            "smoke",
            "--duration",
            "2.0",
            "--executor",
            "thread",
        )
        assert code == 0
        assert "ATLAS_ENGINE_EXECUTOR" not in os.environ
