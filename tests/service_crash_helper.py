"""Subprocess helper for the crash-recovery test: killed mid-``put``.

Run as ``python service_crash_helper.py <store-dir>``.  It completes one
real measurement through a store-backed cache (so the parent has a known
entry to recover), plants a deliberately torn temp file named with this
process's pid (exactly the debris a SIGKILL mid-``put`` leaves), prints
``READY`` and then writes entries in a tight loop until the parent kills
it.  Never imported by pytest — no ``test_`` prefix.
"""

import os
import sys
from pathlib import Path

from repro.engine.cache import MeasurementCache
from repro.engine.engine import MeasurementEngine
from repro.engine.replay import VectorReplayEnvironment
from repro.scenarios import get_scenario
from repro.service.store import ResultStore


def main() -> None:
    store_dir = Path(sys.argv[1])
    store = ResultStore(store_dir)
    cache = MeasurementCache(store=store)
    workload = get_scenario("frame-offloading").primary
    engine = MeasurementEngine(
        VectorReplayEnvironment(workload.make_simulator(seed=0)),
        executor="vectorized",
        cache=cache,
    )
    # The entry the parent recovers and compares byte-for-byte.
    engine.run(workload.deployed_config, traffic=3, duration=2.0, seed=1234)
    # Torn staging file with our (soon to be dead) pid in its name.
    torn = store_dir / "tmp" / f"{'0' * 64}.{os.getpid()}.999.part"
    torn.write_bytes(b"ATLASTORE1\n{\"schema\": \"atlas-store/1\", \"trunc")
    print("READY", flush=True)
    seed = 10_000
    while True:
        engine.run(workload.deployed_config, traffic=3, duration=2.0, seed=seed)
        seed += 1


if __name__ == "__main__":
    main()
