"""Scenario catalog: registry semantics, determinism, multi-slice contention.

Covers the satellite requirements of the catalog subsystem: name lookup and
unknown-name errors, byte-identical simulator results for catalog entries
across the serial/thread/process executors, and conservation of the shared
PRB/backhaul/CPU budgets under multi-slice contention.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import MeasurementEngine, MeasurementRequest
from repro.prototype.slice_manager import SLA, NetworkSlice, SliceManager
from repro.scenarios import (
    ConstantTrace,
    DiurnalTrace,
    BurstyTrace,
    FlashCrowdTrace,
    ScenarioSpec,
    SliceWorkload,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.catalog import _REGISTRY
from repro.sim.config import SliceConfig
from repro.sim.multislice import (
    CONTENDED_DIMENSIONS,
    ResourceBudget,
    SliceRun,
    resolve_contention,
)
from repro.sim.scenario import Scenario


# ----------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_catalog_has_at_least_six_entries(self):
        assert len(list_scenarios()) >= 6

    def test_expected_entries_are_registered(self):
        names = scenario_names()
        for expected in (
            "frame-offloading",
            "embb-video",
            "urllc-control",
            "mmtc-telemetry",
            "frame-offloading-diurnal",
            "mixed-enterprise",
        ):
            assert expected in names

    def test_get_scenario_returns_spec(self):
        spec = get_scenario("frame-offloading")
        assert spec.name == "frame-offloading"
        assert not spec.is_multislice
        assert spec.primary.sla == SLA(latency_threshold_ms=300.0, availability=0.9)

    def test_unknown_name_raises_with_available_names(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            get_scenario("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        assert "frame-offloading" in message
        # It is also a KeyError, for callers catching the builtin type.
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("frame-offloading")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)

    def test_register_and_replace_roundtrip(self):
        spec = ScenarioSpec(
            name="test-entry",
            description="temporary",
            slices=(SliceWorkload(name="s0"),),
        )
        try:
            register_scenario(spec)
            assert get_scenario("test-entry") is spec
            replaced = spec.replace(description="changed")
            register_scenario(replaced, replace_existing=True)
            assert get_scenario("test-entry").description == "changed"
        finally:
            _REGISTRY.pop("test-entry", None)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="at least one slice"):
            ScenarioSpec(name="empty", description="", slices=())
        with pytest.raises(ValueError, match="duplicate slice names"):
            ScenarioSpec(
                name="dup",
                description="",
                slices=(SliceWorkload(name="a"), SliceWorkload(name="a")),
            )

    def test_multislice_entry_oversubscribes_its_budget(self):
        spec = get_scenario("mixed-enterprise")
        assert spec.is_multislice
        demand = {
            dim: sum(getattr(w.deployed_config, dim) for w in spec.slices)
            for dim in CONTENDED_DIMENSIONS
        }
        # The entry exists to demonstrate contention: every shared dimension
        # must be genuinely oversubscribed at the deployed configurations.
        for dim in CONTENDED_DIMENSIONS:
            assert demand[dim] > spec.budget.total(dim)


# ------------------------------------------------------------------- traces
class TestTraces:
    def test_traces_are_deterministic_and_bounded(self):
        traces = [
            ConstantTrace(2),
            DiurnalTrace(low=1, high=4, period=12),
            BurstyTrace(base=1, burst=4, quiet_steps=3, burst_steps=2),
            FlashCrowdTrace(base=1, peak=4, spike_start=2, spike_steps=3),
        ]
        for trace in traces:
            first = trace.levels(30)
            second = trace.levels(30)
            assert first == second
            assert all(level >= 1 for level in first)

    def test_diurnal_trough_and_peak(self):
        trace = DiurnalTrace(low=1, high=4, period=12)
        assert trace.level(0) == 1
        assert trace.level(6) == 4

    def test_flash_crowd_spike_window(self):
        trace = FlashCrowdTrace(base=1, peak=4, spike_start=4, spike_steps=3)
        assert trace.levels(9) == [1, 1, 1, 1, 4, 4, 4, 1, 1]

    def test_workload_traffic_at_follows_trace(self):
        workload = get_scenario("frame-offloading-diurnal").primary
        assert workload.traffic_at(0) == workload.trace.level(0)
        assert workload.mean_traffic() >= 1

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            ConstantTrace(0)
        with pytest.raises(ValueError):
            DiurnalTrace(low=3, high=2)
        with pytest.raises(ValueError):
            BurstyTrace(base=2, burst=1)
        with pytest.raises(ValueError):
            FlashCrowdTrace(spike_steps=0)


# ------------------------------------------------- determinism across executors
class TestExecutorDeterminism:
    @pytest.mark.parametrize("entry", ["frame-offloading", "embb-video", "urllc-control"])
    def test_catalog_entry_identical_across_executors(self, entry):
        workload = get_scenario(entry).primary
        requests = [
            MeasurementRequest(
                config=workload.deployed_config,
                traffic=workload.mean_traffic(),
                duration=5.0,
                seed=100 + index,
            )
            for index in range(4)
        ]
        collections = {}
        for executor in ("serial", "thread", "process"):
            engine = MeasurementEngine(
                workload.make_simulator(seed=3), executor=executor, max_workers=2, cache=False
            )
            with engine:
                collections[executor] = engine.collect_latencies_batch(requests)
        for executor in ("thread", "process"):
            for serial, parallel in zip(collections["serial"], collections[executor]):
                np.testing.assert_array_equal(serial, parallel)

    def test_multislice_round_identical_across_executors(self):
        spec = get_scenario("mixed-enterprise")
        simulator = spec.primary.make_simulator(seed=5)
        results = {}
        for executor in ("serial", "process"):
            engine = MeasurementEngine(simulator, executor=executor, max_workers=2, cache=False)
            with engine:
                round_ = simulator.run_slices(
                    spec.slice_runs(seed=40), budget=spec.budget, duration=5.0, engine=engine
                )
            results[executor] = round_
        for serial, parallel in zip(
            results["serial"].results, results["process"].results
        ):
            np.testing.assert_array_equal(serial.latencies_ms, parallel.latencies_ms)


# ------------------------------------------------------- contention resolution
class TestContention:
    def test_oversubscribed_dimensions_conserve_budget(self):
        budget = ResourceBudget()
        configs = [
            SliceConfig(bandwidth_ul=40.0, bandwidth_dl=30.0, backhaul_bw=80.0, cpu_ratio=0.9)
            for _ in range(3)
        ]
        allocated = resolve_contention(configs, budget)
        for dim in CONTENDED_DIMENSIONS:
            total = sum(getattr(config, dim) for config in allocated)
            assert total == pytest.approx(budget.total(dim))

    def test_within_budget_requests_granted_unchanged(self):
        budget = ResourceBudget()
        configs = [SliceConfig(bandwidth_ul=10.0, bandwidth_dl=5.0, backhaul_bw=10.0, cpu_ratio=0.5)]
        (allocated,) = resolve_contention(configs, budget)
        assert allocated == configs[0]

    def test_proportional_shares_preserved(self):
        budget = ResourceBudget(bandwidth_ul=50.0)
        configs = [
            SliceConfig(bandwidth_ul=40.0),
            SliceConfig(bandwidth_ul=20.0),
        ]
        first, second = resolve_contention(configs, budget)
        assert first.bandwidth_ul == pytest.approx(2.0 * second.bandwidth_ul)

    def test_mcs_offsets_never_contended(self):
        configs = [
            SliceConfig(bandwidth_ul=50.0, mcs_offset_ul=4.0, mcs_offset_dl=6.0)
            for _ in range(3)
        ]
        for allocated in resolve_contention(configs):
            assert allocated.mcs_offset_ul == 4.0
            assert allocated.mcs_offset_dl == 6.0

    def test_empty_round_resolves_to_empty(self):
        assert resolve_contention([]) == []

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(cpu_ratio=0.0)

    def test_run_slices_conserves_budgets_end_to_end(self):
        spec = get_scenario("mixed-enterprise")
        simulator = spec.primary.make_simulator(seed=2)
        round_ = simulator.run_slices(spec.slice_runs(seed=10), budget=spec.budget, duration=5.0)
        assert len(round_) == len(spec.slices)
        assert round_.slice_names() == [w.name for w in spec.slices]
        for dim in CONTENDED_DIMENSIONS:
            assert round_.total_allocated(dim) <= spec.budget.total(dim) + 1e-9
        # Oversubscribed dimensions are exhausted exactly, not left idle.
        assert round_.total_allocated("bandwidth_ul") == pytest.approx(
            spec.budget.total("bandwidth_ul")
        )
        for index, result in enumerate(round_.results):
            assert result.frames_generated > 0
            assert round_.qoe(index) >= 0.0

    def test_run_slices_rejects_foreign_engine(self):
        spec = get_scenario("mixed-enterprise")
        simulator = spec.primary.make_simulator(seed=2)
        other_engine = MeasurementEngine(spec.primary.make_simulator(seed=3))
        with pytest.raises(ValueError, match="must wrap the environment"):
            simulator.run_slices(spec.slice_runs(), budget=spec.budget, engine=other_engine)

    def test_real_network_round_records_history_per_slice(self):
        spec = get_scenario("mixed-enterprise")
        network = spec.primary.make_real_network(seed=4)
        round_ = network.measure_slices(spec.slice_runs(seed=20), budget=spec.budget, duration=5.0)
        # Every slice's contended configuration went through the domain
        # managers, so the applied history has one record per slice.
        assert len(network.applied_history) == len(spec.slices)
        # Quantisation may round allocations up slightly, but the totals must
        # stay within the budget plus the coarsest quantisation step (1 PRB
        # per slice, connectivity minimums aside).
        for dim in ("backhaul_bw", "cpu_ratio"):
            applied_total = sum(
                getattr(record.applied, dim) for record in network.applied_history
            )
            assert applied_total <= spec.budget.total(dim) + 0.5 * len(spec.slices)
        assert len(round_.results) == len(spec.slices)


# -------------------------------------------------------- slice manager rounds
class TestSliceManagerMeasureAll:
    def test_measure_all_batches_admitted_slices(self):
        spec = get_scenario("mixed-enterprise")
        network = spec.primary.make_real_network(seed=6)
        manager = SliceManager(network)
        for workload in spec.slices[:3]:
            manager.admit(
                NetworkSlice(
                    name=workload.name,
                    sla=workload.sla,
                    config=workload.deployed_config,
                    traffic=workload.scenario.traffic,
                    scenario=workload.scenario,
                )
            )
        round_ = manager.measure_all(budget=spec.budget, duration=5.0, seed=30)
        assert round_.slice_names() == [w.name for w in spec.slices[:3]]
        summary = round_.summary()
        assert all(row["sla_met"] in (True, False) for row in summary)
        # Each admitted slice kept its own workload physics: URLLC's 200 B
        # frames must complete far faster than 28.8 kB frame offloading.
        by_name = {row["slice"]: row for row in summary}
        assert by_name["urllc-control"]["mean_latency_ms"] < by_name["frame-offloading"]["mean_latency_ms"]

    def test_measure_all_requires_admitted_slices(self):
        network = get_scenario("frame-offloading").primary.make_real_network(seed=6)
        with pytest.raises(ValueError, match="no slices admitted"):
            SliceManager(network).measure_all()

    def test_measure_all_deterministic_given_seed(self):
        workload = get_scenario("frame-offloading").primary
        rounds = []
        for _ in range(2):
            network = workload.make_real_network(seed=6)
            manager = SliceManager(network)
            manager.admit(
                NetworkSlice(
                    name="s0", sla=workload.sla, config=workload.deployed_config, traffic=1
                )
            )
            manager.admit(
                NetworkSlice(
                    name="s1",
                    sla=workload.sla,
                    config=workload.deployed_config.replace(cpu_ratio=0.4),
                    traffic=2,
                )
            )
            rounds.append(manager.measure_all(duration=5.0, seed=77))
        for first, second in zip(rounds[0].results, rounds[1].results):
            np.testing.assert_array_equal(first.latencies_ms, second.latencies_ms)


# -------------------------------------------------------------- scenario hooks
class TestScenarioOverrides:
    def test_engine_request_scenario_override(self):
        workload = get_scenario("urllc-control").primary
        simulator = get_scenario("frame-offloading").primary.make_simulator(seed=1)
        engine = MeasurementEngine(simulator, cache=False)
        base = engine.run(workload.deployed_config, duration=5.0, seed=9)
        overridden = engine.run_batch(
            [
                MeasurementRequest(
                    config=workload.deployed_config,
                    duration=5.0,
                    seed=9,
                    scenario=workload.scenario,
                )
            ]
        )[0]
        # URLLC frames are 200 bytes vs 28.8 kB: latencies must differ wildly.
        assert overridden.mean_latency_ms < base.mean_latency_ms

    def test_scenario_override_matches_direct_with_scenario(self):
        workload = get_scenario("embb-video").primary
        simulator = get_scenario("frame-offloading").primary.make_simulator(seed=1)
        direct = simulator.with_scenario(workload.scenario).run(
            workload.deployed_config, duration=5.0, seed=11
        )
        # Pinned to serial: with_scenario().run() is the scalar path, and only
        # the scalar executor kinds are byte-identical with it.
        engine = MeasurementEngine(simulator, executor="serial", cache=False)
        batched = engine.run_batch(
            [
                MeasurementRequest(
                    config=workload.deployed_config,
                    duration=5.0,
                    seed=11,
                    scenario=workload.scenario,
                )
            ]
        )[0]
        np.testing.assert_array_equal(direct.latencies_ms, batched.latencies_ms)

    def test_scenario_is_part_of_cache_key(self):
        workload = get_scenario("frame-offloading").primary
        from repro.engine import MeasurementCache

        engine = MeasurementEngine(
            workload.make_simulator(seed=1), cache=MeasurementCache(max_entries=16)
        )
        request = MeasurementRequest(config=workload.deployed_config, duration=5.0, seed=3)
        other = request.replace(scenario=Scenario(traffic=2))
        engine.run_batch([request])
        engine.run_batch([other])
        assert engine.cache_stats.misses == 2
        engine.run_batch([other])
        assert engine.cache_stats.hits == 1
