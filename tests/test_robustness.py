"""The chaos gate: hostile scenarios must break the bare learner, not the watchdog.

Three legs per hostile catalog entry (``traffic-drift``, ``sla-storm``,
``telemetry-blackout``):

1. **break** — the unprotected learner's SLA-violation rate exceeds the
   hostility floor: the fault genuinely poisons an unsupervised stage 3;
2. **survive** — the watchdog enters safe mode at least once *and* recovers
   at least once: the fault is detected and the episode is not abandoned;
3. **win** — the guarded violation rate is strictly below the unprotected
   one: supervision pays for itself on the same faulted episode.

Every environment is pinned under a
:class:`~repro.engine.replay.VectorReplayEnvironment`, so the gate numbers
are byte-identical across the serial / vectorized / sharded / auto executor
matrix CI runs the suite under.  The remaining tests are the regression
fixes that ride along: telemetry dropouts must not poison the engine cache,
and faulted measurements must replay byte-identically across executors.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.offline_training import OfflineConfigurationTrainer, OfflineTrainingConfig
from repro.core.online_learning import OnlineConfigurationLearner, OnlineLearningConfig
from repro.core.watchdog import (
    OnlineWatchdog,
    WatchdogConfig,
    run_unprotected,
)
from repro.engine.cache import MeasurementCache
from repro.engine.engine import MeasurementEngine
from repro.engine.protocol import MeasurementRequest
from repro.engine.replay import VectorReplayEnvironment
from repro.prototype.testbed import RealNetwork
from repro.scenarios import get_scenario
from repro.sim.faults import FaultedEnvironment, telemetry_lost
from repro.sim.network import NetworkSimulator

DURATION = 4.0
ITERATIONS = 16
HOSTILE = ("traffic-drift", "sla-storm", "telemetry-blackout")


def _scenario(spec):
    return dataclasses.replace(spec.slices[0].scenario, duration_s=DURATION)


@pytest.fixture(scope="module")
def offline_policy():
    """One offline policy shared by every hostile entry (they share the SLA)."""
    spec = get_scenario(HOSTILE[0])
    workload = spec.slices[0]
    scenario = _scenario(spec)
    trainer = OfflineConfigurationTrainer(
        simulator=VectorReplayEnvironment(NetworkSimulator(scenario=scenario, seed=0)),
        sla=workload.sla,
        traffic=scenario.traffic,
        config=OfflineTrainingConfig(
            iterations=6,
            initial_random=3,
            parallel_queries=2,
            candidate_pool=200,
            measurement_duration_s=DURATION,
            surrogate_epochs=20,
            seed=0,
        ),
    )
    return trainer.run().policy


def _learner(spec, policy) -> OnlineConfigurationLearner:
    scenario = _scenario(spec)
    return OnlineConfigurationLearner(
        offline_policy=policy,
        simulator=VectorReplayEnvironment(NetworkSimulator(scenario=scenario, seed=0)),
        real_network=VectorReplayEnvironment(RealNetwork(scenario=scenario, seed=1)),
        sla=spec.slices[0].sla,
        traffic=scenario.traffic,
        config=OnlineLearningConfig(
            iterations=ITERATIONS,
            offline_queries_per_step=2,
            candidate_pool=150,
            measurement_duration_s=DURATION,
            simulator_duration_s=DURATION,
            seed=0,
        ),
    )


@pytest.fixture(scope="module")
def chaos(offline_policy):
    """Both arms of every hostile episode, run once and asserted on repeatedly."""
    outcomes = {}
    for name in HOSTILE:
        spec = get_scenario(name)
        unprotected = run_unprotected(_learner(spec, offline_policy), spec.faults)
        guarded = OnlineWatchdog(
            _learner(spec, offline_policy),
            fault_schedule=spec.faults,
            fallback_config=spec.slices[0].deployed_config,
        ).run()
        outcomes[name] = (unprotected, guarded)
    return outcomes


class TestChaosGate:
    @pytest.mark.parametrize("name", HOSTILE)
    def test_fault_breaks_the_unprotected_learner(self, chaos, name):
        unprotected, _ = chaos[name]
        assert unprotected.sla_violation_rate() >= 0.3

    @pytest.mark.parametrize("name", HOSTILE)
    def test_watchdog_enters_safe_mode_and_recovers(self, chaos, name):
        _, guarded = chaos[name]
        assert guarded.safe_mode_entries >= 1
        assert guarded.recoveries >= 1
        assert guarded.triggers, "every safe-mode entry must name its trigger"

    @pytest.mark.parametrize("name", HOSTILE)
    def test_watchdog_beats_the_unprotected_learner(self, chaos, name):
        unprotected, guarded = chaos[name]
        assert guarded.sla_violation_rate() < unprotected.sla_violation_rate()

    def test_drift_trips_the_violation_monitor(self, chaos):
        _, guarded = chaos["traffic-drift"]
        assert "sla-violations" in guarded.triggers

    def test_blackout_trips_the_stale_monitor(self, chaos):
        _, guarded = chaos["telemetry-blackout"]
        assert "stale-telemetry" in guarded.triggers
        assert guarded.dropped_steps() > 0

    @pytest.mark.parametrize("name", HOSTILE)
    def test_recovery_folds_the_ledger_back(self, chaos, name):
        _, guarded = chaos[name]
        # Every recovery folds the telemetry-valid fault-window measurements
        # back into the discrepancy model — the fault window is not dead time.
        assert guarded.ledger.folded > 0
        assert guarded.ledger.folded <= len(guarded.ledger.entries)
        # Recovery is gated on healthy probes, so the folded window always
        # contains telemetry-valid measurements to learn from.
        assert any(entry.telemetry_ok for entry in guarded.ledger.entries[: guarded.ledger.folded])

    @pytest.mark.parametrize("name", HOSTILE)
    def test_safe_mode_emits_the_vetted_fallback(self, chaos, name):
        _, guarded = chaos[name]
        fallback = tuple(get_scenario(name).slices[0].deployed_config.to_array())
        assert guarded.last_known_good == fallback
        for record in guarded.history:
            if record.mode == "safe":
                assert record.config == fallback

    @pytest.mark.parametrize("name", HOSTILE)
    def test_guarded_episode_is_deterministic(self, chaos, name, offline_policy):
        """A rerun of the guarded arm replays the first run byte-for-byte."""
        spec = get_scenario(name)
        rerun = OnlineWatchdog(
            _learner(spec, offline_policy),
            fault_schedule=spec.faults,
            fallback_config=spec.slices[0].deployed_config,
        ).run()
        _, guarded = chaos[name]
        assert rerun.summary() == guarded.summary()
        assert [dataclasses.astuple(r) for r in rerun.history] == pytest.approx(
            [dataclasses.astuple(r) for r in guarded.history], nan_ok=True
        )


class TestWatchdogNeverWedges:
    def test_exhausted_reentry_budget_holds_safe_mode(self, offline_policy):
        """With a zero re-entry budget the watchdog parks on the fallback forever."""
        spec = get_scenario("telemetry-blackout")
        guarded = OnlineWatchdog(
            _learner(spec, offline_policy),
            config=WatchdogConfig(reentry_budget=0),
            fault_schedule=spec.faults,
            fallback_config=spec.slices[0].deployed_config,
        ).run()
        assert guarded.safe_mode_entries == 1
        assert guarded.recoveries == 0
        assert guarded.final_mode == "safe"
        assert len(guarded.history) == ITERATIONS
        fallback = tuple(spec.slices[0].deployed_config.to_array())
        # Every post-trip step still emits the known-good configuration.
        tripped = next(i for i, r in enumerate(guarded.history) if r.trigger)
        for record in guarded.history[tripped + 1 :]:
            assert record.mode == "safe"
            assert record.config == fallback


class TestDropoutCacheHygiene:
    """Telemetry dropouts must never poison the measurement cache (the fix)."""

    def _fixture(self):
        spec = get_scenario("telemetry-blackout")
        scenario = _scenario(spec)
        cache = MeasurementCache()
        real = RealNetwork(scenario=scenario, seed=1)
        config = spec.slices[0].deployed_config
        return spec, scenario, cache, real, config

    def test_dropped_step_does_not_poison_clean_runs(self):
        spec, scenario, cache, real, config = self._fixture()
        assert spec.faults.dropped(2), "step 2 must sit inside the blackout window"
        faulted = MeasurementEngine(
            FaultedEnvironment(real, spec.faults, step=2),
            executor="serial",
            cache=cache,
        )
        dropped = faulted.run(config, traffic=1, duration=DURATION, seed=7)
        assert telemetry_lost(dropped)
        # The same request against the bare environment must miss the cache
        # and deliver real telemetry — the dropout was keyed under the fault
        # fingerprint, not the bare environment's.
        bare = MeasurementEngine(real, executor="serial", cache=cache)
        clean = bare.run(config, traffic=1, duration=DURATION, seed=7)
        assert not telemetry_lost(clean)
        assert clean.latencies_ms.size > 0

    def test_clean_steps_share_cache_entries_with_unfaulted_runs(self):
        spec, scenario, cache, real, config = self._fixture()
        assert not spec.faults.affects(0), "step 0 must be fault-free"
        bare = MeasurementEngine(real, executor="serial", cache=cache)
        first = bare.run(config, traffic=1, duration=DURATION, seed=7)
        executed = bare.executed_requests
        assert executed == 1
        # A fault-free step of the faulted wrapper collapses to the inner
        # fingerprint: the measurement is served from the shared entry.
        faulted = MeasurementEngine(
            FaultedEnvironment(real, spec.faults, step=0),
            executor="serial",
            cache=cache,
        )
        hit = faulted.run(config, traffic=1, duration=DURATION, seed=7)
        assert faulted.executed_requests == 0
        assert np.array_equal(hit.latencies_ms, first.latencies_ms)
        assert hit.ping_delay_ms == first.ping_delay_ms

    def test_partial_cache_hits_across_a_dropout_window(self):
        """A window spanning clean and dropped steps reuses only the clean entries."""
        spec, scenario, cache, real, config = self._fixture()
        # Pre-warm the cache with an unfaulted run of every step's request.
        bare = MeasurementEngine(real, executor="serial", cache=cache)
        steps = range(6)
        for step in steps:
            bare.run(config, traffic=1, duration=DURATION, seed=100 + step)
        warmed = bare.executed_requests
        assert warmed == len(list(steps))
        # Replay the same requests through the fault schedule, step-pinned.
        executed_faulted = 0
        for step in steps:
            engine = MeasurementEngine(
                FaultedEnvironment(real, spec.faults, step=step),
                executor="serial",
                cache=cache,
            )
            result = engine.run(config, traffic=1, duration=DURATION, seed=100 + step)
            executed_faulted += engine.executed_requests
            assert telemetry_lost(result) == spec.faults.dropped(step)
        # Only the dropped steps (2 and 3) missed the warm cache.
        assert executed_faulted == sum(1 for step in steps if spec.faults.dropped(step))
        # And the bare cache entries are intact: replaying the unfaulted
        # window is all hits, with real telemetry throughout.
        bare_replay = MeasurementEngine(real, executor="serial", cache=cache)
        for step in steps:
            again = bare_replay.run(config, traffic=1, duration=DURATION, seed=100 + step)
            assert not telemetry_lost(again)
        assert bare_replay.executed_requests == 0


def _faulted_results_identical(a, b) -> bool:
    scalars = (
        "frames_generated",
        "frames_completed",
        "duration_s",
        "config",
        "traffic",
        "stage_breakdown_ms",
    )
    nan_scalars = (
        "ul_throughput_mbps",
        "dl_throughput_mbps",
        "ul_packet_error_rate",
        "dl_packet_error_rate",
        "ping_delay_ms",
    )
    return (
        np.array_equal(a.latencies_ms, b.latencies_ms)
        and all(getattr(a, name) == getattr(b, name) for name in scalars)
        and all(
            np.array_equal(getattr(a, name), getattr(b, name), equal_nan=True)
            for name in nan_scalars
        )
    )


class TestFaultedCrossExecutorIdentity:
    """Faulted measurements replay byte-identically under every executor kind."""

    @pytest.mark.parametrize("name", HOSTILE)
    def test_executor_kinds_agree_on_faulted_batches(self, name):
        spec = get_scenario(name)
        scenario = _scenario(spec)
        config = spec.slices[0].deployed_config
        per_step: list[list] = []
        for kind in ("serial", "vectorized", "sharded", "auto"):
            real = RealNetwork(scenario=scenario, seed=1)
            results = []
            for step in range(6):
                engine = MeasurementEngine(
                    VectorReplayEnvironment(FaultedEnvironment(real, spec.faults, step)),
                    executor=kind,
                    cache=False,
                )
                results.extend(
                    engine.run_batch(
                        [
                            MeasurementRequest(
                                config=config, traffic=1, duration=DURATION, seed=31 + lane
                            )
                            for lane in range(3)
                        ]
                    )
                )
            per_step.append(results)
        reference = per_step[0]
        for results in per_step[1:]:
            assert len(results) == len(reference)
            for a, b in zip(reference, results):
                assert _faulted_results_identical(a, b)

    def test_faulted_steps_report_the_effective_traffic(self):
        spec = get_scenario("traffic-drift")
        scenario = _scenario(spec)
        config = spec.slices[0].deployed_config
        real = RealNetwork(scenario=scenario, seed=1)
        for step in range(8):
            engine = MeasurementEngine(
                VectorReplayEnvironment(FaultedEnvironment(real, spec.faults, step)),
                executor="serial",
                cache=False,
            )
            result = engine.run(config, traffic=1, duration=DURATION, seed=5)
            assert result.traffic == spec.faults.traffic_at(step, 1)
