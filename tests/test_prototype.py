"""Tests for the real-network substitute, domain managers, slice manager and telemetry."""

import numpy as np
import pytest

from repro.metrics.kl import histogram_kl_divergence
from repro.prototype.domain_managers import (
    EdgeDomainManager,
    EndToEndOrchestrator,
    RadioDomainManager,
    TransportDomainManager,
)
from repro.prototype.slice_manager import SLA, NetworkSlice, SliceManager
from repro.prototype.telemetry import OnlineCollection, PerformanceLog
from repro.prototype.testbed import RealNetwork, default_ground_truth, default_imperfections
from repro.sim.config import MIN_DOWNLINK_PRBS, MIN_UPLINK_PRBS, SliceConfig
from repro.sim.scenario import Scenario


class TestRealNetwork:
    def test_measure_returns_simulation_result(self, real_network, default_config):
        result = real_network.measure(default_config, traffic=1, duration=15.0, seed=1)
        assert result.frames_completed > 5
        assert result.mean_latency_ms > 0

    def test_real_network_is_slower_than_simulator(self, simulator, real_network, default_config):
        sim_result = simulator.run(default_config, traffic=1, duration=30.0, seed=2)
        real_result = real_network.measure(default_config, traffic=1, duration=30.0, seed=2)
        assert real_result.mean_latency_ms > sim_result.mean_latency_ms

    def test_real_network_has_lower_throughput(self, simulator, real_network, default_config):
        sim_result = simulator.run(default_config, traffic=1, duration=15.0, seed=3)
        real_result = real_network.measure(default_config, traffic=1, duration=15.0, seed=3)
        assert real_result.ul_throughput_mbps < sim_result.ul_throughput_mbps
        assert real_result.dl_throughput_mbps < sim_result.dl_throughput_mbps

    def test_sim_to_real_discrepancy_is_nontrivial(self, simulator, real_network, default_config):
        sim_latencies = simulator.collect_latencies(default_config, traffic=1, duration=30.0, seed=4)
        real_latencies = real_network.collect_latencies(default_config, traffic=1, duration=30.0, seed=4)
        assert histogram_kl_divergence(real_latencies, sim_latencies) > 0.2

    def test_measurements_are_logged_through_domain_managers(self, real_network, default_config):
        real_network.measure(default_config, traffic=1, duration=10.0, seed=5)
        real_network.measure(default_config, traffic=1, duration=10.0, seed=6)
        assert len(real_network.applied_history) == 2

    def test_run_alias_matches_measure_interface(self, real_network, default_config):
        result = real_network.run(default_config, traffic=1, duration=10.0, seed=7)
        assert result.frames_completed > 0

    def test_with_scenario_keeps_hidden_ground_truth(self):
        network = RealNetwork(seed=3)
        moved = network.with_scenario(Scenario(traffic=2))
        assert moved.scenario.traffic == 2
        assert moved._ground_truth == network._ground_truth

    def test_default_ground_truth_differs_from_simulator_defaults(self):
        assert default_ground_truth().to_array().tolist() != [38.57, 5.0, 9.0, 0, 0, 0, 0]

    def test_default_imperfections_are_not_neutral(self):
        imperfections = default_imperfections()
        assert imperfections.fading_std_db > 0
        assert imperfections.ul_rate_derate < 1.0


class TestDomainManagers:
    def test_radio_manager_quantises_and_enforces_minimums(self):
        manager = RadioDomainManager()
        values, notes = manager.apply(SliceConfig(bandwidth_ul=0.4, bandwidth_dl=0.0, mcs_offset_ul=3.7))
        assert values["bandwidth_ul"] == MIN_UPLINK_PRBS
        assert values["bandwidth_dl"] == MIN_DOWNLINK_PRBS
        assert values["mcs_offset_ul"] == 4.0
        assert notes

    def test_transport_manager_quantises_to_meter_granularity(self):
        manager = TransportDomainManager()
        values, _ = manager.apply(SliceConfig(backhaul_bw=10.123))
        assert values["backhaul_bw"] == pytest.approx(10.1)

    def test_edge_manager_floors_cpu_ratio(self):
        manager = EdgeDomainManager()
        values, notes = manager.apply(SliceConfig(cpu_ratio=0.0))
        assert values["cpu_ratio"] == pytest.approx(manager.minimum_cpu_ratio)
        assert notes

    def test_orchestrator_applies_all_domains_and_records_history(self):
        orchestrator = EndToEndOrchestrator()
        record = orchestrator.apply(SliceConfig(bandwidth_ul=9.6, backhaul_bw=6.24, cpu_ratio=0.333))
        assert record.applied.bandwidth_ul == 10.0
        assert record.applied.backhaul_bw == pytest.approx(6.2)
        assert record.applied.cpu_ratio == pytest.approx(0.33)
        assert orchestrator.history == [record]

    def test_orchestrator_preserves_valid_configuration(self):
        orchestrator = EndToEndOrchestrator()
        config = SliceConfig(bandwidth_ul=20, bandwidth_dl=10, backhaul_bw=30.0, cpu_ratio=0.5)
        record = orchestrator.apply(config)
        assert record.applied == config
        assert record.notes == ()


class TestSLA:
    def test_default_matches_paper(self):
        sla = SLA()
        assert sla.latency_threshold_ms == 300.0
        assert sla.availability == 0.9

    def test_satisfaction_check(self):
        sla = SLA(availability=0.9)
        assert sla.is_satisfied_by(0.95)
        assert sla.is_satisfied_by(0.9)
        assert not sla.is_satisfied_by(0.85)

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            SLA(latency_threshold_ms=0.0)
        with pytest.raises(ValueError):
            SLA(availability=0.0)
        with pytest.raises(ValueError):
            SLA(availability=1.5)


class TestSliceManager:
    def _manager(self):
        return SliceManager(RealNetwork(scenario=Scenario(duration_s=10.0), seed=2))

    def test_admit_and_get(self):
        manager = self._manager()
        slice_ = NetworkSlice(name="video", sla=SLA())
        manager.admit(slice_)
        assert manager.get("video") is slice_
        assert manager.slices == (slice_,)

    def test_double_admission_raises(self):
        manager = self._manager()
        manager.admit(NetworkSlice(name="video", sla=SLA()))
        with pytest.raises(ValueError):
            manager.admit(NetworkSlice(name="video", sla=SLA()))

    def test_remove_and_missing_lookup(self):
        manager = self._manager()
        manager.admit(NetworkSlice(name="video", sla=SLA()))
        removed = manager.remove("video")
        assert removed.name == "video"
        with pytest.raises(KeyError):
            manager.get("video")
        with pytest.raises(KeyError):
            manager.remove("video")

    def test_background_users_validation(self):
        manager = self._manager()
        manager.attach_background_users(2)
        assert manager.background_users == 2
        with pytest.raises(ValueError):
            manager.attach_background_users(-1)

    def test_measure_slice_returns_qoe_and_sla_flag(self, default_config):
        manager = self._manager()
        manager.admit(NetworkSlice(name="video", sla=SLA(), config=default_config, traffic=1))
        result, qoe, met = manager.measure_slice("video", duration=10.0, seed=1)
        assert result.frames_completed > 0
        assert 0.0 <= qoe <= 1.0
        assert met == (qoe >= 0.9)

    def test_isolation_keeps_latency_stable_with_background_users(self, default_config):
        manager = self._manager()
        manager.admit(NetworkSlice(name="video", sla=SLA(), config=default_config, traffic=1))
        baseline, _, _ = manager.measure_slice("video", duration=20.0, seed=2)
        manager.attach_background_users(2)
        loaded, _, _ = manager.measure_slice("video", duration=20.0, seed=2)
        assert abs(loaded.mean_latency_ms - baseline.mean_latency_ms) / baseline.mean_latency_ms < 0.25

    def test_configure_updates_slice_config(self, default_config):
        manager = self._manager()
        manager.admit(NetworkSlice(name="video", sla=SLA()))
        manager.configure("video", default_config)
        assert manager.get("video").config == default_config


class TestTelemetry:
    def test_online_collection_accumulates_and_filters(self):
        collection = OnlineCollection()
        collection.extend([100.0, np.nan, 200.0, np.inf])
        assert len(collection) == 2
        assert bool(collection)
        assert np.allclose(collection.samples(), [100.0, 200.0])

    def test_online_collection_save_load_round_trip(self, tmp_path):
        collection = OnlineCollection([10.0, 20.0, 30.0])
        path = tmp_path / "dr.json"
        collection.save(path)
        loaded = OnlineCollection.load(path)
        assert np.allclose(loaded.samples(), collection.samples())

    def test_performance_log_records_and_extracts_series(self, default_config):
        log = PerformanceLog()
        log.record(1, default_config, 0.3, 0.92, 250.0, stage="online")
        log.record(2, default_config, 0.25, 0.88, 280.0)
        assert len(log) == 2
        assert np.allclose(log.usages(), [0.3, 0.25])
        assert np.allclose(log.qoes(), [0.92, 0.88])
        assert log.records[0].to_slice_config() == default_config

    def test_performance_log_save_load_round_trip(self, tmp_path, default_config):
        log = PerformanceLog()
        log.record(1, default_config, 0.3, 0.92, 250.0)
        path = tmp_path / "log.json"
        log.save(path)
        loaded = PerformanceLog.load(path)
        assert len(loaded) == 1
        assert loaded.records[0].qoe == pytest.approx(0.92)
