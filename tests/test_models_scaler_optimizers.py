"""Tests for the StandardScaler and the gradient-descent optimisers."""

import numpy as np
import pytest

from repro.models.optimizers import AdadeltaOptimizer, AdamOptimizer, make_optimizer
from repro.models.scaler import StandardScaler


class TestStandardScaler:
    def test_transform_gives_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(50.0, 7.0, size=(200, 3))
        scaler = StandardScaler().fit(data)
        transformed = scaler.transform(data)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_transform_round_trip(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(-10, 10, size=(50, 4))
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_column_does_not_produce_nan(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaler = StandardScaler().fit(data)
        transformed = scaler.transform(data)
        assert np.all(np.isfinite(transformed))

    def test_inverse_transform_std_scales_without_shift(self):
        data = np.array([[0.0], [10.0]])
        scaler = StandardScaler().fit(data)
        assert scaler.inverse_transform_std([[1.0]])[0, 0] == pytest.approx(5.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 2)))

    def test_is_fitted_flag(self):
        scaler = StandardScaler()
        assert not scaler.is_fitted
        scaler.fit([[1.0], [2.0]])
        assert scaler.is_fitted


def _quadratic_loss_and_grad(params):
    target = np.array([3.0, -2.0, 0.5])
    value = params[0] - target
    return float(np.sum(value**2)), [2.0 * value]


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_cls, lr", [(AdamOptimizer, 0.05), (AdadeltaOptimizer, 1.0)])
    def test_optimizers_minimize_a_quadratic(self, optimizer_cls, lr):
        params = [np.zeros(3)]
        optimizer = optimizer_cls(params, learning_rate=lr)
        for _ in range(800):
            _, grads = _quadratic_loss_and_grad(params)
            optimizer.step(grads)
        assert np.allclose(params[0], [3.0, -2.0, 0.5], atol=0.1)

    def test_step_with_wrong_gradient_count_raises(self):
        optimizer = AdamOptimizer([np.zeros(2)])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2), np.zeros(2)])
        adadelta = AdadeltaOptimizer([np.zeros(2)])
        with pytest.raises(ValueError):
            adadelta.step([])

    def test_make_optimizer_by_name(self):
        params = [np.zeros(1)]
        assert isinstance(make_optimizer("adam", params, 0.01), AdamOptimizer)
        assert isinstance(make_optimizer("Adadelta", params, 1.0), AdadeltaOptimizer)
        with pytest.raises(ValueError):
            make_optimizer("sgd", params, 0.01)

    def test_updates_are_in_place(self):
        params = [np.ones(2)]
        original = params[0]
        optimizer = AdamOptimizer(params, learning_rate=0.1)
        optimizer.step([np.ones(2)])
        assert params[0] is original
        assert not np.allclose(original, 1.0)
