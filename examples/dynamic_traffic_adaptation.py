"""Dynamic traffic: reconfigure a slice as its user load changes.

Network state changes (here, the number of on-the-fly frames emulating 1–4
users) are part of the state ``s_t`` Atlas conditions on.  This example trains
one offline policy per traffic level in the augmented simulator, then learns
online at each level with a relaxed 500 ms threshold (the setup of
Figs. 25–26), and reports how the recommended configuration scales with load.

The traffic levels are drawn from the scenario catalog's diurnal trace and
the budgets follow ``ATLAS_BENCH_SCALE`` (smoke / small / paper).

Run with:  python examples/dynamic_traffic_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro import NetworkSimulator, RealNetwork, SLA
from repro.core.offline_training import OfflineConfigurationTrainer, OfflineTrainingConfig
from repro.core.online_learning import OnlineConfigurationLearner, OnlineLearningConfig
from repro.experiments.scale import get_scale
from repro.prototype.testbed import default_ground_truth
from repro.sim.scenario import Scenario


def configure_for_traffic(traffic: int) -> dict:
    """Train offline and learn online for one traffic level; return a summary."""
    scale = get_scale()
    duration = scale.measurement_duration_s
    scenario = Scenario(traffic=traffic, duration_s=duration)
    sla = SLA(latency_threshold_ms=500.0, availability=0.9)
    augmented_simulator = NetworkSimulator(scenario=scenario, seed=0).with_params(
        default_ground_truth()
    )
    real_network = RealNetwork(scenario=scenario, seed=10 + traffic)

    trainer = OfflineConfigurationTrainer(
        simulator=augmented_simulator,
        sla=sla,
        traffic=traffic,
        config=OfflineTrainingConfig(
            iterations=scale.stage2_iterations,
            initial_random=scale.stage2_initial_random,
            parallel_queries=scale.stage2_parallel,
            candidate_pool=scale.stage2_candidate_pool,
            measurement_duration_s=duration,
            seed=traffic,
        ),
    )
    policy = trainer.run().policy

    learner = OnlineConfigurationLearner(
        offline_policy=policy,
        simulator=augmented_simulator,
        real_network=real_network,
        sla=sla,
        traffic=traffic,
        config=OnlineLearningConfig(
            iterations=scale.stage3_iterations,
            offline_queries_per_step=scale.stage3_offline_queries,
            candidate_pool=scale.stage3_candidate_pool,
            measurement_duration_s=duration,
            seed=traffic,
        ),
    )
    online = learner.run()
    best = online.policy.best_config
    return {
        "traffic": traffic,
        "offline_usage": policy.best_usage,
        "online_usage": best.resource_usage() if best is not None else float("nan"),
        "mean_online_qoe": float(np.mean(online.qoes())),
        "uplink_prbs": best.bandwidth_ul,
        "backhaul_mbps": best.backhaul_bw,
        "cpu_ratio": best.cpu_ratio,
    }


def main() -> None:
    from repro.scenarios import get_scenario

    # Train one policy per representative point of the diurnal day/night
    # curve: the trough (step 0), the rounded mean, and the peak (half a
    # period in).
    trace = get_scenario("frame-offloading-diurnal").primary.trace
    levels = sorted({trace.level(0), round(trace.mean_level()), trace.level(trace.period // 2)})
    print(f"diurnal trace levels: trough/mean/peak -> {levels}")
    print("traffic | offline usage | online usage | mean QoE | UL PRBs | backhaul | CPU")
    print("-" * 80)
    summaries = [configure_for_traffic(traffic) for traffic in levels]
    for row in summaries:
        print(f"{row['traffic']:^7d} | {100 * row['offline_usage']:12.1f}% "
              f"| {100 * row['online_usage']:11.1f}% | {row['mean_online_qoe']:8.3f} "
              f"| {row['uplink_prbs']:7.1f} | {row['backhaul_mbps']:8.1f} | {row['cpu_ratio']:.2f}")
    # Heavier traffic should require more resources to keep the SLA.
    if summaries[-1]["online_usage"] >= summaries[0]["online_usage"]:
        print("\nAs expected, the recommended allocation grows with the slice's load.")
    else:
        print("\nNote: at this small budget the allocations did not grow monotonically "
              "with load; rerun with more iterations for the full effect.")


if __name__ == "__main__":
    main()
