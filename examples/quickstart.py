"""Quickstart: measure a slice, quantify the sim-to-real gap, run Atlas end to end.

This example walks through the public API in a few minutes of compute:

1. build the offline simulator and the real-network testbed substitute from
   the scenario catalog's ``frame-offloading`` entry,
2. measure one slice configuration on both and compare (the motivation of
   the paper: the sim-to-real discrepancy),
3. run the full three-stage Atlas pipeline, and
4. print the configuration Atlas converged to and its regrets.

Budgets follow ``ATLAS_BENCH_SCALE`` (smoke / small / paper); the same
pipeline is also available as ``python -m repro run --scenario
frame-offloading --stage all``.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Atlas, AtlasConfig
from repro.core.offline_training import OfflineTrainingConfig
from repro.core.online_learning import OnlineLearningConfig
from repro.core.simulator_learning import ParameterSearchConfig
from repro.experiments.scale import get_scale
from repro.metrics import histogram_kl_divergence
from repro.scenarios import get_scenario


def main() -> None:
    scale = get_scale()
    duration = scale.measurement_duration_s
    workload = get_scenario("frame-offloading").primary
    simulator = workload.make_simulator(seed=0)
    real_network = workload.make_real_network(seed=1)
    sla = workload.sla

    # ------------------------------------------------------------------ step 1
    config = workload.deployed_config
    sim_result = simulator.run(config, traffic=1, duration=duration, seed=1)
    real_result = real_network.measure(config, traffic=1, duration=duration, seed=1)
    discrepancy = histogram_kl_divergence(real_result.latencies_ms, sim_result.latencies_ms)

    print("== The sim-to-real gap under one mid-range configuration ==")
    print(f"simulator : mean latency {sim_result.mean_latency_ms:6.1f} ms, "
          f"QoE(300ms) {sim_result.qoe(sla.latency_threshold_ms):.3f}")
    print(f"real net  : mean latency {real_result.mean_latency_ms:6.1f} ms, "
          f"QoE(300ms) {real_result.qoe(sla.latency_threshold_ms):.3f}")
    print(f"KL divergence between the latency distributions: {discrepancy:.2f}\n")

    # ------------------------------------------------------------------ step 2
    print(f"== Running the three Atlas stages ({scale.name} budget) ==")
    atlas = Atlas(
        simulator,
        real_network,
        AtlasConfig(
            sla=sla,
            traffic=1,
            deployed_config=config,
            online_collection_runs=max(2, scale.motivation_runs),
            online_collection_duration_s=duration,
            stage1=ParameterSearchConfig(
                iterations=scale.stage1_iterations,
                initial_random=scale.stage1_initial_random,
                parallel_queries=scale.stage1_parallel,
                candidate_pool=scale.stage1_candidate_pool,
                measurement_duration_s=duration,
            ),
            stage2=OfflineTrainingConfig(
                iterations=scale.stage2_iterations,
                initial_random=scale.stage2_initial_random,
                parallel_queries=scale.stage2_parallel,
                candidate_pool=scale.stage2_candidate_pool,
                measurement_duration_s=duration,
            ),
            stage3=OnlineLearningConfig(
                iterations=scale.stage3_iterations,
                offline_queries_per_step=scale.stage3_offline_queries,
                candidate_pool=scale.stage3_candidate_pool,
                measurement_duration_s=duration,
            ),
        ),
    )
    result = atlas.run_all()

    stage1 = result.stage1
    print(f"stage 1: discrepancy {stage1.original_discrepancy:.2f} -> {stage1.best_discrepancy:.2f} "
          f"(parameter distance {stage1.best_distance:.3f})")
    policy = result.offline_policy
    print(f"stage 2: best offline config uses {100 * policy.best_usage:.1f}% resources "
          f"at simulator QoE {policy.best_qoe:.3f}")
    online = result.stage3
    final = online.policy
    print(f"stage 3: avg usage regret {100 * online.average_usage_regret():+.2f}%, "
          f"avg QoE regret {online.average_qoe_regret():.3f}")
    print(f"         final online config: {final.best_config}")
    print(f"         real-network QoE of that config: {final.best_qoe:.3f} "
          f"at {100 * final.best_usage:.1f}% usage")


if __name__ == "__main__":
    main()
