"""Quickstart: measure a slice, quantify the sim-to-real gap, run Atlas end to end.

This example walks through the public API in five minutes of compute:

1. build the offline simulator and the real-network testbed substitute,
2. measure one slice configuration on both and compare (the motivation of
   the paper: the sim-to-real discrepancy),
3. run the full three-stage Atlas pipeline on a small budget, and
4. print the configuration Atlas converged to and its regrets.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Atlas, AtlasConfig, NetworkSimulator, RealNetwork, SLA, SliceConfig
from repro.core.offline_training import OfflineTrainingConfig
from repro.core.online_learning import OnlineLearningConfig
from repro.core.simulator_learning import ParameterSearchConfig
from repro.metrics import histogram_kl_divergence
from repro.sim.scenario import Scenario


def main() -> None:
    scenario = Scenario(traffic=1, duration_s=20.0)
    simulator = NetworkSimulator(scenario=scenario, seed=0)
    real_network = RealNetwork(scenario=scenario, seed=1)
    sla = SLA(latency_threshold_ms=300.0, availability=0.9)

    # ------------------------------------------------------------------ step 1
    config = SliceConfig(bandwidth_ul=10, bandwidth_dl=5, backhaul_bw=10, cpu_ratio=0.8)
    sim_result = simulator.run(config, traffic=1, seed=1)
    real_result = real_network.measure(config, traffic=1, seed=1)
    discrepancy = histogram_kl_divergence(real_result.latencies_ms, sim_result.latencies_ms)

    print("== The sim-to-real gap under one mid-range configuration ==")
    print(f"simulator : mean latency {sim_result.mean_latency_ms:6.1f} ms, "
          f"QoE(300ms) {sim_result.qoe(sla.latency_threshold_ms):.3f}")
    print(f"real net  : mean latency {real_result.mean_latency_ms:6.1f} ms, "
          f"QoE(300ms) {real_result.qoe(sla.latency_threshold_ms):.3f}")
    print(f"KL divergence between the latency distributions: {discrepancy:.2f}\n")

    # ------------------------------------------------------------------ step 2
    print("== Running the three Atlas stages (small budget) ==")
    atlas = Atlas(
        simulator,
        real_network,
        AtlasConfig(
            sla=sla,
            traffic=1,
            deployed_config=config,
            online_collection_runs=2,
            online_collection_duration_s=20.0,
            stage1=ParameterSearchConfig(iterations=10, initial_random=4, parallel_queries=3,
                                         candidate_pool=600, measurement_duration_s=20.0),
            stage2=OfflineTrainingConfig(iterations=20, initial_random=6, parallel_queries=3,
                                         candidate_pool=600, measurement_duration_s=20.0),
            stage3=OnlineLearningConfig(iterations=12, offline_queries_per_step=5,
                                        candidate_pool=600, measurement_duration_s=20.0),
        ),
    )
    result = atlas.run_all()

    stage1 = result.stage1
    print(f"stage 1: discrepancy {stage1.original_discrepancy:.2f} -> {stage1.best_discrepancy:.2f} "
          f"(parameter distance {stage1.best_distance:.3f})")
    policy = result.offline_policy
    print(f"stage 2: best offline config uses {100 * policy.best_usage:.1f}% resources "
          f"at simulator QoE {policy.best_qoe:.3f}")
    online = result.stage3
    final = online.policy
    print(f"stage 3: avg usage regret {100 * online.average_usage_regret():+.2f}%, "
          f"avg QoE regret {online.average_qoe_regret():.3f}")
    print(f"         final online config: {final.best_config}")
    print(f"         real-network QoE of that config: {final.best_qoe:.3f} "
          f"at {100 * final.best_usage:.1f}% usage")


if __name__ == "__main__":
    main()
